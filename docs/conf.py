"""Sphinx configuration for the repro documentation site.

Build locally with::

    pip install -r docs/requirements.txt
    sphinx-build -W --keep-going -b html docs docs/_build/html

The CI ``docs`` job runs exactly that command, so a broken autodoc target
or cross-reference fails the build. ``docs/check_docs.py`` is a
dependency-free validator covering the same structural invariants
(toctrees, autodoc imports, literalinclude paths, public docstrings) and
runs inside the regular test suite.
"""

import os
import sys

sys.path.insert(0, os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src")))

import repro  # noqa: E402  (needs the src path above)

project = "repro"
author = "repro contributors"
copyright = "2026, repro contributors"
version = release = repro.__version__

extensions = [
    "sphinx.ext.autodoc",
    "sphinx.ext.autosummary",
    "sphinx.ext.napoleon",
    "sphinx.ext.viewcode",
]

# Google-style ("Args:/Returns:") and rst-style docstrings coexist in the
# codebase; napoleon normalizes the former.
napoleon_google_docstring = True
napoleon_numpy_docstring = False

autodoc_member_order = "bysource"
autodoc_default_options = {
    "members": True,
    "undoc-members": False,
    "show-inheritance": True,
}
# Type hints inline in signatures would duplicate the documented Args
# sections; keep signatures short.
autodoc_typehints = "none"

templates_path = []
exclude_patterns = ["_build"]

html_theme = "furo" if os.environ.get("DOCS_THEME") == "furo" else "alabaster"
html_title = f"repro {release}"
html_static_path = []
