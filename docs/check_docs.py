#!/usr/bin/env python
"""Dependency-free validator for the documentation site.

Sphinx only runs in the CI ``docs`` job (it is not a runtime dependency),
so this script checks the structural invariants a broken docs build would
trip over — with nothing beyond the standard library and docutils:

1. every ``.rst`` page parses cleanly (sphinx-specific directives/roles
   are registered as inert stubs first);
2. every ``toctree`` entry points at an existing page, and every page is
   reachable from the root toctree (no orphans);
3. every ``automodule``/``autoclass``/``autofunction`` target imports;
4. every ``literalinclude`` path resolves;
5. the public runtime surface (``run``, ``compile_tasks``, ``Sweep``,
   ``Backend``, ``PlanCache``, ``PlanStore``, ``configure``) carries real
   docstrings with documented arguments.

Run directly (``python docs/check_docs.py``) or via the test suite
(``tests/test_docs.py``). Exit code 0 = healthy.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path
from typing import List, Set, Tuple

DOCS = Path(__file__).resolve().parent
ROOT = DOCS.parent

_DIRECTIVE = re.compile(r"^\s*\.\.\s+([\w:-]+)::\s*(.*)$")

#: Symbols whose docstrings form the documented public contract; each must
#: exist, be non-trivially documented, and (for callables) describe its
#: arguments.
PUBLIC_SURFACE = [
    ("repro.runtime.run", "run"),
    ("repro.runtime.run", "configure"),
    ("repro.runtime.plan", "compile_tasks"),
    ("repro.runtime.plan", "PlanCache"),
    ("repro.runtime.plan", "configure_plan_cache"),
    ("repro.runtime.store", "PlanStore"),
    ("repro.runtime.sweep", "Sweep"),
    ("repro.runtime.sweep", "SweepResult"),
    ("repro.runtime.backends", "Backend"),
    ("repro.runtime.backends", "register_backend"),
    ("repro.runtime.distributed", "DistributedBackend"),
    ("repro.runtime.distributed", "SocketShardExecutor"),
    ("repro.runtime.plan", "shard_plans"),
    ("repro.runtime.task", "Task"),
    ("repro.runtime.pipeline", "Pipeline"),
]


def rst_pages() -> List[Path]:
    return sorted(p for p in DOCS.rglob("*.rst") if "_build" not in p.parts)


def scan_directives(page: Path) -> List[Tuple[str, str]]:
    """All ``(directive, argument)`` pairs in a page, in order."""
    found = []
    for line in page.read_text().splitlines():
        match = _DIRECTIVE.match(line)
        if match:
            found.append((match.group(1), match.group(2).strip()))
    return found


def toctree_entries(page: Path) -> List[str]:
    """Document names listed under the page's ``toctree`` directives."""
    entries = []
    lines = page.read_text().splitlines()
    index = 0
    while index < len(lines):
        match = _DIRECTIVE.match(lines[index])
        if match and match.group(1) == "toctree":
            index += 1
            while index < len(lines):
                line = lines[index]
                if line.strip() and not line.startswith((" ", "\t")):
                    break
                entry = line.strip()
                if entry and not entry.startswith(":"):
                    entries.append(entry)
                index += 1
        else:
            index += 1
    return entries


def check_rst_syntax(errors: List[str]) -> None:
    """Parse every page with docutils; report parse-level errors."""
    try:
        from docutils import nodes
        from docutils.core import publish_doctree
        from docutils.parsers.rst import directives, roles
        from docutils.parsers.rst.directives.misc import Include
    except ImportError:  # docutils is optional; the CI docs job still gates
        print("  (docutils unavailable; skipping rst syntax parse)")
        return

    class _Inert(Include):
        """Swallow a sphinx-only directive and its body."""

        required_arguments = 0
        optional_arguments = 1
        final_argument_whitespace = True
        option_spec = {}
        has_content = True

        def run(self):
            return []

    for name in (
        "toctree", "automodule", "autoclass", "autofunction", "autosummary",
        "literalinclude", "currentmodule", "module",
    ):
        directives.register_directive(name, _Inert)
    for role in ("class", "func", "mod", "meth", "attr", "data", "obj",
                 "doc", "ref", "term", "exc"):
        roles.register_local_role(
            role, lambda r, t, text, l, i, options={}, content=[]:
            ([nodes.literal(text, text)], [])
        )

    for page in rst_pages():
        doctree = publish_doctree(
            page.read_text(),
            source_path=str(page),
            settings_overrides={
                "report_level": 2,  # warnings and up
                "halt_level": 5,
                "warning_stream": False,
            },
        )
        for problem in doctree.findall(nodes.system_message):
            if problem["level"] >= 2:  # sphinx -W fails on warnings, not INFO
                errors.append(f"{page.relative_to(ROOT)}: {problem.astext()}")


def check_toctrees(errors: List[str]) -> None:
    """Toctree targets exist; every page is reachable from index."""
    known: Set[str] = {
        str(p.relative_to(DOCS)).removesuffix(".rst") for p in rst_pages()
    }
    reachable: Set[str] = {"index"}
    for page in rst_pages():
        base = page.parent.relative_to(DOCS)
        for entry in toctree_entries(page):
            target = str(base / entry) if str(base) != "." else entry
            target = target.replace("\\", "/")
            if target not in known:
                errors.append(
                    f"{page.relative_to(ROOT)}: toctree entry {entry!r} has no page"
                )
            else:
                reachable.add(target)
    for orphan in sorted(known - reachable):
        errors.append(f"docs/{orphan}.rst is not reachable from any toctree")


def check_autodoc_targets(errors: List[str]) -> None:
    """Every automodule/autoclass/autofunction target must import."""
    for page in rst_pages():
        for directive, argument in scan_directives(page):
            if directive == "automodule":
                try:
                    importlib.import_module(argument)
                except Exception as exc:
                    errors.append(
                        f"{page.relative_to(ROOT)}: automodule {argument!r} "
                        f"failed to import: {exc}"
                    )
            elif directive in ("autoclass", "autofunction"):
                module_name, _, symbol = argument.rpartition(".")
                try:
                    module = importlib.import_module(module_name)
                    getattr(module, symbol)
                except Exception as exc:
                    errors.append(
                        f"{page.relative_to(ROOT)}: {directive} {argument!r} "
                        f"unresolvable: {exc}"
                    )


def check_literalincludes(errors: List[str]) -> None:
    for page in rst_pages():
        for directive, argument in scan_directives(page):
            if directive == "literalinclude":
                target = (page.parent / argument).resolve()
                if not target.is_file():
                    errors.append(
                        f"{page.relative_to(ROOT)}: literalinclude "
                        f"{argument!r} does not exist"
                    )


def check_public_docstrings(errors: List[str]) -> None:
    """The documented public surface has real, argument-level docstrings."""
    import inspect

    for module_name, symbol in PUBLIC_SURFACE:
        module = importlib.import_module(module_name)
        obj = getattr(module, symbol, None)
        if obj is None:
            errors.append(f"{module_name}.{symbol} is missing")
            continue
        doc = inspect.getdoc(obj) or ""
        if len(doc.strip()) < 40:
            errors.append(f"{module_name}.{symbol} has no substantive docstring")
            continue
        if callable(obj) and not inspect.isclass(obj):
            takes_args = any(
                p.name not in ("self", "cls")
                for p in inspect.signature(obj).parameters.values()
            )
            if takes_args and "Args:" not in doc and ":param" not in doc:
                errors.append(
                    f"{module_name}.{symbol} docstring documents no arguments"
                )


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    errors: List[str] = []
    checks = [
        ("rst syntax", check_rst_syntax),
        ("toctrees", check_toctrees),
        ("autodoc targets", check_autodoc_targets),
        ("literalinclude paths", check_literalincludes),
        ("public docstrings", check_public_docstrings),
    ]
    for label, check in checks:
        before = len(errors)
        check(errors)
        status = "ok" if len(errors) == before else f"{len(errors) - before} problem(s)"
        print(f"  {label:>20s}: {status}")
    if errors:
        print(f"\n{len(errors)} problem(s):", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print(f"docs healthy: {len(rst_pages())} pages")
    return 0


if __name__ == "__main__":
    sys.exit(main())
