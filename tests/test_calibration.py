"""Device calibration tests."""

import math

import pytest

from repro.device import (
    NoiseProfile,
    fake_brisbane,
    fake_nazca,
    fake_penguino,
    fake_sherbrooke,
    linear_chain,
    synthetic_device,
)
from repro.utils.units import KHZ


class TestSyntheticSampling:
    def test_reproducible_by_seed(self):
        a = synthetic_device(linear_chain(4), seed=9)
        b = synthetic_device(linear_chain(4), seed=9)
        assert a.zz_rate(0, 1) == b.zz_rate(0, 1)
        assert a.qubit(2).t1 == b.qubit(2).t1

    def test_different_seeds_differ(self):
        a = synthetic_device(linear_chain(4), seed=9)
        b = synthetic_device(linear_chain(4), seed=10)
        assert a.zz_rate(0, 1) != b.zz_rate(0, 1)

    def test_parameters_within_profile(self):
        profile = NoiseProfile()
        dev = synthetic_device(linear_chain(5), seed=3, profile=profile)
        lo, hi = profile.zz_range
        for a, b in dev.topology.edges:
            assert lo <= dev.zz_rate(a, b) <= hi

    def test_collision_triples_enhance_nnn(self):
        dev = synthetic_device(
            linear_chain(3), seed=3, collision_triples=[(0, 1, 2)]
        )
        assert dev.zz_rate(0, 2) >= 8.0 * KHZ

    def test_nnn_background(self):
        dev = synthetic_device(linear_chain(3), seed=3, nnn_background=True)
        assert 0.0 < dev.zz_rate(0, 2) < 1.0 * KHZ


class TestDeviceQueries:
    def test_zz_rate_symmetric(self):
        dev = synthetic_device(linear_chain(3), seed=1)
        assert dev.zz_rate(0, 1) == dev.zz_rate(1, 0)

    def test_zz_rate_uncoupled_is_zero(self):
        dev = synthetic_device(linear_chain(3), seed=1)
        assert dev.zz_rate(0, 2) == 0.0

    def test_stark_shift_directional(self):
        dev = synthetic_device(linear_chain(2), seed=1)
        assert dev.stark_shift(0, 1) > 0.0
        assert dev.stark_shift(1, 0) > 0.0

    def test_stark_shift_uncoupled_zero(self):
        dev = synthetic_device(linear_chain(3), seed=1)
        assert dev.stark_shift(0, 2) == 0.0

    def test_crosstalk_edges_threshold(self):
        dev = synthetic_device(linear_chain(3), seed=1)
        assert dev.crosstalk_edges(threshold=1.0) == []
        assert len(dev.crosstalk_edges()) == 2

    def test_pair_error_fallback_for_routed_gate(self):
        dev = synthetic_device(linear_chain(3), seed=1)
        assert dev.pair_error(0, 2) > 0.0  # median fallback

    def test_subdevice(self):
        dev = synthetic_device(linear_chain(6), seed=1)
        sub = dev.subdevice([2, 3, 4])
        assert sub.num_qubits == 3
        assert sub.zz_rate(0, 1) == dev.zz_rate(2, 3)

    def test_ideal_is_noise_free(self):
        dev = synthetic_device(linear_chain(3), seed=1).ideal()
        assert dev.zz_rate(0, 1) == 0.0
        assert dev.qubit(0).p1 == 0.0
        assert dev.qubit(0).measure_stark == 0.0
        assert math.isinf(dev.qubit(0).t1)

    def test_with_pair_overrides(self):
        from repro.device import PairParams

        dev = synthetic_device(linear_chain(2), seed=1)
        new = dev.with_pair_overrides({(0, 1): PairParams(zz_rate=0.0)})
        assert new.zz_rate(0, 1) == 0.0
        assert dev.zz_rate(0, 1) > 0.0


class TestFakeBackends:
    @pytest.mark.parametrize(
        "factory", [fake_nazca, fake_brisbane, fake_sherbrooke, fake_penguino]
    )
    def test_eagle_scale(self, factory):
        dev = factory()
        assert dev.num_qubits == 129

    def test_sherbrooke_has_collision(self):
        dev = fake_sherbrooke()
        assert dev.zz_rate(4, 6) >= 8.0 * KHZ
