"""Coherent accumulation tests (paper eqs. 1-3)."""


import pytest

from repro.circuits import Circuit, gates as g
from repro.device import linear_chain, synthetic_device
from repro.sim.coherent import accumulate_coherent
from repro.sim.timeline import build_timeline
from repro.utils.units import TWO_PI


@pytest.fixture
def device():
    return synthetic_device(linear_chain(3), seed=77)


def timeline_for(circ, num_qubits, duration):
    return build_timeline(circ.moments[0], num_qubits, duration)


class TestIdlePair:
    def test_u11_structure(self, device):
        """Idle pair: zz = +theta, z = -theta each (paper eq. 2)."""
        circ = Circuit(2)
        circ.delay(500.0, 0)
        circ.delay(500.0, 1)
        dev = device.subdevice([0, 1])
        tl = timeline_for(circ, 2, 500.0)
        acc = accumulate_coherent(tl, dev)
        theta = TWO_PI * dev.zz_rate(0, 1) * 500.0
        assert acc.zz[(0, 1)] == pytest.approx(theta)
        assert acc.z[0] == pytest.approx(-theta)
        assert acc.z[1] == pytest.approx(-theta)

    def test_zero_duration_no_error(self, device):
        circ = Circuit(2)
        circ.rz(0.1, 0)
        tl = timeline_for(circ, 2, 0.0)
        acc = accumulate_coherent(tl, device.subdevice([0, 1]))
        assert acc.is_negligible()


class TestGateContexts:
    def test_gate_pair_zz_skipped(self, device):
        circ = Circuit(2)
        circ.ecr(0, 1)
        tl = timeline_for(circ, 2, 500.0)
        acc = accumulate_coherent(tl, device.subdevice([0, 1]))
        assert (0, 1) not in acc.zz

    def test_control_spectator_zz_refocused(self, device):
        """Case II: echo flips the control -> spectator ZZ integrates to 0."""
        circ = Circuit(3)
        circ.ecr(1, 2)
        tl = timeline_for(circ, 3, 500.0)
        acc = accumulate_coherent(tl, device, include_stark=False)
        assert acc.zz.get((0, 1), 0.0) == pytest.approx(0.0, abs=1e-12)
        # ...but the spectator's local Z from the coupling survives.
        assert abs(acc.z[0]) > 0.0

    def test_stark_shift_added_for_spectator(self, device):
        circ = Circuit(3)
        circ.ecr(1, 2)
        tl = timeline_for(circ, 3, 500.0)
        with_stark = accumulate_coherent(tl, device, include_stark=True)
        without = accumulate_coherent(tl, device, include_stark=False)
        shift = TWO_PI * device.stark_shift(1, 0) * 500.0
        assert with_stark.z[0] - without.z[0] == pytest.approx(shift)

    def test_measured_qubit_starks_neighbors(self, device):
        circ = Circuit(2, num_clbits=1)
        circ.measure(0, 0)
        tl = timeline_for(circ, 2, 4000.0)
        acc = accumulate_coherent(tl, device.subdevice([0, 1]))
        dev = device.subdevice([0, 1])
        expected = TWO_PI * dev.qubit(0).measure_stark * 4000.0
        # Neighbor 1's Z includes the coupling part and the readout Stark.
        coupling = -TWO_PI * dev.zz_rate(0, 1) * 4000.0
        assert acc.z[1] == pytest.approx(coupling + expected)


class TestDetunings:
    def test_detuning_adds_z(self, device):
        circ = Circuit(2)
        circ.delay(500.0, 0)
        dev = device.subdevice([0, 1])
        tl = timeline_for(circ, 2, 500.0)
        base = accumulate_coherent(tl, dev)
        shifted = accumulate_coherent(tl, dev, detunings=[1e-5, 0.0])
        assert shifted.z[0] - base.z[0] == pytest.approx(TWO_PI * 1e-5 * 500.0)

    def test_dd_refocuses_detuning(self, device):
        circ = Circuit(2)
        circ.append(g.dd_sequence((0.25, 0.75), duration=500.0), [0])
        dev = device.subdevice([0, 1])
        tl = timeline_for(circ, 2, 500.0)
        with_det = accumulate_coherent(tl, dev, detunings=[1e-5, 0.0])
        without = accumulate_coherent(tl, dev, detunings=None)
        assert with_det.z.get(0, 0.0) == pytest.approx(without.z.get(0, 0.0))


class TestToggles:
    def test_include_zz_false(self, device):
        circ = Circuit(2)
        circ.delay(500.0, 0)
        tl = timeline_for(circ, 2, 500.0)
        acc = accumulate_coherent(tl, device.subdevice([0, 1]), include_zz=False)
        assert not acc.zz

    def test_accumulation_helpers(self):
        from repro.sim.coherent import CoherentAccumulation

        acc = CoherentAccumulation()
        acc.add_z(0, 0.1)
        acc.add_z(0, 0.2)
        acc.add_zz(1, 0, 0.3)
        assert acc.z[0] == pytest.approx(0.3)
        assert acc.zz[(0, 1)] == pytest.approx(0.3)
        assert not acc.is_negligible()
