"""Readout twirling and mitigation tests."""

from dataclasses import replace

import pytest

from repro.circuits import Circuit
from repro.device import linear_chain, synthetic_device
from repro.sim import (
    SimOptions,
    assignment_probabilities,
    corrected_expectation,
    estimate_confusion,
    expectation_from_counts,
    invert_confusion,
    sample_counts,
)


@pytest.fixture
def device():
    base = synthetic_device(linear_chain(2), seed=95)
    qubits = [
        replace(
            q, readout_error=0.08, readout_asymmetry=0.6,
            quasistatic_sigma=0.0, parity_delta=0.0, p1=0.0,
            t1=float("inf"), t2=float("inf"),
        )
        for q in base.qubits
    ]
    pairs = {e: replace(p, zz_rate=0.0, p2=0.0) for e, p in base.pairs.items()}
    return replace(base, qubits=qubits, pairs=pairs)


@pytest.fixture
def clean_options():
    return SimOptions(
        shots=1, coherent=False, stochastic=False, dephasing=False,
        amplitude_damping=False, gate_errors=False,
    )


class TestAssignmentModel:
    def test_asymmetric_split(self, device):
        p01, p10 = assignment_probabilities(device.qubit(0))
        assert p10 > p01
        assert (p01 + p10) / 2 == pytest.approx(0.08)

    def test_symmetric_when_zero_asymmetry(self):
        from repro.device import QubitParams

        p01, p10 = assignment_probabilities(
            QubitParams(readout_error=0.05, readout_asymmetry=0.0)
        )
        assert p01 == p10 == pytest.approx(0.05)


class TestSampledCounts:
    def test_ground_state_bias(self, device, clean_options):
        """Without twirl, |1> reads worse than |0> (asymmetric channel)."""
        circ0 = Circuit(2)
        circ0.append_moment([])
        circ1 = Circuit(2)
        circ1.x(0)
        shots = 3000
        c0 = sample_counts(circ0, device, [0], shots=shots,
                           options=clean_options, seed=1)
        c1 = sample_counts(circ1, device, [0], shots=shots,
                           options=clean_options, seed=2)
        err0 = c0[(1,)] / shots
        err1 = c1[(0,)] / shots
        p01, p10 = assignment_probabilities(device.qubit(0))
        assert err0 == pytest.approx(p01, abs=0.02)
        assert err1 == pytest.approx(p10, abs=0.02)
        assert err1 > err0

    def test_twirl_symmetrizes(self, device, clean_options):
        """Readout twirling equalizes the effective error of |0> and |1>."""
        shots = 4000
        circ0 = Circuit(2)
        circ0.append_moment([])
        circ1 = Circuit(2)
        circ1.x(0)
        e0 = sample_counts(circ0, device, [0], shots=shots,
                           options=clean_options, twirl=True, seed=3)[(1,)] / shots
        e1 = sample_counts(circ1, device, [0], shots=shots,
                           options=clean_options, twirl=True, seed=4)[(0,)] / shots
        mean = device.qubit(0).readout_error
        assert e0 == pytest.approx(mean, abs=0.02)
        assert e1 == pytest.approx(mean, abs=0.02)

    def test_expectation_from_counts(self):
        from collections import Counter

        counts = Counter({(0,): 75, (1,): 25})
        assert expectation_from_counts(counts, 0) == pytest.approx(0.5)

    def test_expectation_from_empty_counts(self):
        from collections import Counter

        with pytest.raises(ValueError):
            expectation_from_counts(Counter(), 0)


class TestMitigation:
    def test_confusion_estimation(self, device, clean_options):
        confusion = estimate_confusion(device, [0, 1], shots=4000, seed=5,
                                       options=clean_options)
        p01, p10 = assignment_probabilities(device.qubit(0))
        m = confusion.matrices[0]
        assert m[1, 0] == pytest.approx(p01, abs=0.02)
        assert m[0, 1] == pytest.approx(p10, abs=0.02)
        assert confusion.attenuation(0) == pytest.approx(
            1 - p01 - p10, abs=0.03
        )

    def test_inversion_recovers_plus_state(self, device, clean_options):
        """Measured <Z> of |+> is biased by asymmetry; correction removes it."""
        circ = Circuit(2)
        circ.h(0)
        counts = sample_counts(circ, device, [0], shots=6000,
                               options=clean_options, seed=6)
        raw = expectation_from_counts(counts, 0)
        p01, p10 = assignment_probabilities(device.qubit(0))
        assert raw == pytest.approx(p10 - p01, abs=0.03)  # biased away from 0
        confusion = estimate_confusion(device, [0, 1], shots=6000, seed=7,
                                       options=clean_options)
        corrected = corrected_expectation(counts, [0], 0, confusion)
        assert corrected == pytest.approx(0.0, abs=0.04)

    def test_inversion_distribution_normalized(self, device, clean_options):
        circ = Circuit(2)
        circ.h(0)
        circ.cx(0, 1)
        counts = sample_counts(circ, device, [0, 1], shots=3000,
                               options=clean_options, seed=8)
        confusion = estimate_confusion(device, [0, 1], shots=4000, seed=9,
                                       options=clean_options)
        quasi = invert_confusion(counts, [0, 1], confusion)
        assert sum(quasi.values()) == pytest.approx(1.0, abs=1e-9)
        # Bell state: corrected distribution concentrates on 00 and 11.
        assert quasi[(0, 0)] + quasi[(1, 1)] > 0.9
