"""Context-aware DD tests (Algorithm 1)."""

import networkx as nx
import pytest

from repro.circuits import Circuit, gates as g
from repro.compiler.ca_dd import (
    IdleInterval,
    apply_ca_dd,
    pinned_colors,
    select_joint_windows,
)
from repro.device import linear_chain, synthetic_device
from repro.sim.timeline import pair_sign_integral


class TestPinnedColors:
    def test_ecr_pins(self):
        circ = Circuit(3)
        circ.ecr(1, 2)
        pins = pinned_colors(circ.moments[0])
        assert pins == {1: 1, 2: 2}

    def test_canonical_pins_like_ecr(self):
        circ = Circuit(2)
        circ.can(0.1, 0.2, 0.3, 0, 1)
        pins = pinned_colors(circ.moments[0])
        assert pins == {0: 1, 1: 2}

    def test_unknown_2q_gate_pins_zero(self):
        import numpy as np

        circ = Circuit(2)
        circ.append(g.Gate("iswap", 2, matrix=np.eye(4)), [0, 1])
        pins = pinned_colors(circ.moments[0])
        assert pins == {0: 0, 1: 0}

    def test_measured_qubit_pinned_zero(self):
        circ = Circuit(1, num_clbits=1)
        circ.measure(0, 0)
        assert pinned_colors(circ.moments[0]) == {0: 0}


class TestJointWindows:
    def _adj(self, edges, n):
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        return graph

    def test_groups_adjacent_overlapping(self):
        intervals = [
            IdleInterval(0, 0.0, 500.0),
            IdleInterval(1, 0.0, 500.0),
            IdleInterval(3, 0.0, 500.0),  # not adjacent to 0/1
        ]
        groups = select_joint_windows(intervals, self._adj([(0, 1)], 4), 100.0)
        sizes = sorted(len(gr) for gr in groups)
        assert sizes == [1, 2]

    def test_non_overlapping_split(self):
        intervals = [
            IdleInterval(0, 0.0, 500.0),
            IdleInterval(1, 600.0, 1100.0),
        ]
        groups = select_joint_windows(intervals, self._adj([(0, 1)], 2), 100.0)
        assert len(groups) == 2

    def test_min_duration_filter(self):
        intervals = [IdleInterval(0, 0.0, 50.0)]
        assert select_joint_windows(intervals, self._adj([], 1), 100.0) == []

    def test_recursive_split_around_max_window(self):
        # Three staggered intervals; the middle overlaps both ends, the ends
        # do not overlap each other: the maximal joint window is selected
        # first and the remainder re-grouped.
        intervals = [
            IdleInterval(0, 0.0, 400.0),
            IdleInterval(1, 300.0, 900.0),
            IdleInterval(0, 800.0, 1200.0),
        ]
        groups = select_joint_windows(intervals, self._adj([(0, 1)], 2), 100.0)
        assert sum(len(gr) for gr in groups) == 3


class TestApplyCADD:
    def test_spectator_staggered_against_control(self, chain3):
        """Case II: the control spectator's DD must not align with the echo."""
        circ = Circuit(3)
        circ.append_moment([])
        circ.ecr(1, 2, new_moment=True)
        circ.append_moment([])
        dressed, report = apply_ca_dd(circ, chain3)
        dd = next(i for i in dressed.instructions() if i.gate.name == "dd")
        assert dd.qubits == (0,)
        # Combined with the control's midpoint echo the ZZ must refocus.
        assert pair_sign_integral(dd.gate.dd_fractions, (0.5,)) == pytest.approx(0.0)
        # And the spectator's own Z refocuses too.
        from repro.sim.timeline import sign_integral

        assert sign_integral(dd.gate.dd_fractions) == pytest.approx(0.0)

    def test_target_spectator_preserves_rotary(self, chain3):
        """Case III: spectator DD must not undo the rotary refocusing."""
        circ = Circuit(3)
        circ.append_moment([])
        circ.ecr(2, 1, new_moment=True)  # qubit 1 = target, next to probe 0
        circ.append_moment([])
        dressed, _report = apply_ca_dd(circ, chain3)
        dd = next(i for i in dressed.instructions() if i.gate.name == "dd")
        assert pair_sign_integral(
            dd.gate.dd_fractions, (0.25, 0.75)
        ) == pytest.approx(0.0)

    def test_adjacent_idles_get_orthogonal_sequences(self, chain4):
        circ = Circuit(4)
        circ.append_moment([])
        circ.delay(500.0, 0, new_moment=True)
        circ.delay(500.0, 1)
        circ.append_moment([])
        dressed, _report = apply_ca_dd(circ, chain4)
        fracs = {
            i.qubits[0]: i.gate.dd_fractions
            for i in dressed.instructions()
            if i.gate.name == "dd"
        }
        assert pair_sign_integral(fracs[0], fracs[1]) == pytest.approx(0.0)

    def test_case_iv_conflict_reported(self, chain4):
        """Adjacent ECR controls cannot be separated -> reported conflict."""
        circ = Circuit(4)
        circ.append_moment([])
        circ.ecr(1, 0, new_moment=True)
        circ.ecr(2, 3)
        circ.append_moment([])
        _dressed, report = apply_ca_dd(circ, chain4)
        assert any(
            (a, b) == (1, 2) for _m, a, b in report.conflicts
        )

    def test_nnn_crosstalk_forces_third_color(self):
        """Collision-enhanced NNN edge: three mutually-coupled idle qubits."""
        device = synthetic_device(
            linear_chain(3), seed=2, collision_triples=[(0, 1, 2)]
        )
        circ = Circuit(3)
        circ.append_moment([])
        for q in range(3):
            circ.delay(500.0, q, new_moment=(q == 0))
        circ.append_moment([])
        dressed, report = apply_ca_dd(circ, device)
        colors = report.colorings[1].colors
        assert len({colors[q] for q in range(3)}) == 3

    def test_short_moments_skipped(self, chain2):
        circ = Circuit(2)
        circ.h(0)  # 50 ns moment, qubit 1 idle
        dressed, _report = apply_ca_dd(circ, chain2)
        assert dressed.count_gates(name="dd") == 0

    def test_report_colors_in_moment(self, chain3):
        circ = Circuit(3)
        circ.append_moment([])
        circ.ecr(1, 2, new_moment=True)
        circ.append_moment([])
        _dressed, report = apply_ca_dd(circ, chain3)
        colors = report.colors_in_moment(1)
        assert colors[1] == 1 and colors[2] == 2
        assert 0 in colors
