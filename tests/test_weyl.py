"""Weyl/Cartan decomposition tests (paper eq. 5 / Fig. 1d)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import gates as g
from repro.circuits.circuit import _embed
from repro.circuits.weyl import (
    absorb_rzz_after,
    absorb_rzz_before,
    canonical_params,
    cnot_synthesis,
    compensate_rzz,
    heisenberg_params,
    is_canonical,
)
from repro.utils.linalg import allclose_up_to_global_phase

angles = st.floats(min_value=-1.3, max_value=1.3, allow_nan=False)


class TestCanonicalParams:
    @given(angles, angles, angles)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, a, b, c):
        matrix = g.canonical_matrix(a, b, c)
        a2, b2, c2 = canonical_params(matrix)
        assert allclose_up_to_global_phase(
            g.canonical_matrix(a2, b2, c2), matrix, atol=1e-6
        )

    def test_identity_params(self):
        a, b, c = canonical_params(np.eye(4))
        assert (a, b, c) == pytest.approx((0.0, 0.0, 0.0), abs=1e-9)

    def test_rejects_non_canonical(self):
        with pytest.raises(ValueError):
            canonical_params(g.CX_MAT)

    def test_is_canonical_predicate(self):
        assert is_canonical(g.canonical_matrix(0.3, 0.2, 0.1))
        assert not is_canonical(g.ECR_MAT @ np.kron(g.H_MAT, np.eye(2)))


class TestAbsorption:
    @given(angles, angles, angles, st.floats(-2.0, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_absorb_before_matches_matrix_product(self, a, b, c, theta):
        absorbed = absorb_rzz_before((a, b, c), theta)
        expected = g.canonical_matrix(a, b, c) @ g.rzz_matrix(theta)
        assert allclose_up_to_global_phase(
            g.canonical_matrix(*absorbed), expected, atol=1e-7
        )

    @given(angles, angles, angles, st.floats(-2.0, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_absorb_after_matches_matrix_product(self, a, b, c, theta):
        absorbed = absorb_rzz_after((a, b, c), theta)
        expected = g.rzz_matrix(theta) @ g.canonical_matrix(a, b, c)
        assert allclose_up_to_global_phase(
            g.canonical_matrix(*absorbed), expected, atol=1e-7
        )

    def test_compensation_cancels_error(self):
        params = (0.4, 0.3, 0.2)
        theta = 0.55
        fixed = compensate_rzz(params, theta)
        total = g.canonical_matrix(*fixed) @ g.rzz_matrix(theta)
        assert allclose_up_to_global_phase(
            total, g.canonical_matrix(*params), atol=1e-7
        )


class TestHeisenbergParams:
    def test_isotropic(self):
        a, b, c = heisenberg_params(1.0, 1.0, 1.0, 0.6)
        assert a == b == c == pytest.approx(0.3)

    def test_step_unitary_matches_exponential(self):
        from scipy.linalg import expm

        j, dt = 0.8, 0.5
        a, b, c = heisenberg_params(j, j, j, dt)
        xx = np.kron(g.X_MAT, g.X_MAT)
        yy = np.kron(g.Y_MAT, g.Y_MAT)
        zz = np.kron(g.Z_MAT, g.Z_MAT)
        target = expm(1j * (j * dt / 2) * (xx + yy + zz))
        assert allclose_up_to_global_phase(
            g.canonical_matrix(a, b, c), target, atol=1e-9
        )


class TestCnotSynthesis:
    @given(angles, angles, angles)
    @settings(max_examples=30, deadline=None)
    def test_three_cnot_circuit_equivalent(self, a, b, c):
        circuit = cnot_synthesis(a, b, c)
        target = _embed(g.canonical_matrix(a, b, c), (0, 1), 2)
        assert allclose_up_to_global_phase(circuit.unitary(), target, atol=1e-6)

    def test_uses_exactly_three_cnots(self):
        circuit = cnot_synthesis(0.3, 0.2, 0.1)
        assert circuit.count_gates(name="cx") == 3

    def test_paper_quoted_angles_present(self):
        """Fig. 1d: Ry(pi/2 - 2a) and Ry(2b - pi/2) on the second qubit."""
        a, b, c = 0.31, 0.17, 0.52
        circuit = cnot_synthesis(a, b, c)
        ry_params = [
            inst.gate.params[0]
            for inst in circuit.instructions()
            if inst.gate.name == "ry"
        ]
        assert math.pi / 2 - 2 * a in [pytest.approx(p) for p in ry_params]
        assert 2 * b - math.pi / 2 in [pytest.approx(p) for p in ry_params]
