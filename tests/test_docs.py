"""Documentation-site structural tests.

The full Sphinx build runs in the CI ``docs`` job (sphinx is not a runtime
dependency); these tests run ``docs/check_docs.py`` — the dependency-free
validator covering the same invariants (rst syntax, toctree reachability,
autodoc imports, literalinclude paths, public docstrings) — so a broken
docs change fails the regular suite too.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parents[1] / "docs"


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", DOCS / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsSite:
    def test_validator_passes(self, check_docs, capsys):
        assert check_docs.main() == 0, capsys.readouterr().err

    def test_site_skeleton_present(self):
        for page in (
            "conf.py",
            "index.rst",
            "architecture.rst",
            "howto/backends.rst",
            "howto/caching.rst",
            "howto/reproducibility.rst",
            "api/index.rst",
            "examples/index.rst",
        ):
            assert (DOCS / page).is_file(), f"docs/{page} missing"

    def test_every_example_script_has_a_gallery_page(self):
        examples = Path(__file__).resolve().parents[1] / "examples"
        for script in examples.glob("*.py"):
            page = DOCS / "examples" / f"{script.stem}.rst"
            assert page.is_file(), f"no gallery page for examples/{script.name}"
            assert f"examples/{script.name}" in page.read_text()

    def test_conf_version_tracks_package(self, check_docs):
        import repro

        conf_path = DOCS / "conf.py"
        conf_ns = {"__file__": str(conf_path)}
        sys.path.insert(0, str(DOCS))
        try:
            exec(compile(conf_path.read_text(), str(conf_path), "exec"), conf_ns)
        finally:
            sys.path.remove(str(DOCS))
        assert conf_ns["release"] == repro.__version__
        assert "sphinx.ext.autodoc" in conf_ns["extensions"]
        assert "sphinx.ext.napoleon" in conf_ns["extensions"]
