"""Strategy pipeline tests."""

import pytest

from repro.circuits import Circuit
from repro.compiler import STRATEGIES, Strategy, compile_circuit, get_strategy, realization_factory
from repro.utils.linalg import allclose_up_to_global_phase
from repro.utils.rng import as_generator

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)


def sample_circuit():
    circ = Circuit(3)
    circ.h(0)
    circ.h(1)
    circ.h(2)
    circ.ecr(0, 1, new_moment=True)
    circ.append_moment([])
    circ.ecr(1, 2, new_moment=True)
    circ.append_moment([])
    return circ


class TestRegistry:
    def test_all_named_strategies_resolve(self):
        for name in STRATEGIES:
            assert get_strategy(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_strategy("quantum_magic")

    def test_strategy_passthrough(self):
        s = Strategy("custom", dd="ca", ec=True)
        assert get_strategy(s) is s

    def test_invalid_dd_flavor(self):
        with pytest.raises(ValueError):
            Strategy("bad", dd="sideways")

    def test_expected_flags(self):
        assert STRATEGIES["ca_ec+dd"].dd == "ca"
        assert STRATEGIES["ca_ec+dd"].ec
        assert not STRATEGIES["none"].ec
        assert STRATEGIES["dd"].dd == "aligned"


class TestCompilation:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_preserves_logic(self, chain3, name):
        circ = sample_circuit()
        compiled = compile_circuit(circ, chain3, name, seed=3)
        # DD nets are identity (even pulses) and EC insertions are tiny
        # rotations, so compare with loose tolerance for EC strategies.
        strategy = get_strategy(name)
        if strategy.ec:
            pytest.skip("EC intentionally deforms the unitary to fix noise")
        assert allclose_up_to_global_phase(
            compiled.unitary(), circ.unitary(), atol=1e-7
        )

    def test_dd_strategies_insert_dd(self, chain3):
        for name in ("dd", "staggered_dd", "ca_dd"):
            compiled = compile_circuit(sample_circuit(), chain3, name, seed=0)
            assert compiled.count_gates(name="dd") > 0, name

    def test_ec_strategy_inserts_compensation(self, chain3):
        compiled = compile_circuit(sample_circuit(), chain3, "ca_ec", seed=0)
        assert compiled.count_gates(tag="compensation") > 0

    def test_combined_has_both(self, chain3):
        compiled = compile_circuit(sample_circuit(), chain3, "ca_ec+dd", seed=0)
        assert compiled.count_gates(name="dd") > 0
        assert compiled.count_gates(tag="compensation") > 0

    def test_twirl_randomizes(self, chain3):
        a = compile_circuit(sample_circuit(), chain3, "none", seed=1)
        b = compile_circuit(sample_circuit(), chain3, "none", seed=2)
        gates_a = [i.gate.params for i in a.instructions()]
        gates_b = [i.gate.params for i in b.instructions()]
        assert gates_a != gates_b


class TestFactory:
    def test_factory_produces_fresh_realizations(self, chain3):
        factory = realization_factory(sample_circuit(), chain3, "none")
        rng = as_generator(0)
        a = factory(rng)
        b = factory(rng)
        assert [i.gate.params for i in a.instructions()] != [
            i.gate.params for i in b.instructions()
        ]

    def test_factory_respects_strategy(self, chain3):
        factory = realization_factory(sample_circuit(), chain3, "ca_dd")
        compiled = factory(as_generator(1))
        assert compiled.count_gates(name="dd") > 0
