"""Stratification tests, including random-circuit equivalence (paper Fig. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, gates as g, stratify, validate_stratified
from repro.circuits.stratify import layer_kind, two_qubit_layers
from repro.utils.linalg import allclose_up_to_global_phase


def random_circuit_strategy(num_qubits=3, max_ops=12):
    """Random sequences of 1q/2q gate picks, as (kind, qubit(s), angle)."""
    op = st.tuples(
        st.sampled_from(["h", "x", "rz", "sx", "cx", "ecr"]),
        st.integers(0, num_qubits - 1),
        st.integers(0, num_qubits - 1),
        st.floats(-3.0, 3.0, allow_nan=False),
    )
    return st.lists(op, min_size=1, max_size=max_ops)


def build(ops, num_qubits=3):
    circ = Circuit(num_qubits)
    for kind, q1, q2, angle in ops:
        if kind in ("cx", "ecr"):
            if q1 == q2:
                continue
            getattr(circ, kind)(q1, q2)
        elif kind == "rz":
            circ.rz(angle, q1)
        else:
            getattr(circ, kind)(q1)
    return circ


class TestStratifyEquivalence:
    @given(random_circuit_strategy())
    @settings(max_examples=40, deadline=None)
    def test_unitary_preserved(self, ops):
        circ = build(ops)
        strat = stratify(circ)
        assert allclose_up_to_global_phase(
            strat.unitary(), circ.unitary(), atol=1e-7
        )

    @given(random_circuit_strategy())
    @settings(max_examples=40, deadline=None)
    def test_output_is_stratified(self, ops):
        strat = stratify(build(ops))
        validate_stratified(strat)

    @given(random_circuit_strategy())
    @settings(max_examples=30, deadline=None)
    def test_2q_layers_surrounded_by_1q_layers(self, ops):
        strat = stratify(build(ops))
        kinds = [layer_kind(m) for m in strat.moments]
        for i, kind in enumerate(kinds):
            if kind == "2q":
                assert i > 0 and kinds[i - 1] == "1q"
                assert i + 1 < len(kinds) and kinds[i + 1] == "1q"


class TestStratifyStructure:
    def test_fuses_1q_runs(self):
        circ = Circuit(2)
        circ.h(0)
        circ.s(0)
        circ.x(0)
        strat = stratify(circ)
        assert strat.count_gates(name="u") == 1

    def test_parallel_2q_gates_share_layer(self):
        circ = Circuit(4)
        circ.cx(0, 1)
        circ.cx(2, 3)
        strat = stratify(circ)
        assert len(two_qubit_layers(strat)) == 1

    def test_sequential_2q_on_same_qubit_split(self):
        circ = Circuit(3)
        circ.cx(0, 1)
        circ.cx(1, 2)
        strat = stratify(circ)
        assert len(two_qubit_layers(strat)) == 2

    def test_measure_is_barrier(self):
        circ = Circuit(2, num_clbits=1)
        circ.h(0)
        circ.measure(0, 0)
        circ.h(0)
        strat = stratify(circ)
        kinds = [layer_kind(m) for m in strat.moments]
        assert "measure" in kinds

    def test_delay_passthrough(self):
        circ = Circuit(1)
        circ.delay(500.0, 0)
        strat = stratify(circ)
        assert any(i.gate.is_delay for i in strat.instructions())

    def test_identity_fused_away(self):
        circ = Circuit(1)
        circ.h(0)
        circ.h(0)
        strat = stratify(circ)
        assert strat.count_gates(name="u") == 0

    def test_three_qubit_gate_rejected(self):
        circ = Circuit(3)
        bad = g.Gate("ccx", 3, matrix=np.eye(8))
        circ.append(bad, [0, 1, 2])
        with pytest.raises(ValueError):
            stratify(circ)

    def test_validate_rejects_mixed_moment(self):
        circ = Circuit(3)
        circ.cx(0, 1)
        circ.moments[0].add(
            __import__("repro.circuits.circuit", fromlist=["Instruction"]).Instruction(
                g.H, (2,)
            )
        )
        with pytest.raises(ValueError):
            validate_stratified(circ)
