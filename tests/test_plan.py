"""Plan/execute split tests: compile_tasks, ExecutionPlan, and the cache.

The load-bearing guarantees:

* results are bit-identical for every (compile workers x sim workers x
  backend) combination — parallelism only changes wall time;
* a warm plan cache changes nothing but wall time;
* the cache is content-addressed: only deterministic pipelines participate,
  and any change to circuit, recipe parameters, or device changes the key.
"""

import itertools

import pytest

from conftest import OBS, batch_signature, det_pipeline, layered_circuit, mixed_tasks
from repro import (
    ExecutionPlan,
    Pipeline,
    SimOptions,
    Task,
    compile_tasks,
    run,
)
from repro.runtime import (
    CADD,
    CAEC,
    PLAN_CACHE,
    AlignedDD,
    Pass,
    PlanCache,
    Twirl,
    circuit_fingerprint,
    device_fingerprint,
    get_backend,
    pipeline_for,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    """Every test starts (and leaves) the process-wide cache empty."""
    PLAN_CACHE.clear()
    yield
    PLAN_CACHE.clear()


class TestCompileTasks:
    def test_plans_execute_identically_to_run(self, chain4):
        opts = SimOptions(shots=4)
        via_tasks = run(mixed_tasks(), chain4, options=opts)
        plans = compile_tasks(mixed_tasks(), chain4, options=opts)
        assert all(isinstance(p, ExecutionPlan) for p in plans)
        via_plans = run(plans, options=opts)
        assert batch_signature(via_tasks) == batch_signature(via_plans)

    def test_one_plan_runs_on_every_backend(self, chain4):
        """The same pre-built plans feed all three engines."""
        opts = SimOptions(shots=4)
        plans = compile_tasks(
            [Task(layered_circuit(), observables=OBS, pipeline=det_pipeline(),
                  seed=3)],
            chain4,
            options=opts,
        )
        for backend in ("trajectory", "vectorized", "density"):
            direct = run(
                Task(layered_circuit(), observables=OBS,
                     pipeline=det_pipeline(), seed=3),
                chain4, options=opts, backend=backend,
            )
            via_plans = run(plans, options=opts, backend=backend)
            assert batch_signature(direct) == batch_signature(via_plans)

    def test_plans_remember_compile_options(self, chain4):
        """run(plans) without options reuses the compile-time options, so
        the two-stage path reproduces run(tasks, options=...) exactly even
        for seedless tasks whose sub-seeds were baked at compile time."""
        opts = SimOptions(shots=9, seed=21)
        tasks = [
            Task(layered_circuit(), observables=OBS, pipeline=det_pipeline(),
                 realizations=2)  # no task seed: stream comes from options
        ]
        one_stage = run(tasks, chain4, options=opts)
        plans = compile_tasks(tasks, chain4, options=opts)
        assert plans[0].options is opts
        two_stage = run(plans)  # no options: plans' compile options apply
        assert batch_signature(one_stage) == batch_signature(two_stage)
        assert two_stage[0].shots == 18  # 2 realizations x 9 shots

    def test_mixed_tasks_and_plans_rejected(self, chain4):
        plans = compile_tasks(
            [Task(layered_circuit(), observables=OBS, seed=1)], chain4
        )
        with pytest.raises(TypeError, match="cannot mix"):
            run([Task(layered_circuit(), observables=OBS, seed=2), plans[0]],
                chain4)

    def test_plans_with_conflicting_options_rejected(self, chain4):
        """Executing plans compiled under different noise models would
        silently apply one model to the other's circuits — refuse instead."""
        a = compile_tasks(
            [Task(layered_circuit(), observables=OBS, seed=1)], chain4,
            options=SimOptions(shots=4),
        )
        b = compile_tasks(
            [Task(layered_circuit(), observables=OBS, seed=1)], chain4,
            options=SimOptions(shots=4, gate_errors=False),
        )
        with pytest.raises(ValueError, match="different options"):
            run(a + b)
        # ... unless the caller states which options to use.
        batch = run(a + b, options=SimOptions(shots=4))
        assert len(batch) == 2

    def test_direct_tasks_stay_out_of_the_cache(self, chain4):
        """Raw circuits are never content-repeated; hashing them would only
        pollute the LRU (layer-fidelity pushes 100s of unique circuits)."""
        compile_tasks(
            [Task(layered_circuit(), observables=OBS, seed=1)], chain4
        )
        assert len(PLAN_CACHE) == 0
        assert PLAN_CACHE.stats == {"hits": 0, "misses": 0, "entries": 0}

    def test_execute_plans_backend_api(self, chain4):
        opts = SimOptions(shots=4)
        plans = compile_tasks(mixed_tasks(), chain4, options=opts)
        results = get_backend("trajectory").execute_plans(plans, options=opts)
        reference = run(mixed_tasks(), chain4, options=opts)
        assert batch_signature(results) == batch_signature(reference)

    def test_plan_metadata(self, chain4):
        plans = compile_tasks(mixed_tasks(), chain4)
        assert len(plans[0].units) == 3 and not plans[0].collapsible  # twirled
        assert len(plans[1].units) == 2 and plans[1].collapsible  # deterministic
        assert plans[2].direct and len(plans[2].units) == 1
        assert plans[0].kind == "expectations"
        assert plans[3].kind == "probabilities"
        assert all(p.compile_seconds >= 0.0 for p in plans)

    def test_deterministic_realizations_share_scheduled(self, chain4):
        plan = compile_tasks(
            [Task(layered_circuit(), observables=OBS, pipeline=det_pipeline(),
                  realizations=4, seed=0)],
            chain4,
        )[0]
        assert len({id(u.scheduled) for u in plan.units}) == 1

    def test_missing_device_raises(self):
        with pytest.raises(ValueError, match="no device"):
            compile_tasks([Task(layered_circuit(), observables=OBS)])


class TestWorkerInvariance:
    """Property: any (compile workers x sim workers x backend) combination
    is bit-identical — the acceptance guarantee of the plan/execute split."""

    @pytest.mark.parametrize("backend", ["trajectory", "vectorized", "density"])
    def test_grid_bit_identical(self, chain4, backend):
        opts = SimOptions(shots=4)
        reference = run(
            mixed_tasks(), chain4, options=opts, backend=backend,
            workers=1, compile_workers=1,
        )
        for compile_workers, workers in itertools.product((1, 2, 3), (1, 2, 3)):
            if (compile_workers, workers) == (1, 1):
                continue
            PLAN_CACHE.clear()
            batch = run(
                mixed_tasks(), chain4, options=opts, backend=backend,
                workers=workers, compile_workers=compile_workers,
            )
            assert batch_signature(batch) == batch_signature(reference), (
                f"compile_workers={compile_workers}, workers={workers}"
            )

    def test_backend_run_entry_point_invariant(self, chain4):
        """Backend.run (bypassing run()) honors the same guarantee."""
        opts = SimOptions(shots=4)
        engine = get_backend("trajectory")
        serial = engine.run(mixed_tasks(), chain4, options=opts)
        threaded = engine.run(
            mixed_tasks(), chain4, options=opts, workers=3, compile_workers=2
        )
        assert batch_signature(serial) == batch_signature(threaded)


class TestPlanCache:
    def test_warm_cache_changes_nothing_but_wall_time(self, chain4):
        """Property: re-running any task list against a warm cache yields
        bit-identical results, for any worker combination."""
        opts = SimOptions(shots=4)
        cold = run(mixed_tasks(), chain4, options=opts)
        assert PLAN_CACHE.misses > 0
        for compile_workers, workers in ((1, 1), (2, 3)):
            warm = run(
                mixed_tasks(), chain4, options=opts,
                workers=workers, compile_workers=compile_workers,
            )
            assert batch_signature(warm) == batch_signature(cold)
        assert PLAN_CACHE.hits > 0

    def test_cache_shares_plans_across_tasks_in_one_batch(self, chain4):
        """Two tasks with the same (circuit, recipe, device) content hit the
        same cache entry and share one scheduled artifact."""
        tasks = [
            Task(layered_circuit(), observables=OBS, pipeline=det_pipeline(),
                 realizations=2, seed=s)
            for s in (1, 2)
        ]
        plans = compile_tasks(tasks, chain4)
        assert PLAN_CACHE.misses == 1
        assert PLAN_CACHE.hits == 1
        assert id(plans[0].units[0].scheduled) == id(plans[1].units[0].scheduled)
        # ... while the derived seeds still follow each task's own stream.
        assert plans[0].units[0].seed != plans[1].units[0].seed

    def test_stochastic_pipelines_bypass_the_cache(self, chain4):
        tasks = [
            Task(layered_circuit(), observables=OBS, pipeline="ca_ec+dd",
                 realizations=2, seed=s)
            for s in (1, 2)
        ]
        compile_tasks(tasks, chain4)
        assert PLAN_CACHE.hits == 0
        assert PLAN_CACHE.misses == 0

    def test_unfingerprintable_pass_bypasses_the_cache(self, chain4):
        class Opaque(Pass):
            name = "opaque"

            def run(self, circuit, device, ctx):
                return circuit

        pipeline = Pipeline([Opaque()])
        assert pipeline.is_deterministic
        assert pipeline.fingerprint is None
        compile_tasks(
            [Task(layered_circuit(), observables=OBS, pipeline=pipeline, seed=0,
                  realizations=2)],
            chain4,
        )
        assert len(PLAN_CACHE) == 0

    def test_cache_disabled_with_none(self, chain4):
        compile_tasks(
            [Task(layered_circuit(), observables=OBS, pipeline=det_pipeline(),
                  seed=0)],
            chain4,
            cache=None,
        )
        assert len(PLAN_CACHE) == 0

    def test_lru_eviction(self, chain4):
        cache = PlanCache(maxsize=2)
        for layers in (1, 2, 3):
            compile_tasks(
                [Task(layered_circuit(layers=layers), observables=OBS,
                      pipeline=det_pipeline(), seed=0)],
                chain4,
                cache=cache,
            )
        assert len(cache) == 2
        assert cache.stats == {"hits": 0, "misses": 3, "entries": 2}

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            PlanCache(maxsize=0)


class TestFingerprints:
    def test_circuit_fingerprint_is_content_addressed(self):
        a, b = layered_circuit(), layered_circuit()
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        b.h(0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_circuit_fingerprint_sees_params_and_tags(self):
        base = layered_circuit()
        rotated = layered_circuit()
        rotated.rz(0.1, 0)
        other_angle = layered_circuit()
        other_angle.rz(0.2, 0)
        assert circuit_fingerprint(rotated) != circuit_fingerprint(other_angle)
        tagged = layered_circuit()
        tagged.moments[0] = type(tagged.moments[0])(
            [inst.with_tag("dd") for inst in tagged.moments[0]]
        )
        assert circuit_fingerprint(base) != circuit_fingerprint(tagged)

    def test_device_fingerprint_sees_calibration(self, chain4, chain2):
        assert device_fingerprint(chain4) == device_fingerprint(chain4)
        assert device_fingerprint(chain4) != device_fingerprint(chain2)

    def test_pipeline_fingerprint_sees_pass_parameters(self):
        assert (
            Pipeline([AlignedDD(100.0)]).fingerprint
            != Pipeline([AlignedDD(200.0)]).fingerprint
        )
        assert Pipeline([CADD(), CAEC()]).fingerprint == Pipeline(
            [CADD(), CAEC()]
        ).fingerprint
        assert Pipeline(()).fingerprint == "identity"

    def test_named_recipes_have_fingerprints(self):
        for name in ("none", "dd", "staggered_dd", "ca_dd", "ca_ec", "ca_ec+dd"):
            assert pipeline_for(name).fingerprint is not None

    def test_twirl_makes_pipeline_uncacheable_but_fingerprintable(self):
        pipeline = Pipeline([Twirl(), CADD()])
        assert pipeline.fingerprint is not None
        assert not pipeline.is_deterministic


class TestBatchTiming:
    def test_compile_exec_split_reported(self, chain4):
        batch = run(mixed_tasks(), chain4, options=SimOptions(shots=2))
        assert batch.compile_time > 0.0
        assert batch.exec_time > 0.0
        assert batch.wall_time >= max(batch.compile_time, batch.exec_time)
