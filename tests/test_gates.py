"""Unit tests for the gate library."""

import math

import numpy as np
import pytest

from repro.circuits import gates as g
from repro.utils.linalg import allclose_up_to_global_phase, is_unitary


class TestFixedGates:
    @pytest.mark.parametrize(
        "gate",
        [g.I, g.X, g.Y, g.Z, g.H, g.S, g.SDG, g.T, g.SX, g.SXDG, g.CX, g.CZ, g.ECR],
    )
    def test_unitary(self, gate):
        assert is_unitary(gate.matrix)

    def test_pauli_products(self):
        assert np.allclose(g.X_MAT @ g.X_MAT, np.eye(2))
        assert np.allclose(g.X_MAT @ g.Y_MAT, 1j * g.Z_MAT)
        assert np.allclose(g.Z_MAT @ g.X_MAT, 1j * g.Y_MAT)

    def test_sx_squares_to_x(self):
        assert allclose_up_to_global_phase(g.SX_MAT @ g.SX_MAT, g.X_MAT)

    def test_h_conjugates_z_to_x(self):
        assert np.allclose(g.H_MAT @ g.Z_MAT @ g.H_MAT, g.X_MAT)

    def test_ecr_is_hermitian_and_self_inverse(self):
        assert np.allclose(g.ECR_MAT, g.ECR_MAT.conj().T)
        assert np.allclose(g.ECR_MAT @ g.ECR_MAT, np.eye(4))

    def test_ecr_locally_equivalent_to_cx(self):
        # ECR and CX share the maximally-entangling Weyl point: both map a
        # product basis to a maximally entangled one. Check the standard
        # invariant: |tr(M)| where M is the magic-basis Gram matrix.
        from repro.circuits.weyl import _BELL

        def weyl_invariants(u):
            m = _BELL.conj().T @ u @ _BELL
            gram = m.T @ m
            return sorted(np.round(np.abs(np.linalg.eigvals(gram)), 6))

        assert weyl_invariants(g.ECR_MAT) == weyl_invariants(g.CX_MAT)

    def test_ecr_flip_fractions(self):
        assert g.ECR.flip_fractions == ((0.5,), (0.25, 0.75))


class TestRotations:
    @pytest.mark.parametrize("theta", [0.0, 0.3, math.pi / 2, math.pi, -1.7])
    def test_rz_diagonal(self, theta):
        m = g.rz_matrix(theta)
        assert np.allclose(np.diag(np.diag(m)), m)
        assert is_unitary(m)

    def test_rz_composition(self):
        assert np.allclose(
            g.rz_matrix(0.4) @ g.rz_matrix(0.7), g.rz_matrix(1.1)
        )

    def test_rx_pi_is_x(self):
        assert allclose_up_to_global_phase(g.rx_matrix(math.pi), g.X_MAT)

    def test_ry_pi_is_y(self):
        assert allclose_up_to_global_phase(g.ry_matrix(math.pi), g.Y_MAT)

    def test_rzz_is_kron_consistent(self):
        theta = 0.8
        expected = (
            math.cos(theta / 2) * np.eye(4)
            - 1j * math.sin(theta / 2) * np.kron(g.Z_MAT, g.Z_MAT)
        )
        assert np.allclose(g.rzz_matrix(theta), expected)

    def test_u_gate_matches_euler_product(self):
        m = g.u_matrix(0.3, 0.5, 0.7)
        expected = g.rz_matrix(0.5) @ g.ry_matrix(0.3) @ g.rz_matrix(0.7)
        assert np.allclose(m, expected)


class TestCanonical:
    def test_zero_angles_is_identity(self):
        assert allclose_up_to_global_phase(g.canonical_matrix(0, 0, 0), np.eye(4))

    def test_pure_zz_matches_rzz(self):
        gamma = 0.37
        assert allclose_up_to_global_phase(
            g.canonical_matrix(0, 0, gamma), g.rzz_matrix(-2 * gamma)
        )

    def test_commuting_factors(self):
        a, b, c = 0.2, 0.5, 0.9
        product = (
            g.canonical_matrix(a, 0, 0)
            @ g.canonical_matrix(0, b, 0)
            @ g.canonical_matrix(0, 0, c)
        )
        assert np.allclose(g.canonical_matrix(a, b, c), product)

    def test_carries_hardware_footprint(self):
        gate = g.canonical(0.1, 0.2, 0.3)
        assert gate.error_scale == 3.0
        assert gate.flip_fractions == ((0.5,), (0.25, 0.75))


class TestDDSequence:
    def test_even_pulses_net_identity(self):
        gate = g.dd_sequence((0.25, 0.75))
        assert np.allclose(gate.matrix, np.eye(2))

    def test_odd_pulses_net_x(self):
        gate = g.dd_sequence((0.5,))
        assert np.allclose(gate.matrix, g.X_MAT)

    def test_rejects_out_of_range_fractions(self):
        with pytest.raises(ValueError):
            g.dd_sequence((0.5, 1.2))

    def test_duration_override(self):
        gate = g.dd_sequence((0.25, 0.75), duration=480.0)
        assert gate.duration_override == 480.0


class TestStretchedRzz:
    def test_error_scales_with_angle(self):
        small = g.stretched_rzz(0.1)
        large = g.stretched_rzz(1.0)
        assert small.error_scale < large.error_scale
        assert small.error_scale == pytest.approx(0.1 / (math.pi / 2))

    def test_error_scale_clamped(self):
        assert g.stretched_rzz(10.0).error_scale == 1.0

    def test_zero_wallclock(self):
        assert g.stretched_rzz(0.3).duration_override == 0.0

    def test_matrix_matches_plain_rzz(self):
        assert np.allclose(g.stretched_rzz(0.4).matrix, g.rzz_matrix(0.4))


class TestPauliGateLookup:
    def test_all_labels(self):
        for label in "IXYZ":
            assert g.pauli_gate(label).name in ("id", "x", "y", "z")

    def test_rejects_bad_label(self):
        with pytest.raises(ValueError):
            g.pauli_gate("Q")
