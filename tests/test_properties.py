"""Hypothesis property tests on compiler-wide invariants.

These run the full pipeline on randomly generated layered circuits and
random synthetic devices, checking the properties that hold by construction:

* every DD flavor preserves the circuit unitary (twirl off, nets identity);
* CA-EC exactly restores the ideal expectation under static coherent noise
  whenever its compensations can all be realized;
* CA-DD colorings never give two crosstalk-adjacent idle qubits the same
  Walsh sequence;
* compilation never changes the number of logical 2q gates.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, schedule
from repro.compiler import (
    apply_aligned_dd,
    apply_ca_dd,
    apply_ca_ec,
    apply_staggered_dd,
    compile_circuit,
)
from repro.device import linear_chain, synthetic_device
from repro.sim import SimOptions, expectation_values
from repro.utils.linalg import allclose_up_to_global_phase

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)

NUM_QUBITS = 4

# A layered circuit description: a list of layers, each either a 1q layer
# (list of (qubit, angle) rz/h choices) or a 2q layer (one can/ecr gate).
layer_strategy = st.one_of(
    st.tuples(
        st.just("2q"),
        st.sampled_from(["can", "ecr"]),
        st.integers(0, NUM_QUBITS - 2),
        st.floats(-1.0, 1.0, allow_nan=False),
    ),
    st.tuples(
        st.just("1q"),
        st.lists(
            st.tuples(st.integers(0, NUM_QUBITS - 1), st.floats(-3.0, 3.0, allow_nan=False)),
            max_size=3,
        ),
    ),
)

circuit_strategy = st.lists(layer_strategy, min_size=1, max_size=5)
seed_strategy = st.integers(0, 10_000)


def build_layered(description):
    circ = Circuit(NUM_QUBITS)
    circ.append_moment([])
    for layer in description:
        if layer[0] == "2q":
            _kind, gate, start, angle = layer
            if gate == "can":
                circ.can(angle, 0.2, 0.3, start, start + 1, new_moment=True)
            else:
                circ.ecr(start, start + 1, new_moment=True)
            circ.append_moment([])
        else:
            _kind, ops = layer
            seen = set()
            instructions = []
            from repro.circuits import gates as g
            from repro.circuits.circuit import Instruction

            for qubit, angle in ops:
                if qubit in seen:
                    continue
                seen.add(qubit)
                instructions.append(Instruction(g.u(0.4, angle, 0.1), (qubit,)))
            circ.append_moment(instructions)
            circ.append_moment([])
    return circ


@pytest.fixture(scope="module")
def device():
    return synthetic_device(linear_chain(NUM_QUBITS), seed=777)


class TestDDPreservesLogic:
    @given(circuit_strategy, seed_strategy)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_all_dd_flavors(self, description, seed):
        device = synthetic_device(linear_chain(NUM_QUBITS), seed=777)
        circ = build_layered(description)
        reference = circ.unitary()
        for pass_fn in (apply_aligned_dd, apply_staggered_dd):
            dressed = pass_fn(circ, device)
            assert allclose_up_to_global_phase(
                dressed.unitary(), reference, atol=1e-7
            )
        dressed, _report = apply_ca_dd(circ, device)
        assert allclose_up_to_global_phase(
            dressed.unitary(), reference, atol=1e-7
        )


class TestCAECExactness:
    @given(circuit_strategy)
    @settings(max_examples=20, deadline=None)
    def test_static_noise_fully_compensated(self, description):
        device = synthetic_device(linear_chain(NUM_QUBITS), seed=778)
        circ = build_layered(description)
        compensated, report = apply_ca_ec(circ, device)
        if report.blocked:
            return  # nothing to assert when compensation was impossible
        options = SimOptions(
            shots=1, stochastic=False, dephasing=False,
            amplitude_damping=False, gate_errors=False, seed=0,
        )
        observables = {
            f"x{q}": "".join(
                "X" if i == NUM_QUBITS - 1 - q else "I"
                for i in range(NUM_QUBITS)
            )
            for q in range(NUM_QUBITS)
        }
        ideal = expectation_values(circ, device.ideal(), observables, options)
        got = expectation_values(compensated, device, observables, options)
        # Explicit insertions are exact too (zero wall-clock stretch model);
        # everything should match to numerical precision.
        for key in observables:
            assert got[key] == pytest.approx(ideal[key], abs=1e-6), key


class TestColoringValidity:
    @given(circuit_strategy)
    @settings(max_examples=20, deadline=None)
    def test_no_adjacent_idles_share_color(self, description):
        device = synthetic_device(linear_chain(NUM_QUBITS), seed=779)
        circ = build_layered(description)
        _dressed, report = apply_ca_dd(circ, device)
        crosstalk_edges = set(device.crosstalk_edges())
        for index, coloring in report.colorings.items():
            for a, b in crosstalk_edges:
                if a in coloring.assigned and b in coloring.assigned:
                    assert coloring.colors[a] != coloring.colors[b], (
                        index,
                        a,
                        b,
                    )


class TestStructuralInvariants:
    @given(circuit_strategy, seed_strategy)
    @settings(max_examples=15, deadline=None)
    def test_logical_2q_gate_count_preserved(self, description, seed):
        device = synthetic_device(linear_chain(NUM_QUBITS), seed=780)
        circ = build_layered(description)
        logical = sum(
            1
            for inst in circ.instructions()
            if inst.gate.num_qubits == 2
        )
        for strategy in ("none", "ca_dd", "ca_ec", "ca_ec+dd"):
            compiled = compile_circuit(circ, device, strategy, seed=seed)
            compiled_logical = sum(
                1
                for inst in compiled.instructions()
                if inst.gate.num_qubits == 2 and inst.tag != "compensation"
            )
            assert compiled_logical == logical, strategy

    @given(circuit_strategy, seed_strategy)
    @settings(max_examples=10, deadline=None)
    def test_compilation_never_shrinks_wallclock_accounting(self, description, seed):
        device = synthetic_device(linear_chain(NUM_QUBITS), seed=781)
        circ = build_layered(description)
        base = compile_circuit(circ, device, "none", seed=seed)
        combined = compile_circuit(circ, device, "ca_ec+dd", seed=seed)
        t_base = schedule(base, device.durations).total_duration
        t_combined = schedule(combined, device.durations).total_duration
        assert t_combined == pytest.approx(t_base)
