"""Gate-orientation (context-avoidance) pass tests."""

import networkx as nx
import pytest

from repro.circuits import Circuit, gates as g
from repro.compiler import apply_ca_dd, apply_orientation, choose_orientations
from repro.compiler.orientation import compose_1q
from repro.device import linear_chain, synthetic_device
from repro.utils.linalg import allclose_up_to_global_phase


@pytest.fixture
def device():
    return synthetic_device(linear_chain(6), seed=91)


def _conflicting_circuit(gate="ecr"):
    """Two gates whose controls (1, 2) are adjacent — the case-IV layout."""
    circ = Circuit(4)
    circ.append_moment([])
    getattr(circ, gate)(1, 0, new_moment=True)
    getattr(circ, gate)(2, 3)
    circ.append_moment([])
    return circ


class TestReversalIdentity:
    @pytest.mark.parametrize("gate", ["ecr", "cx"])
    def test_flip_preserves_unitary(self, gate):
        device = synthetic_device(linear_chain(4), seed=91)
        circ = _conflicting_circuit(gate)
        out, _report = apply_orientation(circ, device)
        assert allclose_up_to_global_phase(
            out.unitary(), circ.unitary(), atol=1e-7
        )

    def test_flip_swaps_physical_roles(self):
        device = synthetic_device(linear_chain(4), seed=91)
        circ = _conflicting_circuit()
        out, report = apply_orientation(circ, device)
        assert report.flipped == 1
        controls = sorted(
            i.qubits[0] for i in out.instructions() if i.gate.name == "ecr"
        )
        assert controls != [1, 2]  # no longer both on the adjacent pair


class TestConflictReduction:
    def test_resolves_control_control(self, device):
        circ = _conflicting_circuit()
        _out, report = apply_orientation(
            circ, synthetic_device(linear_chain(4), seed=91)
        )
        assert report.conflicts_before == 1
        assert report.conflicts_after == 0

    def test_orientation_removes_case_iv_for_ca_dd(self):
        """After orienting, CA-DD's coloring reports no conflicts."""
        device = synthetic_device(linear_chain(4), seed=91)
        circ = _conflicting_circuit()
        oriented, _rep = apply_orientation(circ, device)
        _dressed, report = apply_ca_dd(oriented, device)
        assert report.conflicts == []
        _dressed_bad, report_bad = apply_ca_dd(circ, device)
        assert report_bad.conflicts != []

    def test_no_flip_when_already_clean(self, device):
        circ = Circuit(6)
        circ.append_moment([])
        circ.ecr(1, 0, new_moment=True)
        circ.ecr(4, 5)  # far apart: no conflict
        circ.append_moment([])
        _out, report = apply_orientation(circ, device)
        assert report.flipped == 0
        assert report.conflicts_before == 0

    def test_chain_of_three_gates(self):
        """Three ECRs head-to-head on a 6-chain: orientation removes all
        same-role adjacencies."""
        device = synthetic_device(linear_chain(6), seed=92)
        circ = Circuit(6)
        circ.append_moment([])
        circ.ecr(1, 0, new_moment=True)
        circ.ecr(2, 3)
        circ.ecr(4, 5)  # target 3 adjacent to control 4? roles: t3-c4 fine
        circ.append_moment([])
        out, report = apply_orientation(circ, device)
        assert report.conflicts_after <= report.conflicts_before
        assert allclose_up_to_global_phase(
            out.unitary(), circ.unitary(), atol=1e-7
        )


class TestChooseOrientations:
    def _graph(self, edges, n):
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        return graph

    def test_empty(self):
        assert choose_orientations([], self._graph([], 0)) == []

    def test_single_gate_unflipped(self):
        flips = choose_orientations([(0, 1)], self._graph([(0, 1)], 2))
        assert flips == [False]

    def test_flip_breaks_target_target(self):
        # gates (0,1) and (3,2): targets 1, 2 adjacent.
        flips = choose_orientations(
            [(0, 1), (3, 2)], self._graph([(0, 1), (1, 2), (2, 3)], 4)
        )
        from repro.compiler.orientation import _role_conflicts

        graph = self._graph([(0, 1), (1, 2), (2, 3)], 4)
        assert _role_conflicts([(0, 1), (3, 2)], graph, flips) == 0


class TestCompose1Q:
    def test_into_empty_layer(self):
        circ = Circuit(2)
        circ.append_moment([])
        compose_1q(circ, 0, 0, g.H_MAT, position="pre")
        inst = circ.moments[0].instruction_on(0)
        assert inst is not None and inst.tag == "orientation"

    def test_fuse_order_pre_vs_post(self):

        for position, expected in (
            ("pre", g.H_MAT @ g.S_MAT),
            ("post", g.S_MAT @ g.H_MAT),
        ):
            circ = Circuit(1)
            circ.s(0)
            compose_1q(circ, 0, 0, g.H_MAT, position=position)
            fused = circ.moments[0].instruction_on(0).gate.matrix
            assert allclose_up_to_global_phase(fused, expected, atol=1e-8)

    def test_rejects_non_1q_layer(self):
        circ = Circuit(2)
        circ.ecr(0, 1)
        with pytest.raises(ValueError):
            compose_1q(circ, 0, 0, g.H_MAT, position="pre")

    def test_rejects_missing_layer(self):
        circ = Circuit(1)
        circ.h(0)
        with pytest.raises(ValueError):
            compose_1q(circ, 5, 0, g.H_MAT, position="pre")
