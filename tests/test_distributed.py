"""Distributed backend: sharding, transports, failure recovery, parity.

The contract under test is the ISSUE's acceptance criterion:
``run(tasks, device, backend="distributed")`` is bit-for-bit identical to
``backend="trajectory"`` for every (shard size × worker count × transport)
combination — including after a simulated worker crash — because
per-realization seeds are derived from the plan, never from the worker.
"""

import os
import pickle
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro import SimOptions, Task, compile_tasks, run
from repro.runtime import (
    BACKENDS,
    DistributedBackend,
    LocalShardExecutor,
    SocketShardExecutor,
    configure,
    default_dist_connect,
    default_dist_serve,
    default_dist_shard_size,
    default_dist_workers,
    get_backend,
    shard_plans,
)
from repro.runtime.distributed import WorkUnit, execute_work_unit, parse_address

from conftest import OBS, batch_signature, det_pipeline, layered_circuit, mixed_tasks

OPTIONS = SimOptions(shots=8, seed=5)


@pytest.fixture(autouse=True)
def _reset_dist_defaults():
    """Every test starts (and leaves) the process-wide dist knobs pristine."""
    yield
    configure(
        dist_workers=None,
        dist_shard_size=None,
        dist_serve=None,
        dist_connect=None,
        dist_inner="trajectory",
    )


def reference(device, backend="trajectory"):
    return batch_signature(run(mixed_tasks(), device, options=OPTIONS, backend=backend))


def distributed(device, **kwargs):
    crash_token = kwargs.pop("crash_token", None)
    worker_args = kwargs.pop("worker_args", None)
    backend = DistributedBackend(**kwargs)
    if crash_token is not None:
        backend._crash_token = str(crash_token)
    if worker_args is not None:
        backend._worker_args = worker_args
    return batch_signature(run(mixed_tasks(), device, options=OPTIONS, backend=backend))


# ---------------------------------------------------------------------------
# Shard construction
# ---------------------------------------------------------------------------


class TestShardPlans:
    def plans(self, device):
        return compile_tasks(mixed_tasks(), device=device, options=OPTIONS)

    def test_covers_every_unit_in_order(self, chain4):
        plans = self.plans(chain4)
        shards = shard_plans(plans, shard_size=2)
        for index, plan in enumerate(plans):
            mine = [s for s in shards if s.plan_index == index]
            assert [s.shard_index for s in mine] == list(range(len(mine)))
            reassembled = [u for s in mine for u in s.units]
            assert reassembled == list(plan.units)
            assert all(len(s.units) <= 2 for s in mine)
            assert [s.start for s in mine] == [2 * k for k in range(len(mine))]

    def test_shard_size_one_isolates_units(self, chain4):
        plans = self.plans(chain4)
        shards = shard_plans(plans, shard_size=1)
        assert all(len(s.units) == 1 for s in shards)
        assert len(shards) == sum(len(p.units) for p in plans)

    def test_direct_plan_metadata(self, chain4):
        plans = self.plans(chain4)
        direct = [s for s in shards_of(plans, 4) if s.direct]
        assert len(direct) == 1  # mixed_tasks has one raw task
        assert direct[0].kind == "expectations"

    def test_collapse_for_exact_backends(self, chain4):
        plans = self.plans(chain4)
        collapsed = shard_plans(plans, shard_size=8, seed_sensitive=False)
        for plan, count in zip(
            plans, [len(s.units) for s in collapsed if s.shard_index == 0]
        ):
            if plan.collapsible:
                assert count == 1

    def test_rejects_bad_shard_size(self, chain4):
        with pytest.raises(ValueError, match="shard_size"):
            shard_plans(self.plans(chain4), shard_size=0)

    def test_shards_pickle_without_the_task(self, chain4):
        # Factory tasks hold closures a worker can't unpickle; shards must
        # travel anyway because they carry no Task at all.
        task = Task(
            factory=lambda rng: layered_circuit(),
            observables=OBS,
            realizations=2,
            seed=3,
        )
        plans = compile_tasks([task], device=chain4, options=OPTIONS)
        with pytest.raises(Exception):
            pickle.dumps(plans[0])  # the plan itself embeds the lambda
        shards = shard_plans(plans, shard_size=1)
        restored = pickle.loads(pickle.dumps(shards))
        assert [s.units[0].seed for s in restored] == [
            s.units[0].seed for s in shards
        ]


def shards_of(plans, size):
    return shard_plans(plans, shard_size=size)


# ---------------------------------------------------------------------------
# Work units
# ---------------------------------------------------------------------------


class TestWorkUnit:
    def test_execute_matches_backend_hooks(self, chain4):
        plans = compile_tasks(mixed_tasks(), device=chain4, options=OPTIONS)
        shard = shard_plans(plans, shard_size=3)[0]
        unit = WorkUnit(shard=shard, inner="trajectory", options=OPTIONS)
        outcomes = execute_work_unit(pickle.loads(pickle.dumps(unit)))
        assert len(outcomes) == len(shard.units)
        backend = get_backend("trajectory")
        for plan_unit, (result, seconds) in zip(shard.units, outcomes):
            engine = backend._make_engine(plan_unit.scheduled, plan_unit.device, OPTIONS)
            expected = backend._execute(
                engine, shard.kind, shard.payload, shard.shots, plan_unit.seed
            )
            assert result.values == expected.values
            assert seconds >= 0.0

    def test_inline_execution_ignores_crash_token(self, chain4, tmp_path):
        plans = compile_tasks(mixed_tasks(), device=chain4, options=OPTIONS)
        shard = shard_plans(plans, shard_size=2)[0]
        token = tmp_path / "crash"
        unit = WorkUnit(
            shard=shard, inner="trajectory", options=OPTIONS, crash_token=str(token)
        )
        # in_worker=False is the coordinator's inline drain: it must never
        # trip the injected crash (os._exit would kill the test process).
        outcomes = execute_work_unit(unit, in_worker=False)
        assert len(outcomes) == len(shard.units)
        assert not token.exists()


# ---------------------------------------------------------------------------
# Bit-for-bit parity across the (shard size x workers x transport) grid
# ---------------------------------------------------------------------------


class TestLocalParity:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("shard_size", [1, 2, None])
    def test_matches_trajectory(self, chain4, workers, shard_size):
        assert distributed(
            chain4, dist_workers=workers, shard_size=shard_size
        ) == reference(chain4)

    def test_matches_vectorized_inner(self, chain4):
        assert distributed(chain4, inner="vectorized", dist_workers=2) == reference(
            chain4, backend="vectorized"
        )

    def test_matches_density_inner(self, chain4):
        assert distributed(
            chain4, inner="density", dist_workers=2, shard_size=1
        ) == reference(chain4, backend="density")

    def test_registered_backend_name(self, chain4):
        got = run(mixed_tasks(), chain4, options=OPTIONS, backend="distributed")
        assert "distributed" in BACKENDS
        assert all(r.backend == "distributed" for r in got)
        assert batch_signature(got) == reference(chain4)

    def test_plans_execute_on_any_backend(self, chain4):
        plans = compile_tasks(mixed_tasks(), device=chain4, options=OPTIONS)
        local = get_backend("trajectory").execute_plans(plans, options=OPTIONS)
        dist = DistributedBackend(dist_workers=2).execute_plans(plans, options=OPTIONS)
        assert [(r.values, r.errors, r.shots) for r in dist] == [
            (r.values, r.errors, r.shots) for r in local
        ]


class TestSocketParity:
    def test_spawned_workers_match_trajectory(self, chain4):
        assert distributed(
            chain4, dist_workers=2, shard_size=2, serve="127.0.0.1:0"
        ) == reference(chain4)

    def test_dial_out_to_listening_worker(self, chain4):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.distributed",
                "worker",
                "--listen",
                f"127.0.0.1:{port}",
                "--once",
            ],
            env=env,
            stdout=subprocess.PIPE,
        )
        try:
            assert b"listening" in proc.stdout.readline()
            assert distributed(
                chain4, shard_size=2, connect=[f"127.0.0.1:{port}"]
            ) == reference(chain4)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()


# ---------------------------------------------------------------------------
# Worker-failure paths: crashes re-queue, runs complete, bits don't move
# ---------------------------------------------------------------------------


class TestFailureRecovery:
    def test_local_pool_survives_worker_crash(self, chain4, tmp_path):
        token = tmp_path / "crash-local"
        assert distributed(
            chain4, dist_workers=2, shard_size=1, crash_token=token
        ) == reference(chain4)
        assert token.exists()  # the crash really happened

    def test_socket_requeues_crashed_workers_shard(self, chain4, tmp_path):
        token = tmp_path / "crash-socket"
        assert distributed(
            chain4,
            dist_workers=2,
            shard_size=1,
            serve="127.0.0.1:0",
            crash_token=token,
        ) == reference(chain4)
        assert token.exists()

    def test_coordinator_drains_after_whole_fleet_dies(self, chain4):
        # Every spawned worker hard-exits while holding its second shard;
        # with nobody left the coordinator must finish the queue inline.
        assert distributed(
            chain4,
            dist_workers=2,
            shard_size=1,
            serve="127.0.0.1:0",
            worker_args=("--max-units", "1"),
        ) == reference(chain4)

    def test_local_executor_inline_fallback(self, chain4, tmp_path):
        # max_retries=0: the only pool generation crashes, so the shard
        # must complete via the coordinator's inline fallback.
        plans = compile_tasks(
            [Task(layered_circuit(), observables=OBS, pipeline=det_pipeline(),
                  realizations=1, seed=3)],
            device=chain4,
            options=OPTIONS,
        )
        shard = shard_plans(plans, shard_size=1)[0]
        token = tmp_path / "always"
        unit = WorkUnit(
            shard=shard, inner="trajectory", options=OPTIONS, crash_token=str(token)
        )
        results = LocalShardExecutor(workers=1, max_retries=0).run([unit])
        assert unit.key in results and len(results[unit.key]) == 1


# ---------------------------------------------------------------------------
# Configuration surface: constructor, configure(), CLI
# ---------------------------------------------------------------------------


class TestConfiguration:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="inner"):
            DistributedBackend(inner="distributed")
        with pytest.raises(ValueError, match="dist_workers"):
            DistributedBackend(dist_workers=0)
        with pytest.raises(ValueError, match="shard_size"):
            DistributedBackend(shard_size=0)
        with pytest.raises(ValueError):
            LocalShardExecutor(workers=0)
        with pytest.raises(ValueError):
            SocketShardExecutor(spawn=-1)

    def test_parse_address(self):
        assert parse_address("example.org:7777") == ("example.org", 7777)
        assert parse_address("7777") == ("127.0.0.1", 7777)
        assert parse_address(":7777") == ("127.0.0.1", 7777)
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("nonsense")
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("host:notaport")

    def test_configure_roundtrip(self):
        configure(
            dist_workers=3,
            dist_shard_size=2,
            dist_serve="0.0.0.0:7777",
            dist_connect="worker:7778",
        )
        assert default_dist_workers() == 3
        assert default_dist_shard_size() == 2
        assert default_dist_serve() == "0.0.0.0:7777"
        assert default_dist_connect() == ("worker:7778",)
        configure(dist_serve=None, dist_connect=None)
        assert default_dist_serve() is None
        assert default_dist_connect() == ()

    def test_configure_validation(self):
        with pytest.raises(ValueError, match="dist_workers"):
            configure(dist_workers=0)
        with pytest.raises(ValueError, match="dist_shard_size"):
            configure(dist_shard_size=0)
        with pytest.raises(ValueError, match="HOST:PORT"):
            configure(dist_serve="not an address")
        with pytest.raises(ValueError, match="HOST:PORT"):
            configure(dist_connect=["ok:1", "broken"])
        with pytest.raises(ValueError, match="dist_inner"):
            configure(dist_inner="distributed")
        # failed configure leaves the defaults untouched
        assert default_dist_workers() is None

    def test_configured_defaults_reach_the_backend(self, chain4):
        configure(dist_workers=2, dist_shard_size=1)
        assert batch_signature(
            run(mixed_tasks(), chain4, options=OPTIONS, backend="distributed")
        ) == reference(chain4)

    def test_run_workers_feed_the_fleet_size(self, chain4):
        count, serve, connect, shard_size = DistributedBackend()._resolve(workers=3)
        assert (count, serve, tuple(connect), shard_size) == (3, None, (), None)

    def test_cli_flags_configure_the_runtime(self):
        from repro.experiments.__main__ import main

        assert (
            main(
                [
                    "list",
                    "--backend",
                    "distributed",
                    "--dist-workers",
                    "2",
                    "--dist-shard-size",
                    "4",
                    "--dist-serve",
                    "127.0.0.1:7901",
                    "--dist-connect",
                    "127.0.0.1:7902",
                    "--dist-connect",
                    "127.0.0.1:7903",
                ]
            )
            == 0
        )
        assert default_dist_workers() == 2
        assert default_dist_shard_size() == 4
        assert default_dist_serve() == "127.0.0.1:7901"
        assert default_dist_connect() == ("127.0.0.1:7902", "127.0.0.1:7903")
        from repro.runtime import default_backend

        assert default_backend() == "distributed"
        configure(backend="trajectory")

    def test_cli_rejects_bad_counts(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["list", "--dist-workers", "0"])
        with pytest.raises(SystemExit):
            main(["list", "--dist-shard-size", "0"])
