"""CLI runner tests."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "fig9", "table1"):
            assert name in out

    def test_registry_covers_all_figures(self):
        assert set(EXPERIMENTS) == {
            "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "table1"
        }

    def test_quick_fig9(self, capsys):
        assert main(["fig9", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "bare fidelity" in out
        assert "peak" in out

    def test_quick_table1(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Slow Z" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_backend_flag_selects_vectorized(self, capsys):
        from repro.runtime.run import configure, default_backend, default_workers

        prev_backend, prev_workers = default_backend(), default_workers()
        try:
            assert main(["fig3", "--quick", "--backend", "vectorized"]) == 0
            assert default_backend() == "vectorized"
            assert "case1_idle_pair" in capsys.readouterr().out
        finally:
            configure(workers=prev_workers, backend=prev_backend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--quick", "--backend", "warp-drive"])

    def test_plan_cache_flag_with_directory(self, tmp_path, capsys):
        """A path argument selects disk mode rooted there, and the second
        invocation finds the first one's plans on disk."""
        from repro.runtime import PLAN_CACHE, configure, plan_cache_mode

        cache_dir = tmp_path / "plans"
        try:
            assert main(["fig9", "--quick", "--plan-cache", str(cache_dir)]) == 0
            assert plan_cache_mode() == "disk"
            assert str(PLAN_CACHE.store.root) == str(cache_dir)
            first = capsys.readouterr().out
            PLAN_CACHE.clear()  # second invocation: memory cold, disk warm
            assert main(["fig9", "--quick", "--plan-cache", str(cache_dir)]) == 0
            second = capsys.readouterr().out
            assert [l for l in first.splitlines() if "F =" in l] == [
                l for l in second.splitlines() if "F =" in l
            ]
        finally:
            configure(plan_cache="memory", plan_cache_dir=None)
            PLAN_CACHE.clear()

    def test_plan_cache_off(self):
        from repro.runtime import PLAN_CACHE, configure, plan_cache_mode

        try:
            assert main(["fig9", "--quick", "--plan-cache", "off"]) == 0
            assert plan_cache_mode() == "off"
        finally:
            configure(plan_cache="memory")
            PLAN_CACHE.clear()

    def test_compile_mode_and_workers_flags(self, capsys):
        from repro.runtime import (
            configure,
            default_compile_mode,
            default_compile_workers,
        )

        try:
            assert main(
                ["fig9", "--quick", "--compile-mode", "process",
                 "--compile-workers", "2"]
            ) == 0
            assert default_compile_mode() == "process"
            assert default_compile_workers() == 2
            assert "peak" in capsys.readouterr().out
        finally:
            configure(compile_mode="thread", compile_workers=None)

    def test_bad_compile_flags_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9", "--quick", "--compile-mode", "fiber"])
        with pytest.raises(SystemExit):
            main(["fig9", "--quick", "--compile-workers", "0"])
