"""CLI runner tests."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "fig9", "table1"):
            assert name in out

    def test_registry_covers_all_figures(self):
        assert set(EXPERIMENTS) == {
            "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "table1"
        }

    def test_quick_fig9(self, capsys):
        assert main(["fig9", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "bare fidelity" in out
        assert "peak" in out

    def test_quick_table1(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Slow Z" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_backend_flag_selects_vectorized(self, capsys):
        from repro.runtime.run import configure, default_backend, default_workers

        prev_backend, prev_workers = default_backend(), default_workers()
        try:
            assert main(["fig3", "--quick", "--backend", "vectorized"]) == 0
            assert default_backend() == "vectorized"
            assert "case1_idle_pair" in capsys.readouterr().out
        finally:
            configure(workers=prev_workers, backend=prev_backend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--quick", "--backend", "warp-drive"])
