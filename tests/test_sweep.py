"""Sweep layer tests: grids, keyed lookup, curves, and JSON export."""

import json

import pytest

from repro import Circuit, SimOptions, Sweep, Task
from repro.runtime.sweep import _json_value


def plus_circuit(depth: int) -> Circuit:
    circ = Circuit(2)
    circ.h(0)
    for _ in range(depth):
        circ.delay(500.0, 0, new_moment=True)
        circ.delay(500.0, 1)
        circ.append_moment([])
    circ.h(0, new_moment=True)
    return circ


def make_sweep(strategies=("none", "ca_ec"), depths=(0, 2)):
    return Sweep(
        {"strategy": strategies, "depth": list(depths)},
        lambda strategy, depth: Task(
            plus_circuit(depth),
            bit_targets={"f": {0: 0}},
            pipeline=strategy,
            realizations=2,
            seed=100 + depth,
            name=f"{strategy}/d{depth}",
        ),
        name="test-sweep",
    )


class TestSweepConstruction:
    def test_points_row_major(self):
        sweep = make_sweep()
        assert sweep.points() == [
            ("none", 0), ("none", 2), ("ca_ec", 0), ("ca_ec", 2)
        ]

    def test_builder_skips_none(self, chain2):
        sweep = Sweep(
            {"strategy": ("none", "ca_ec"), "depth": (0, 2)},
            lambda strategy, depth: None
            if strategy == "ca_ec" and depth == 0
            else Task(
                plus_circuit(depth), bit_targets={"f": {0: 0}}, seed=1
            ),
        )
        coords, tasks = sweep.tasks()
        assert ("ca_ec", 0) not in coords
        assert len(tasks) == 3

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="at least one axis"):
            Sweep({}, lambda: None)
        with pytest.raises(ValueError, match="no values"):
            Sweep({"depth": []}, lambda depth: None)

    def test_rejects_all_skipped(self, chain2):
        sweep = Sweep({"x": [1, 2]}, lambda x: None)
        with pytest.raises(ValueError, match="no tasks"):
            sweep.tasks()


class TestSweepRun:
    def test_matches_equivalent_flat_run(self, chain2):
        from repro import run

        opts = SimOptions(shots=4)
        swept = make_sweep().run(chain2, options=opts)
        tasks = [
            Task(
                plus_circuit(depth),
                bit_targets={"f": {0: 0}},
                pipeline=strategy,
                realizations=2,
                seed=100 + depth,
            )
            for strategy in ("none", "ca_ec")
            for depth in (0, 2)
        ]
        flat = run(tasks, chain2, options=opts)
        assert [r.values for _c, r in swept] == [r.values for r in flat]

    def test_lookup_and_curves(self, chain2):
        swept = make_sweep().run(chain2, options=SimOptions(shots=4))
        point = swept[("ca_ec", 2)]
        assert point.name == "ca_ec/d2"
        assert swept.get(strategy="ca_ec", depth=2) is point
        assert swept.value("f", strategy="ca_ec", depth=2) == point.values["f"]
        curve = swept.curve("f", strategy="ca_ec")
        assert curve == [swept[("ca_ec", 0)].values["f"], point.values["f"]]
        assert len(swept) == 4
        assert ("none", 0) in swept
        assert ("nope", 0) not in swept
        assert "test-sweep" in repr(swept)

    def test_single_axis_scalar_lookup(self, chain2):
        swept = Sweep(
            {"depth": (0, 2)},
            lambda depth: Task(
                plus_circuit(depth), bit_targets={"f": {0: 0}}, seed=3
            ),
        ).run(chain2, options=SimOptions(shots=4))
        assert swept[0].values["f"] == swept[(0,)].values["f"]
        assert swept.curve("f") == [swept[0].values["f"], swept[2].values["f"]]

    def test_lookup_errors(self, chain2):
        swept = make_sweep().run(chain2, options=SimOptions(shots=2))
        with pytest.raises(KeyError):
            swept[("none", 99)]
        with pytest.raises(KeyError, match="exactly the axes"):
            swept.get(strategy="none")
        with pytest.raises(ValueError, match="one free axis"):
            swept.curve("f")
        with pytest.raises(KeyError, match="unknown axes"):
            swept.curve("f", flavor="none", depth=0)

    def test_metadata_delegation(self, chain2):
        swept = make_sweep().run(
            chain2, options=SimOptions(shots=2), backend="trajectory", workers=2
        )
        assert swept.backend == "trajectory"
        assert swept.workers == 2
        assert swept.wall_time >= swept.exec_time >= 0.0
        assert swept.compile_time > 0.0


class TestSweepSerialization:
    def test_to_json_round_trips(self, chain2):
        swept = make_sweep().run(chain2, options=SimOptions(shots=4))
        payload = swept.to_json()
        text = json.dumps(payload)  # must be JSON-safe
        loaded = json.loads(text)
        assert loaded["sweep"] == "test-sweep"
        assert loaded["axes"] == {"strategy": ["none", "ca_ec"], "depth": [0, 2]}
        assert len(loaded["points"]) == 4
        first = loaded["points"][0]
        assert first["coords"] == {"strategy": "none", "depth": 0}
        assert first["values"]["f"] == swept[("none", 0)].values["f"]
        assert first["realizations"] == 2

    def test_save_json(self, chain2, tmp_path):
        swept = make_sweep().run(chain2, options=SimOptions(shots=2))
        path = tmp_path / "sweep.json"
        swept.save_json(str(path))
        assert json.loads(path.read_text())["sweep"] == "test-sweep"

    def test_json_value_coercion(self):
        import numpy as np

        assert _json_value(np.int64(3)) == 3
        assert _json_value(np.float64(0.5)) == 0.5
        assert _json_value("x") == "x"
        assert _json_value(None) is None
        assert _json_value((1, 2)) == "(1, 2)"


class TestCLIIntegration:
    def test_json_flag_writes_sweep_payload(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        path = tmp_path / "out.json"
        assert main(["fig9", "--quick", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert set(payload) == {"fig9"}
        sweep = payload["fig9"]["sweep"]
        assert sweep["axes"]["variant"][0] == "bare"
        assert len(sweep["points"]) == len(sweep["axes"]["variant"])
        assert "wrote" in capsys.readouterr().out

    def test_chunk_shots_flag_configures_default(self, chain2, capsys):
        from repro.circuits.schedule import schedule
        from repro.experiments.__main__ import main
        from repro.runtime import VectorizedBackend, configure, default_chunk_shots

        def engine_chunk(backend):
            scheduled = schedule(plus_circuit(0), chain2.durations)
            return backend._make_engine(scheduled, chain2, SimOptions()).chunk_shots

        previous = default_chunk_shots()
        backend = VectorizedBackend()  # constructed before configure():
        try:
            assert main(["fig9", "--quick", "--chunk-shots", "32"]) == 0
            assert default_chunk_shots() == 32
            # ... yet tracks the reconfigured default at engine build time.
            assert engine_chunk(backend) == 32
            assert VectorizedBackend(chunk_shots=8).chunk_shots == 8
            # 0 restores auto-sizing.
            assert main(["fig9", "--quick", "--chunk-shots", "0"]) == 0
            assert default_chunk_shots() is None
        finally:
            configure(chunk_shots=previous)

    def test_negative_chunk_shots_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig9", "--quick", "--chunk-shots", "-4"])

    def test_configure_validates_chunk_shots(self):
        from repro.runtime import configure, default_chunk_shots

        previous = default_chunk_shots()
        with pytest.raises(ValueError, match="chunk_shots"):
            configure(chunk_shots=0)
        assert default_chunk_shots() == previous
