"""Executor tests: trajectory noise channels, expectations, dynamics."""

import math

import pytest

from repro.circuits import Circuit, gates as g
from repro.device import linear_chain, synthetic_device
from repro.sim import (
    SimOptions,
    average_over_realizations,
    bit_probabilities,
    expectation_values,
)

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)


class TestIdealExecution:
    def test_bell_state(self, chain2, ideal_options):
        circ = Circuit(2)
        circ.h(0)
        circ.cx(0, 1)
        res = expectation_values(circ, chain2, {"xx": "XX", "zz": "ZZ"}, ideal_options)
        assert res["xx"] == pytest.approx(1.0)
        assert res["zz"] == pytest.approx(1.0)

    def test_qubit_count_mismatch_raises(self, chain3, ideal_options):
        circ = Circuit(2)
        with pytest.raises(ValueError):
            expectation_values(circ, chain3, {"z": "IZ"}, ideal_options)

    def test_conditional_feedforward(self, chain2, ideal_options):
        """X conditioned on a measured |1> flips the target; on |0> doesn't."""
        for prep, expected in ((False, 1.0), (True, -1.0)):
            circ = Circuit(2, num_clbits=1)
            if prep:
                circ.x(0)
            circ.measure(0, 0)
            circ.x(1, condition=(0, 1))
            res = expectation_values(circ, chain2, {"z1": "ZI"}, ideal_options)
            assert res["z1"] == pytest.approx(expected)

    def test_mid_circuit_collapse(self, chain2, ideal_options):
        circ = Circuit(2, num_clbits=1)
        circ.h(0)
        circ.cx(0, 1)
        circ.measure(0, 0)
        # After measuring one Bell qubit, ZZ stays 1 but XX collapses.
        res = expectation_values(
            circ, chain2, {"zz": "ZZ", "xx": "XX"}, SimOptions(
                shots=64, seed=3, coherent=False, stochastic=False,
                dephasing=False, amplitude_damping=False, gate_errors=False,
            )
        )
        assert res["zz"] == pytest.approx(1.0)
        assert abs(res["xx"]) < 0.35


class TestStochasticChannels:
    def test_dephasing_damps_x(self):
        dev = synthetic_device(linear_chain(1), seed=5)
        from dataclasses import replace

        qubit = replace(dev.qubits[0], t2=2000.0, t1=float("inf"))
        dev = replace(dev, qubits=[qubit])
        circ = Circuit(1)
        circ.h(0)
        circ.delay(2000.0, 0, new_moment=True)
        opts = SimOptions(
            shots=400, seed=11, coherent=False, stochastic=False,
            amplitude_damping=False, gate_errors=False,
        )
        res = expectation_values(circ, dev, {"x": "X"}, opts)
        # One T2 of pure dephasing: <X> ~ exp(-1) ~ 0.37.
        assert 0.2 < res["x"] < 0.55

    def test_amplitude_damping_decays_one(self):
        dev = synthetic_device(linear_chain(1), seed=5)
        from dataclasses import replace

        qubit = replace(dev.qubits[0], t1=1000.0, t2=float("inf"))
        dev = replace(dev, qubits=[qubit])
        circ = Circuit(1)
        circ.x(0)
        circ.delay(1000.0, 0, new_moment=True)
        opts = SimOptions(
            shots=400, seed=12, coherent=False, stochastic=False,
            dephasing=False, gate_errors=False,
        )
        res = expectation_values(circ, dev, {"z": "Z"}, opts)
        # <Z> = P0 - P1 = 1 - 2 exp(-t/T1) ~ +0.26 at t = T1.
        assert 0.05 < res["z"] < 0.5

    def test_gate_errors_damp_repeated_gates(self, chain2):
        circ = Circuit(2)
        circ.h(0)
        for _ in range(30):
            circ.ecr(0, 1, new_moment=True)
        opts = SimOptions(
            shots=200, seed=13, coherent=False, stochastic=False,
            dephasing=False, amplitude_damping=False,
        )
        res = expectation_values(circ, chain2, {"x": "IX"}, opts)
        assert abs(res["x"]) < 0.9  # 30 ECRs at ~1% error visibly damp

    def test_quasistatic_detuning_dephases_only_with_stochastic(self, chain2):
        circ = Circuit(2)
        circ.h(0)
        circ.delay(20000.0, 0, new_moment=True)
        base = dict(
            dephasing=False, amplitude_damping=False, gate_errors=False,
        )
        coherent_only = expectation_values(
            circ, chain2, {"x": "IX"},
            SimOptions(shots=1, stochastic=False, seed=1, **base),
        )
        with_noise = expectation_values(
            circ, chain2, {"x": "IX"},
            SimOptions(shots=300, stochastic=True, seed=1, **base),
        )
        assert abs(with_noise["x"]) < abs(coherent_only["x"]) + 0.05


class TestReadout:
    def test_readout_attenuation_on_expectations(self, chain2):
        circ = Circuit(2)
        circ.h(0)
        opts_clean = SimOptions(
            shots=1, coherent=False, stochastic=False, dephasing=False,
            amplitude_damping=False, gate_errors=False, seed=0,
        )
        from dataclasses import replace as dreplace

        opts_noisy = dreplace(opts_clean, readout_errors=True)
        clean = expectation_values(circ, chain2, {"x": "IX"}, opts_clean)
        noisy = expectation_values(circ, chain2, {"x": "IX"}, opts_noisy)
        r = chain2.qubit(0).readout_error
        assert noisy["x"] == pytest.approx(clean["x"] * (1 - 2 * r))

    def test_noisy_bit_probability(self, chain2):
        circ = Circuit(2)
        opts = SimOptions(
            shots=1, coherent=False, stochastic=False, dephasing=False,
            amplitude_damping=False, gate_errors=False, readout_errors=True,
            seed=0,
        )
        res = bit_probabilities(circ, chain2, {"p00": {0: 0, 1: 0}}, opts)
        expected = (1 - chain2.qubit(0).readout_error) * (
            1 - chain2.qubit(1).readout_error
        )
        assert res["p00"] == pytest.approx(expected)


class TestAggregation:
    def test_errors_reported(self, chain2, noisy_options):
        circ = Circuit(2)
        circ.h(0)
        circ.delay(5000.0, 0, new_moment=True)
        res = expectation_values(circ, chain2, {"x": "IX"}, noisy_options)
        assert res.errors["x"] >= 0.0
        assert res.shots == noisy_options.shots

    def test_average_over_realizations(self, chain2, coherent_options):
        circ = Circuit(2)
        circ.h(0)

        def factory(rng):
            out = circ.copy()
            # trivially randomized realization: a virtual frame pair
            angle = float(rng.uniform(0, 2 * math.pi))
            out.rz(angle, 1, new_moment=True)
            out.rz(-angle, 1)
            return out

        res = average_over_realizations(
            factory, chain2, {"x": "IX"}, realizations=5,
            options=coherent_options, seed=4,
        )
        assert res["x"] == pytest.approx(1.0, abs=1e-9)

    def test_seed_reproducibility(self, chain2):
        circ = Circuit(2)
        circ.h(0)
        circ.delay(3000.0, 0, new_moment=True)
        opts = SimOptions(shots=50, seed=99)
        a = expectation_values(circ, chain2, {"x": "IX"}, opts)
        b = expectation_values(circ, chain2, {"x": "IX"}, opts)
        assert a["x"] == b["x"]


class TestErrorScale:
    def test_stretched_rzz_cheaper_than_full(self, chain2):
        def run(gate):
            circ = Circuit(2)
            circ.h(0)
            for _ in range(60):
                circ.append(gate, [0, 1], new_moment=True)
            opts = SimOptions(
                shots=300, seed=21, coherent=False, stochastic=False,
                dephasing=False, amplitude_damping=False,
            )
            return expectation_values(circ, chain2, {"x": "IX"}, opts)["x"]

        small = run(g.stretched_rzz(0.05))
        full = run(g.rzz(0.05))  # plain gate: full 2q error
        # Identical logical rotation; the stretched pulse loses far less
        # polarization to depolarizing noise.
        assert abs(small) > abs(full) + 0.1
