"""Euler decomposition tests, including hypothesis round-trips (paper eq. 4)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import gates as g
from repro.circuits.euler import euler_angles, fuse
from repro.utils.linalg import allclose_up_to_global_phase, random_unitary


def su2_strategy():
    """Random U(2) matrices built from Euler angles and a global phase."""
    angle = st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)
    return st.tuples(angle, angle, angle, angle).map(
        lambda t: np.exp(1j * t[3])
        * g.rz_matrix(t[1]) @ g.ry_matrix(t[0]) @ g.rz_matrix(t[2])
    )


class TestRoundTrip:
    @given(su2_strategy())
    @settings(max_examples=60, deadline=None)
    def test_angles_reconstruct_matrix(self, matrix):
        angles = euler_angles(matrix)
        assert np.allclose(angles.matrix(), matrix, atol=1e-8)

    @given(su2_strategy())
    @settings(max_examples=60, deadline=None)
    def test_zxzxz_form_equivalent(self, matrix):
        angles = euler_angles(matrix)
        assert allclose_up_to_global_phase(angles.zxzxz_matrix(), matrix)

    def test_identity(self):
        angles = euler_angles(np.eye(2))
        assert angles.theta == pytest.approx(0.0)

    def test_x_gate(self):
        angles = euler_angles(g.X_MAT)
        assert angles.theta == pytest.approx(math.pi)

    def test_pure_rz(self):
        angles = euler_angles(g.rz_matrix(0.7))
        assert angles.theta == pytest.approx(0.0, abs=1e-9)
        assert (angles.phi + angles.lam) == pytest.approx(0.7, abs=1e-9)

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            euler_angles(np.array([[1.0, 0.0], [0.0, 2.0]]))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            euler_angles(np.eye(3))


class TestAbsorption:
    @given(su2_strategy(), st.floats(-3.0, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_absorb_rz_before(self, matrix, eps):
        angles = euler_angles(matrix)
        absorbed = angles.absorb_rz_before(eps)
        assert np.allclose(
            absorbed.matrix(), matrix @ g.rz_matrix(eps), atol=1e-8
        )

    @given(su2_strategy(), st.floats(-3.0, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_absorb_rz_after(self, matrix, eps):
        angles = euler_angles(matrix)
        absorbed = angles.absorb_rz_after(eps)
        assert np.allclose(
            absorbed.matrix(), g.rz_matrix(eps) @ matrix, atol=1e-8
        )

    def test_compensation_cancels_error(self):
        """U' . Rz(eps) == U when U' compensates a preceding Rz(eps)."""
        rng = np.random.default_rng(3)
        matrix = random_unitary(2, rng)
        eps = 0.42
        compensated = euler_angles(matrix).compensate_rz_before(eps)
        total = compensated.matrix() @ g.rz_matrix(eps)
        assert np.allclose(total, matrix, atol=1e-8)


class TestFuse:
    def test_fuse_orders_first_then_second(self):
        fused = fuse(g.H_MAT, g.S_MAT)  # H first, then S
        assert np.allclose(fused.matrix(), g.S_MAT @ g.H_MAT, atol=1e-8)
