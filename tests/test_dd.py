"""Baseline DD insertion pass tests."""

import pytest

from repro.circuits import Circuit, schedule
from repro.compiler.dd import (
    apply_aligned_dd,
    apply_dd_by_rule,
    apply_staggered_dd,
    dd_pulse_count,
)
from repro.sim.timeline import build_timeline


def idle_pair_circuit(depth=2, tau=500.0):
    circ = Circuit(2)
    circ.h(0)
    circ.h(1)
    for _ in range(depth):
        circ.delay(tau, 0, new_moment=True)
        circ.delay(tau, 1)
    circ.h(0, new_moment=True)
    circ.h(1)
    return circ


class TestAlignedDD:
    def test_replaces_delays_with_sequences(self, chain2):
        dressed = apply_aligned_dd(idle_pair_circuit(), chain2)
        assert dressed.count_gates(name="dd") == 4
        assert dressed.count_gates(name="delay") == 0

    def test_preserves_window_duration(self, chain2):
        circ = idle_pair_circuit(depth=1, tau=640.0)
        dressed = apply_aligned_dd(circ, chain2)
        sched = schedule(dressed, chain2.durations)
        delay_moment = next(sm for sm in sched if sm.duration == 640.0)
        assert delay_moment is not None

    def test_skips_short_moments(self, chain2):
        circ = idle_pair_circuit(depth=1, tau=500.0)
        dressed = apply_aligned_dd(circ, chain2, min_duration=150.0)
        # H layers (50 ns) stay undressed.
        for moment in dressed.moments:
            for inst in moment:
                if inst.gate.name == "dd":
                    assert inst.gate.duration_override == 500.0

    def test_all_qubits_same_fractions(self, chain2):
        dressed = apply_aligned_dd(idle_pair_circuit(), chain2)
        fractions = {
            inst.gate.dd_fractions
            for inst in dressed.instructions()
            if inst.gate.name == "dd"
        }
        assert fractions == {(0.25, 0.75)}

    def test_original_untouched(self, chain2):
        circ = idle_pair_circuit()
        apply_aligned_dd(circ, chain2)
        assert circ.count_gates(name="dd") == 0


class TestStaggeredDD:
    def test_neighbors_get_different_fractions(self, chain2):
        dressed = apply_staggered_dd(idle_pair_circuit(), chain2)
        moment = next(
            m
            for m in dressed.moments
            if sum(1 for i in m if i.gate.name == "dd") == 2
        )
        fracs = [i.gate.dd_fractions for i in moment if i.gate.name == "dd"]
        assert fracs[0] != fracs[1]

    def test_two_coloring_respects_chain(self, chain4):
        circ = Circuit(4)
        for q in range(4):
            circ.delay(500.0, q, new_moment=(q == 0))
        dressed = apply_staggered_dd(circ, chain4)
        fracs = {
            inst.qubits[0]: inst.gate.dd_fractions
            for inst in dressed.instructions()
            if inst.gate.name == "dd"
        }
        for a, b in chain4.topology.edges:
            assert fracs[a] != fracs[b]


class TestRulePass:
    def test_rule_none_skips(self, chain2):
        dressed = apply_dd_by_rule(
            idle_pair_circuit(), chain2, lambda _m, _q: None
        )
        assert dressed.count_gates(name="dd") == 0

    def test_rule_receives_idle_qubits_only(self, chain3):
        seen = []

        def rule(_moment, qubit):
            seen.append(qubit)
            return None

        circ = Circuit(3)
        circ.ecr(0, 1, new_moment=True)
        apply_dd_by_rule(circ, chain3, rule)
        assert seen == [2]

    def test_occupied_qubit_raises_via_insert(self, chain2):
        from repro.compiler.dd import _insert_dd

        circ = Circuit(2)
        circ.h(0)
        with pytest.raises(ValueError):
            _insert_dd(circ.moments[0], 0, (0.25, 0.75))


class TestPulseCount:
    def test_counts_physical_pulses(self, chain2):
        dressed = apply_aligned_dd(idle_pair_circuit(depth=3), chain2)
        assert dd_pulse_count(dressed) == 3 * 2 * 2  # depth x qubits x pulses

    def test_timeline_sees_dd_flips(self, chain2):
        dressed = apply_aligned_dd(idle_pair_circuit(depth=1), chain2)
        moment = next(
            m for m in dressed.moments if any(i.gate.name == "dd" for i in m)
        )
        tl = build_timeline(moment, 2, 500.0)
        assert tl.flips[0] == (0.25, 0.75)
