"""Density-matrix simulator tests, including cross-validation against the
trajectory executor."""


import numpy as np
import pytest

from repro.circuits import Circuit, gates as g
from repro.device import linear_chain, synthetic_device
from repro.pauli import Pauli
from repro.sim import (
    DensityMatrix,
    SimOptions,
    bit_probabilities,
    density_expectations,
    density_probabilities,
    expectation_values,
)
from repro.sim.coherent import CoherentAccumulation

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)


class TestDensityMatrix:
    def test_initial_state(self):
        rho = DensityMatrix(2)
        assert rho.matrix[0, 0] == 1.0
        assert rho.trace == pytest.approx(1.0)
        assert rho.purity == pytest.approx(1.0)

    def test_size_limit(self):
        with pytest.raises(ValueError):
            DensityMatrix(11)

    def test_unitary_preserves_purity(self):
        rho = DensityMatrix(2)
        rho.apply_unitary(g.H_MAT, [0])
        rho.apply_unitary(g.CX_MAT, [0, 1])
        assert rho.purity == pytest.approx(1.0)
        assert rho.expectation_pauli(Pauli.from_label("XX")) == pytest.approx(1.0)

    def test_phases_match_unitary(self):
        theta = 0.8
        a = DensityMatrix(2)
        a.apply_unitary(g.H_MAT, [0])
        b = a.copy()
        a.apply_phases(CoherentAccumulation(z={0: theta}))
        b.apply_unitary(g.rz_matrix(theta), [0])
        assert np.allclose(a.matrix, b.matrix)

    def test_dephasing_kills_coherence(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(g.H_MAT, [0])
        rho.apply_dephasing(0, 0.5)  # fully dephasing at p = 1/2
        assert rho.expectation_pauli(Pauli.from_label("X")) == pytest.approx(0.0)
        assert rho.trace == pytest.approx(1.0)

    def test_amplitude_damping_exact(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(g.X_MAT, [0])
        gamma = 0.4
        rho.apply_amplitude_damping(0, gamma)
        # <Z> = 1 - 2(1 - gamma).
        assert rho.expectation_pauli(Pauli.from_label("Z")) == pytest.approx(
            1 - 2 * (1 - gamma)
        )

    def test_depolarizing_shrinks_polarization(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(g.H_MAT, [0])
        rho.apply_depolarizing([0], 0.3)
        # with prob p, uniform X/Y/Z: <X> -> (1-p) + p*(1-2*2/3)... compute:
        # X keeps +1, Y and Z flip sign: (1-p) + p(1 - 2*2/3) = 1 - 4p/3.
        assert rho.expectation_pauli(Pauli.from_label("X")) == pytest.approx(
            1 - 4 * 0.3 / 3
        )

    def test_coherence_factor(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(g.H_MAT, [0])
        rho.apply_coherence_factor(0, 0.5)
        assert rho.expectation_pauli(Pauli.from_label("X")) == pytest.approx(0.5)

    def test_measure_branches(self):
        rho = DensityMatrix(2)
        rho.apply_unitary(g.H_MAT, [0])
        rho.apply_unitary(g.CX_MAT, [0, 1])
        branches = rho.measure_branches(0)
        assert len(branches) == 2
        for prob, state, outcome in branches:
            assert prob == pytest.approx(0.5)
            # Bell state: collapse is perfectly correlated.
            assert state.probability_of_bitstring({1: outcome}) == pytest.approx(1.0)


class TestCrossValidation:
    """The trajectory executor must converge to the exact density result."""

    @pytest.fixture
    def device(self):
        return synthetic_device(linear_chain(3), seed=88)

    def test_coherent_only_exact_agreement(self, device):
        circ = Circuit(3)
        circ.h(0)
        circ.h(1)
        circ.delay(800.0, 0, new_moment=True)
        circ.delay(800.0, 1)
        circ.h(0, new_moment=True)
        opts = SimOptions(
            shots=1, stochastic=False, dephasing=False,
            amplitude_damping=False, gate_errors=False, seed=0,
        )
        obs = {"z0": "IIZ", "x1": "IXI"}
        traj = expectation_values(circ, device, obs, opts)
        dens = density_expectations(circ, device, obs, opts)
        for key in obs:
            assert dens[key] == pytest.approx(traj[key], abs=1e-10)

    def test_dephasing_channel_agreement(self, device):
        from dataclasses import replace

        qubits = [replace(q, t2=3000.0, t1=float("inf")) for q in device.qubits]
        device = replace(device, qubits=qubits)
        circ = Circuit(3)
        circ.h(0)
        circ.delay(3000.0, 0, new_moment=True)
        base = dict(
            stochastic=False, amplitude_damping=False, gate_errors=False,
        )
        dens = density_expectations(
            circ, device, {"x": "IIX"}, SimOptions(shots=1, **base)
        )
        traj = expectation_values(
            circ, device, {"x": "IIX"}, SimOptions(shots=3000, seed=5, **base)
        )
        assert traj["x"] == pytest.approx(dens["x"], abs=0.05)

    def test_gate_error_channel_agreement(self, device):
        circ = Circuit(3)
        circ.h(0)
        for _ in range(10):
            circ.ecr(0, 1, new_moment=True)
        base = dict(
            coherent=False, stochastic=False, dephasing=False,
            amplitude_damping=False,
        )
        dens = density_expectations(
            circ, device, {"x": "IIX"}, SimOptions(shots=1, **base)
        )
        traj = expectation_values(
            circ, device, {"x": "IIX"}, SimOptions(shots=4000, seed=6, **base)
        )
        assert traj["x"] == pytest.approx(dens["x"], abs=0.05)

    def test_quasistatic_single_window_agreement(self, device):
        """One idle window: the Gaussian average is exact for both."""
        from dataclasses import replace

        qubits = [
            replace(
                q, quasistatic_sigma=2e-5, parity_delta=0.0,
                t1=float("inf"), t2=float("inf"),
            )
            for q in device.qubits
        ]
        device = replace(device, qubits=qubits)
        circ = Circuit(3)
        circ.h(0)
        circ.delay(5000.0, 0, new_moment=True)
        base = dict(dephasing=False, amplitude_damping=False, gate_errors=False)
        dens = density_expectations(
            circ, device, {"x": "IIX"}, SimOptions(shots=1, **base)
        )
        traj = expectation_values(
            circ, device, {"x": "IIX"}, SimOptions(shots=4000, seed=7, **base)
        )
        assert traj["x"] == pytest.approx(dens["x"], abs=0.05)

    def test_dynamic_circuit_branching(self, device):
        """Feedforward probabilities agree between branch-exact and sampled."""
        circ = Circuit(3, num_clbits=1)
        circ.h(0)
        circ.cx(0, 1, new_moment=True)
        circ.measure(1, 0, new_moment=True)
        circ.x(2, condition=(0, 1), new_moment=True)
        base = dict(
            coherent=False, stochastic=False, dephasing=False,
            amplitude_damping=False, gate_errors=False,
        )
        dens = density_probabilities(
            circ, device, {"p": {0: 1, 2: 1}}, SimOptions(shots=1, **base)
        )
        traj = bit_probabilities(
            circ, device, {"p": {0: 1, 2: 1}}, SimOptions(shots=600, seed=8, **base)
        )
        assert dens["p"] == pytest.approx(0.5)
        assert traj["p"] == pytest.approx(0.5, abs=0.06)

    def test_ca_ec_exactness_in_density_picture(self, device):
        """CA-EC restores the ideal expectation exactly, channel-level."""
        from repro.compiler import apply_ca_ec

        circ = Circuit(3)
        circ.h(0)
        circ.h(1)
        circ.delay(600.0, 0, new_moment=True)
        circ.delay(600.0, 1)
        circ.append_moment([])
        compensated, _report = apply_ca_ec(circ, device)
        opts = SimOptions(
            shots=1, stochastic=False, dephasing=False,
            amplitude_damping=False, gate_errors=False, seed=0,
        )
        ideal = density_expectations(
            circ, device.ideal(), {"x0": "IIX", "x1": "IXI"}, opts
        )
        fixed = density_expectations(
            compensated, device, {"x0": "IIX", "x1": "IXI"}, opts
        )
        for key in ideal:
            assert fixed[key] == pytest.approx(ideal[key], abs=1e-9)
