"""Tests for the benchmarking protocols (Ramsey, LF, mitigation, FFT)."""


import numpy as np
import pytest

from repro.benchmarking import (
    CASE_I,
    CASE_II,
    CASE_III,
    CASE_IV,
    DepolarizingFit,
    LayerSpec,
    build_case_circuit,
    fit_global_depolarizing,
    gamma_from_layer_fidelity,
    measure_layer_fidelity,
    overhead_ratio,
    overhead_reduction,
    partition_layer,
    ramsey_curve,
    ramsey_fidelity,
)
from repro.sim import SimOptions


class TestRamseyCircuits:
    def test_case1_structure(self):
        circ = build_case_circuit(CASE_I, depth=3, tau=400.0)
        assert circ.count_gates(name="delay") == 6
        assert circ.count_gates(name="h") == 4

    def test_case2_spectator_next_to_control(self):
        circ = build_case_circuit(CASE_II, depth=2)
        ecr = next(i for i in circ.instructions() if i.gate.name == "ecr")
        assert ecr.qubits == (1, 2)  # control is qubit 1, adjacent to probe 0

    def test_case3_spectator_next_to_target(self):
        circ = build_case_circuit(CASE_III, depth=2)
        ecr = next(i for i in circ.instructions() if i.gate.name == "ecr")
        assert ecr.qubits == (2, 1)  # target is qubit 1

    def test_case4_adjacent_controls(self):
        circ = build_case_circuit(CASE_IV, depth=2)
        controls = sorted(
            {i.qubits[0] for i in circ.instructions() if i.gate.name == "ecr"}
        )
        assert controls == [1, 2]

    def test_unknown_case_raises(self):
        from repro.benchmarking.ramsey import RamseyCase

        with pytest.raises(ValueError):
            build_case_circuit(RamseyCase("mystery", 2, (0,)), 1)

    def test_zero_depth_is_perfect(self, chain2, ideal_options):
        f = ramsey_fidelity(
            CASE_I, chain2, 0, "none", options=ideal_options
        )
        assert f == pytest.approx(1.0)

    def test_curve_length(self, chain2):
        opts = SimOptions(shots=4, seed=0)
        curve = ramsey_curve(CASE_I, chain2, [0, 2, 4], "none", options=opts)
        assert len(curve) == 3


class TestLayerFidelity:
    @pytest.fixture
    def small_spec(self):
        return LayerSpec(num_qubits=4, gates=(("ecr", 0, 1),))

    def test_partitioning(self, chain4, small_spec):
        partitions = partition_layer(small_spec, chain4)
        assert (0, 1) in partitions
        assert (2, 3) in partitions  # adjacent idle pair
        covered = sorted(q for p in partitions for q in p)
        assert covered == [0, 1, 2, 3]

    def test_partitions_disjoint(self, chain4, small_spec):
        partitions = partition_layer(small_spec, chain4)
        seen = set()
        for p in partitions:
            assert not (set(p) & seen)
            seen.update(p)

    def test_isolated_idle_single(self, chain3):
        spec = LayerSpec(num_qubits=3, gates=(("ecr", 0, 1),))
        partitions = partition_layer(spec, chain3)
        assert (2,) in partitions

    def test_ideal_layer_fidelity_is_one(self, small_spec, chain4):
        result = measure_layer_fidelity(
            small_spec,
            chain4.ideal(),
            "none",
            depths=(1, 2, 3),
            samples=2,
            options=SimOptions(
                shots=1, coherent=False, stochastic=False, dephasing=False,
                amplitude_damping=False, gate_errors=False, seed=0,
            ),
            seed=5,
        )
        assert result.layer_fidelity == pytest.approx(1.0, abs=1e-3)
        assert result.gamma == pytest.approx(1.0, abs=1e-2)

    def test_noise_lowers_fidelity(self, small_spec, chain4):
        result = measure_layer_fidelity(
            small_spec, chain4, "none",
            depths=(1, 2, 4), samples=3,
            options=SimOptions(shots=8, seed=1), seed=5,
        )
        assert result.layer_fidelity < 1.0
        assert result.gamma > 1.0

    def test_gamma_relation(self):
        assert gamma_from_layer_fidelity(0.648) == pytest.approx(2.38, abs=0.01)
        assert gamma_from_layer_fidelity(0.881) == pytest.approx(1.29, abs=0.01)

    def test_gamma_rejects_invalid(self):
        with pytest.raises(ValueError):
            gamma_from_layer_fidelity(0.0)

    def test_overhead_reduction_exponential(self):
        assert overhead_reduction(1.81, 1.48, 10) == pytest.approx(
            (1.81 / 1.48) ** 10
        )


class TestMitigationFit:
    def test_recovers_planted_model(self):
        depths = np.arange(6)
        ideal = np.cos(0.4 * depths)
        fit_true = DepolarizingFit(amplitude=0.92, rate=0.88)
        measured = [fit_true.scale(d) * v for d, v in zip(depths, ideal)]
        fit = fit_global_depolarizing(depths, measured, ideal)
        assert fit.rate == pytest.approx(0.88, abs=0.01)
        assert fit.amplitude == pytest.approx(0.92, abs=0.01)

    def test_overhead_is_inverse_square(self):
        fit = DepolarizingFit(amplitude=1.0, rate=0.9)
        assert fit.overhead(5) == pytest.approx(0.9 ** (-10))

    def test_overhead_ratio(self):
        worse = DepolarizingFit(amplitude=1.0, rate=0.8)
        better = DepolarizingFit(amplitude=1.0, rate=0.9)
        assert overhead_ratio(worse, better, 4) > 1.0

    def test_rejects_zero_ideal(self):
        with pytest.raises(ValueError):
            fit_global_depolarizing([0, 1], [0.1, 0.1], [0.0, 0.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_global_depolarizing([0, 1], [1.0], [1.0, 0.9])
