"""Public-API surface tests: everything documented resolves and works."""

import pytest

import repro

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_readme_quickstart_snippet(self):
        """The README's quickstart code runs verbatim."""
        from repro import (
            Circuit,
            SimOptions,
            compile_circuit,
            expectation_values,
            linear_chain,
            synthetic_device,
        )

        device = synthetic_device(linear_chain(4), seed=7)
        circuit = Circuit(4)
        for q in range(4):
            circuit.h(q, new_moment=(q == 0))
        circuit.can(0.3, 0.2, 0.4, 0, 1, new_moment=True)
        circuit.append_moment([])
        compiled = compile_circuit(circuit, device, "ca_ec", seed=0)
        result = expectation_values(
            compiled, device, {"x2": "IXII"}, SimOptions(shots=8, seed=1)
        )
        assert -1.0 <= result["x2"] <= 1.0

    def test_subpackage_all_exports_resolve(self):
        import repro.benchmarking
        import repro.circuits
        import repro.compiler
        import repro.device
        import repro.experiments
        import repro.pauli
        import repro.sim

        for module in (
            repro.circuits,
            repro.pauli,
            repro.device,
            repro.sim,
            repro.compiler,
            repro.benchmarking,
            repro.experiments,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_every_public_callable_has_docstring(self):
        import inspect

        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not inspect.getdoc(obj):
                missing.append(name)
        assert not missing, missing

    def test_strategies_registry_documented(self):
        from repro import STRATEGIES

        assert set(STRATEGIES) == {
            "none",
            "dd",
            "staggered_dd",
            "ca_dd",
            "ca_ec",
            "ca_ec+dd",
            "ec+aligned_dd",
        }
