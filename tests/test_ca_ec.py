"""Context-aware error compensation tests (Algorithm 2)."""


import pytest

from repro.circuits import Circuit
from repro.compiler.ca_ec import apply_ca_ec
from repro.device import linear_chain, synthetic_device
from repro.pauli import apply_twirl
from repro.sim import SimOptions, expectation_values

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)


@pytest.fixture
def coh():
    return SimOptions(
        shots=1, stochastic=False, dephasing=False,
        amplitude_damping=False, gate_errors=False, seed=0,
    )


@pytest.fixture
def ideal():
    return SimOptions(
        shots=1, coherent=False, stochastic=False, dephasing=False,
        amplitude_damping=False, gate_errors=False, seed=0,
    )


def assert_restores_ideal(circ, device, observables, coh, ideal, atol=1e-7):
    compensated, report = apply_ca_ec(circ, device)
    want = expectation_values(circ, device.ideal(), observables, ideal)
    got = expectation_values(compensated, device, observables, coh)
    for key in observables:
        assert got[key] == pytest.approx(want[key], abs=atol), key
    return report


class TestExactCancellation:
    def test_idle_pair(self, chain2, coh, ideal):
        circ = Circuit(2)
        circ.h(0)
        circ.h(1)
        circ.delay(500.0, 0, new_moment=True)
        circ.delay(500.0, 1)
        circ.h(0, new_moment=True)
        circ.h(1)
        report = assert_restores_ideal(
            circ, chain2, {"z0": "IZ", "z1": "ZI"}, coh, ideal
        )
        assert report.z_compensations > 0
        assert report.zz_explicit + report.zz_absorbed > 0

    def test_absorption_into_canonical(self, chain4, coh, ideal):
        circ = Circuit(4)
        for q in range(4):
            circ.h(q, new_moment=(q == 0))
        circ.can(0.3, 0.2, 0.4, 0, 1, new_moment=True)
        circ.append_moment([])
        circ.can(0.1, 0.5, 0.2, 2, 3, new_moment=True)
        circ.append_moment([])
        report = assert_restores_ideal(
            circ, chain4, {"x2": "IXII", "x0": "IIIX"}, coh, ideal
        )
        assert report.zz_absorbed >= 2

    def test_absorption_into_rzz(self, chain2, coh, ideal):
        circ = Circuit(2)
        circ.h(0)
        circ.h(1)
        circ.delay(500.0, 0, new_moment=True)
        circ.delay(500.0, 1)
        circ.append_moment([])
        circ.rzz(0.7, 0, 1, new_moment=True)
        circ.append_moment([])
        compensated, report = apply_ca_ec(circ, chain2)
        assert report.zz_absorbed >= 1
        want = expectation_values(circ, chain2.ideal(), {"x": "IX"}, ideal)
        got = expectation_values(compensated, chain2, {"x": "IX"}, coh)
        assert got["x"] == pytest.approx(want["x"], abs=1e-7)

    def test_spectator_z_compensated(self, chain3, coh, ideal):
        circ = Circuit(3)
        circ.h(0)
        for _ in range(3):
            circ.ecr(1, 2, new_moment=True)
            circ.append_moment([])
        circ.h(0, new_moment=True)
        assert_restores_ideal(circ, chain3, {"z": "IIZ"}, coh, ideal)


class TestTwirlCrossing:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_through_twirl(self, chain4, coh, ideal, seed):
        circ = Circuit(4)
        for q in range(4):
            circ.h(q, new_moment=(q == 0))
        circ.can(0.3, 0.2, 0.4, 0, 1, new_moment=True)
        circ.append_moment([])
        circ.can(0.1, 0.5, 0.2, 2, 3, new_moment=True)
        circ.append_moment([])
        twirled, _record = apply_twirl(circ, seed=seed)
        compensated, _report = apply_ca_ec(twirled, chain4)
        want = expectation_values(
            circ, chain4.ideal(), {"x2": "IXII"}, ideal
        )
        got = expectation_values(compensated, chain4, {"x2": "IXII"}, coh)
        assert got["x2"] == pytest.approx(want["x2"], abs=1e-7)

    def test_sign_flip_through_anticommuting_pauli(self, chain2, coh, ideal):
        """An X between the error and the absorber flips the correction."""
        circ = Circuit(2)
        circ.h(0)
        circ.h(1)
        circ.delay(500.0, 0, new_moment=True)
        circ.delay(500.0, 1)
        circ.x(0, new_moment=True)  # anticommutes with ZZ on (0,1)
        circ.x(1)
        circ.rzz(0.7, 0, 1, new_moment=True)
        circ.append_moment([])
        compensated, report = apply_ca_ec(circ, chain2)
        # Both the delay window's ZZ and the X layer's own small ZZ absorb
        # into the rzz, each crossing the anticommuting X pair.
        assert report.zz_absorbed == 2
        want = expectation_values(circ, chain2.ideal(), {"x": "IX"}, ideal)
        got = expectation_values(compensated, chain2, {"x": "IX"}, coh)
        assert got["x"] == pytest.approx(want["x"], abs=1e-7)


class TestBlockedPaths:
    def test_generic_1q_gate_blocks_absorption(self, chain2):
        circ = Circuit(2)
        circ.append_moment([])
        circ.delay(500.0, 0, new_moment=True)
        circ.delay(500.0, 1)
        circ.h(0, new_moment=True)  # generic gate: ZZ cannot cross
        circ.rzz(0.5, 0, 1, new_moment=True)
        circ.append_moment([])
        _compensated, report = apply_ca_ec(circ, chain2)
        # Forward is blocked; backward finds nothing -> explicit insertion.
        assert report.zz_explicit >= 1

    def test_measurement_blocks_crossing(self, chain2):
        circ = Circuit(2, num_clbits=1)
        circ.append_moment([])
        circ.delay(500.0, 0, new_moment=True)
        circ.delay(500.0, 1)
        circ.measure(0, 0, new_moment=True)
        _compensated, report = apply_ca_ec(circ, chain2)
        assert report.zz_explicit >= 1

    def test_nnn_edge_blocked_without_coupling(self):
        device = synthetic_device(
            linear_chain(3), seed=3, collision_triples=[(0, 1, 2)]
        )
        circ = Circuit(3)
        circ.append_moment([])
        for q in range(3):
            circ.delay(500.0, q, new_moment=(q == 0))
        circ.append_moment([])
        _compensated, report = apply_ca_ec(circ, device)
        blocked_edges = {edge for _i, edge, _t, _r in report.blocked}
        assert (0, 2) in blocked_edges

    def test_allow_explicit_false_blocks(self, chain2):
        circ = Circuit(2)
        circ.append_moment([])
        circ.delay(500.0, 0, new_moment=True)
        circ.delay(500.0, 1)
        circ.append_moment([])
        _compensated, report = apply_ca_ec(circ, chain2, allow_explicit=False)
        assert len(report.blocked) >= 1


class TestInsertions:
    def test_z_compensations_are_virtual(self, chain2):
        circ = Circuit(2)
        circ.append_moment([])
        circ.delay(500.0, 0, new_moment=True)
        circ.delay(500.0, 1)
        circ.append_moment([])
        compensated, _report = apply_ca_ec(circ, chain2)
        comp_rz = [
            i
            for i in compensated.instructions()
            if i.tag == "compensation" and i.gate.name == "rz"
        ]
        assert comp_rz
        from repro.circuits import schedule

        before = schedule(circ, chain2.durations).total_duration
        after = schedule(compensated, chain2.durations).total_duration
        assert after == pytest.approx(before)  # zero wall-clock cost

    def test_explicit_rzz_tagged_and_scaled(self, chain2):
        circ = Circuit(2)
        circ.append_moment([])
        circ.delay(500.0, 0, new_moment=True)
        circ.delay(500.0, 1)
        circ.append_moment([])
        compensated, report = apply_ca_ec(circ, chain2)
        assert report.zz_explicit == 1
        rzz = next(
            i
            for i in compensated.instructions()
            if i.tag == "compensation" and i.gate.name == "rzz"
        )
        assert 0.0 < rzz.gate.error_scale < 1.0

    def test_min_angle_skips_tiny_errors(self, chain2):
        circ = Circuit(2)
        circ.append_moment([])
        circ.delay(500.0, 0, new_moment=True)
        circ.delay(500.0, 1)
        circ.append_moment([])
        _compensated, report = apply_ca_ec(circ, chain2, min_angle=100.0)
        assert report.z_compensations == 0
        assert report.zz_total == 0

    def test_overlapping_rzz_packed_into_moments(self, chain4, coh, ideal):
        """Two idle pairs sharing no qubit share one compensation moment."""
        circ = Circuit(4)
        circ.append_moment([])
        for q in range(4):
            circ.delay(500.0, q, new_moment=(q == 0))
        circ.append_moment([])
        compensated, report = apply_ca_ec(circ, chain4)
        # Chain 0-1-2-3 idle: edges (0,1),(1,2),(2,3) all accumulate; they
        # overlap pairwise except (0,1) with (2,3).
        assert report.zz_explicit == 3
        rzz_moments = [
            m
            for m in compensated.moments
            if any(i.gate.name == "rzz" for i in m)
        ]
        assert len(rzz_moments) == 2  # (0,1)+(2,3) packed, (1,2) alone


class TestPlannerDurations:
    def test_wrong_timing_belief_miscompensates(self, chain2, coh, ideal):
        from dataclasses import replace

        circ = Circuit(2, num_clbits=1)
        circ.h(1)
        circ.measure(0, 0, new_moment=True)
        circ.h(1, new_moment=True)
        right, _ = apply_ca_ec(circ, chain2)
        wrong_durations = replace(chain2.durations, measure=1000.0)
        wrong, _ = apply_ca_ec(circ, chain2, durations=wrong_durations)
        want = expectation_values(circ, chain2.ideal(), {"z": "ZI"}, ideal)
        got_right = expectation_values(right, chain2, {"z": "ZI"}, coh)
        got_wrong = expectation_values(wrong, chain2, {"z": "ZI"}, coh)
        assert got_right["z"] == pytest.approx(want["z"], abs=1e-7)
        assert abs(got_wrong["z"] - want["z"]) > 0.01
