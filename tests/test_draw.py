"""ASCII drawer tests."""

import pytest

from repro.circuits import Circuit, draw, gates as g, summary

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)


class TestDraw:
    def test_simple_circuit(self):
        circ = Circuit(2)
        circ.h(0)
        circ.ecr(0, 1, new_moment=True)
        art = draw(circ)
        lines = art.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("q0:")
        assert "h" in lines[0]
        assert "C" in lines[0]
        assert "T" in lines[1]

    def test_measure_and_delay_symbols(self):
        circ = Circuit(2, num_clbits=1)
        circ.delay(500.0, 0)
        circ.measure(1, 0)
        art = draw(circ)
        assert "~500" in art
        assert "M" in art

    def test_dd_pulse_count_shown(self):
        circ = Circuit(1)
        circ.append(g.dd_sequence((0.25, 0.5, 0.75, 1.0)), [0], tag="dd")
        art = draw(circ)
        assert "DD(4)*" in art

    def test_tagged_insertions_starred(self):
        circ = Circuit(1)
        circ.append(g.rz(0.3), [0], tag="compensation")
        assert "*" in draw(circ)

    def test_max_width_truncates(self):
        circ = Circuit(1)
        for _ in range(30):
            circ.h(0, new_moment=True)
        art = draw(circ, max_width=40)
        for line in art.splitlines():
            assert len(line) <= 40
            assert line.endswith("...")

    def test_compiled_circuit_renders(self, chain3):
        from repro.compiler import compile_circuit

        circ = Circuit(3)
        circ.h(0)
        circ.ecr(1, 2, new_moment=True)
        circ.append_moment([])
        compiled = compile_circuit(circ, chain3, "ca_ec+dd", seed=0)
        art = draw(compiled)
        assert "DD(" in art  # dressing visible

    def test_rows_cover_all_qubits(self):
        circ = Circuit(5)
        circ.h(2)
        lines = draw(circ).splitlines()
        assert [line[:2] for line in lines] == ["q0", "q1", "q2", "q3", "q4"]


class TestSummary:
    def test_counts_and_depth(self):
        circ = Circuit(2)
        circ.h(0)
        circ.ecr(0, 1, new_moment=True)
        text = summary(circ)
        assert "2q" in text
        assert "depth 2" in text
        assert "h:1" in text
        assert "ecr:1" in text

    def test_inserted_counter(self):
        circ = Circuit(1)
        circ.append(g.rz(0.1), [0], tag="compensation")
        assert "inserted:1" in summary(circ)
