"""Vectorized-backend tests: bit-for-bit parity and sharding invariance.

The load-bearing guarantees:

* ``backend="vectorized"`` reproduces ``backend="trajectory"`` **bit for
  bit** — same seeds, same draws, same floats — for every named strategy,
  for orientation pipelines, for dynamic (measure + conditioned) circuits,
  for readout-error models, and for every noise-toggle combination;
* sharding is invisible: any ``workers`` / ``chunk_shots`` configuration
  produces identical values (the property the scale-out story rests on);
* the engine plugs into the registry/CLI plumbing like any other backend.

Every equality below is exact ``==`` on floats, deliberately: the batched
engine is designed to reproduce the scalar bits, and any drift is a bug.
"""

import numpy as np
import pytest

from repro import Circuit, SimOptions, Task, VectorizedBackend, run
from repro.compiler.strategies import STRATEGIES
from repro.runtime import BACKENDS, Orient, Pipeline, Twirl, get_backend
from repro.runtime.run import configure, default_backend
from repro.sim import Executor, VectorizedExecutor
from repro.sim.sampling import build_noise_plan, sample_shot
from repro.utils.rng import as_generator

OBS = {"x1": "IIXI", "z3": "ZIII", "zz": "IIZZ"}


def layered_circuit(num_qubits: int = 4, layers: int = 2) -> Circuit:
    circ = Circuit(num_qubits)
    for q in range(num_qubits):
        circ.h(q, new_moment=(q == 0))
    for _ in range(layers):
        circ.cx(0, 1, new_moment=True)
        circ.append_moment([])
        circ.cx(2, 3, new_moment=True)
        circ.append_moment([])
    return circ


def dynamic_circuit() -> Circuit:
    """Measurement mid-circuit plus a conditioned gate (fig9-style)."""
    circ = Circuit(2, num_clbits=1)
    circ.h(0)
    circ.measure(0, 0, new_moment=True)
    circ.x(1, condition=(0, 1), new_moment=True)
    circ.h(1, new_moment=True)
    return circ


def both(task, device, options, vectorized=None, workers=None):
    a = run(task, device, options=options, backend="trajectory")[0]
    b = run(
        task,
        device,
        options=options,
        backend=vectorized or "vectorized",
        workers=workers,
    )[0]
    return a, b


def assert_identical(a, b):
    assert a.values == b.values
    assert a.errors == b.errors
    assert a.shots == b.shots


class TestBitForBitParity:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_every_named_strategy(self, chain4, strategy):
        task = Task(
            layered_circuit(), observables=OBS, pipeline=strategy,
            realizations=2, seed=11,
        )
        assert_identical(*both(task, chain4, SimOptions(shots=8)))

    def test_orient_pipeline(self, chain4):
        pipeline = Pipeline([Orient(), Twirl()])
        task = Task(
            layered_circuit(), observables=OBS, pipeline=pipeline,
            realizations=2, seed=3,
        )
        assert_identical(*both(task, chain4, SimOptions(shots=8)))

    def test_direct_task(self, chain4):
        task = Task(layered_circuit(), observables=OBS, seed=5)
        assert_identical(*both(task, chain4, SimOptions(shots=16)))

    def test_bit_targets(self, chain4):
        task = Task(
            layered_circuit(), bit_targets={"f": {0: 0, 1: 0}, "g": {2: 1}},
            seed=5,
        )
        assert_identical(*both(task, chain4, SimOptions(shots=16)))

    def test_dynamic_circuit(self, chain2):
        task = Task(dynamic_circuit(), bit_targets={"p1": {1: 1}}, seed=8)
        assert_identical(*both(task, chain2, SimOptions(shots=32)))

    def test_readout_error_expectations(self, chain4):
        task = Task(layered_circuit(), observables=OBS, seed=9)
        options = SimOptions(shots=16, readout_errors=True)
        assert_identical(*both(task, chain4, options))

    def test_readout_error_probabilities(self, chain2):
        task = Task(dynamic_circuit(), bit_targets={"p1": {1: 1}}, seed=8)
        options = SimOptions(shots=32, readout_errors=True)
        assert_identical(*both(task, chain2, options))

    @pytest.mark.parametrize(
        "off",
        ["coherent", "stochastic", "dephasing", "amplitude_damping", "gate_errors"],
    )
    def test_noise_toggle_combinations(self, chain4, off):
        options = SimOptions(shots=8, **{off: False})
        task = Task(layered_circuit(), observables=OBS, seed=4)
        assert_identical(*both(task, chain4, options))

    def test_multi_task_batch_with_workers(self, chain4):
        tasks = [
            Task(
                layered_circuit(layers=k % 2 + 1), observables=OBS,
                pipeline="ca_ec+dd", realizations=2, seed=20 + k,
            )
            for k in range(4)
        ]
        serial = run(tasks, chain4, options=SimOptions(shots=6), backend="trajectory")
        batched = run(
            tasks, chain4, options=SimOptions(shots=6),
            backend="vectorized", workers=3,
        )
        for a, b in zip(serial, batched):
            assert_identical(a, b)


class TestShardingInvariance:
    def test_sharding_never_changes_values(self, chain4):
        """Property: for any (workers, chunk_shots) the values are the same
        bits — sharding only repartitions independent rows."""
        task = Task(layered_circuit(), observables=OBS, seed=2)
        options = SimOptions(shots=30)
        reference = run(task, chain4, options=options, backend="vectorized")[0]
        rng = np.random.default_rng(12345)
        for _ in range(12):
            workers = int(rng.integers(1, 5))
            chunk = int(rng.integers(1, 40))
            result = run(
                task, chain4, options=options,
                backend=VectorizedBackend(chunk_shots=chunk), workers=workers,
            )[0]
            assert result.values == reference.values, (workers, chunk)
            assert result.errors == reference.errors, (workers, chunk)

    def test_chunk_of_one_shot(self, chain4):
        task = Task(layered_circuit(), observables=OBS, seed=2)
        options = SimOptions(shots=5)
        reference = run(task, chain4, options=options, backend="vectorized")[0]
        single = run(
            task, chain4, options=options,
            backend=VectorizedBackend(chunk_shots=1),
        )[0]
        assert_identical(reference, single)

    def test_invalid_chunk_rejected(self, chain4):
        with pytest.raises(ValueError, match="chunk_shots"):
            run(
                Task(layered_circuit(), observables=OBS, seed=0),
                chain4,
                options=SimOptions(shots=2),
                backend=VectorizedBackend(chunk_shots=0),
            )


class TestSamplingHelpers:
    def test_plan_is_state_free_and_reusable(self, chain4):
        """Two generators with the same seed draw identical records."""
        from repro.circuits import schedule

        scheduled = schedule(layered_circuit(), chain4.durations)
        plan = build_noise_plan(scheduled, chain4, SimOptions(shots=1))
        a = sample_shot(plan, as_generator(7))
        b = sample_shot(plan, as_generator(7))
        assert np.array_equal(a.detunings, b.detunings)
        assert a.measure_u == b.measure_u
        assert a.idle_flips == b.idle_flips
        assert a.idle_u == b.idle_u
        assert a.gate_paulis == b.gate_paulis

    def test_executor_engines_share_stream(self, chain4):
        """The scalar and batched engines consume one seed identically."""
        from repro.circuits import schedule

        scheduled = schedule(layered_circuit(), chain4.durations)
        options = SimOptions(shots=12)
        scalar = Executor(scheduled, chain4, options)
        batched = VectorizedExecutor(scheduled, chain4, options)
        paulis = {"x1": "IIXI"}
        from repro.pauli import Pauli

        obs = {k: Pauli.from_label(v) for k, v in paulis.items()}
        assert scalar.expectations(obs, seed=33).values == \
            batched.expectations(obs, seed=33).values


class TestRegistryAndPlumbing:
    def test_vectorized_registered(self):
        assert "vectorized" in BACKENDS
        assert get_backend("vectorized").name == "vectorized"

    def test_run_reports_backend(self, chain4):
        batch = run(
            Task(layered_circuit(), observables=OBS, seed=0),
            chain4,
            options=SimOptions(shots=2),
            backend="vectorized",
        )
        assert batch.backend == "vectorized"

    def test_configure_default_backend(self, chain4):
        previous = default_backend()
        try:
            configure(backend="vectorized")
            batch = run(
                Task(layered_circuit(), observables=OBS, seed=0),
                chain4,
                options=SimOptions(shots=2),
            )
            assert batch.backend == "vectorized"
        finally:
            configure(backend=previous)

    def test_configure_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            configure(backend="warp-drive")

    def test_configure_failure_leaves_defaults_untouched(self):
        from repro.runtime.run import default_workers

        previous = default_workers()
        with pytest.raises(ValueError):
            configure(workers=previous + 3, backend="warp-drive")
        assert default_workers() == previous

    def test_pre_1_2_execute_signature_still_supported(self, chain4):
        """Subclasses written before ``_execute`` grew ``workers`` work."""
        from repro.runtime import TrajectoryBackend

        class LegacyBackend(TrajectoryBackend):
            name = "legacy"

            def _execute(self, engine, kind, payload, shots, seed):
                return super()._execute(engine, kind, payload, shots, seed)

        task = Task(layered_circuit(), observables=OBS, seed=1)
        options = SimOptions(shots=4)
        legacy = run(task, chain4, options=options, backend=LegacyBackend())[0]
        modern = run(task, chain4, options=options, backend="trajectory")[0]
        assert legacy.values == modern.values
