"""Disk-backed plan cache + process-parallel compilation tests.

The load-bearing guarantees of the warm-start layer:

* a warm *disk* cache (a fresh process finding another process's store)
  changes nothing but wall time — bit-identical results for every
  (cache mode x compile mode x worker count x backend) combination;
* the store is corruption-tolerant: truncated, garbage, or
  version-mismatched files are misses (and get deleted), never errors;
* the store is size-bounded: least-recently-used entries are evicted;
* process-parallel compilation preserves per-task RNG streams, falls back
  for unportable tasks, and re-interns artifacts so engine sharing (and
  the plan cache) keep working.
"""

import itertools
import pickle

import pytest

from conftest import OBS, batch_signature, det_pipeline, layered_circuit, mixed_tasks
from repro import SimOptions, Task, compile_tasks, run
from repro.runtime import PLAN_CACHE, PlanCache, PlanStore, configure, plan_cache_mode
from repro.runtime import store as store_module
from repro.runtime.plan import _portable

pytestmark = pytest.mark.usefixtures("fresh_plan_state")


@pytest.fixture
def fresh_plan_state():
    """Tests start memory-cold and leave the global cache configured off-disk."""
    PLAN_CACHE.clear()
    yield
    configure(plan_cache="memory", plan_cache_dir=None, compile_mode="thread")
    PLAN_CACHE.clear()


@pytest.fixture
def disk_dir(tmp_path):
    return tmp_path / "plans"


def cacheable_tasks(seeds=(1, 2), layers=(2, 3)):
    return [
        Task(layered_circuit(layers=n), observables=OBS, pipeline=det_pipeline(),
             realizations=2, seed=s)
        for s in seeds
        for n in layers
    ]


# ---------------------------------------------------------------------------
# PlanStore mechanics
# ---------------------------------------------------------------------------


class TestPlanStore:
    def test_roundtrip_and_stats(self, disk_dir):
        store = PlanStore(disk_dir)
        assert store.get("k") is None
        assert store.put("k", ("compiled", "scheduled"))
        assert store.get("k") == ("compiled", "scheduled")
        assert len(store) == 1
        assert store.stats["hits"] == 1
        assert store.stats["misses"] == 1
        assert store.stats["bytes"] > 0

    def test_clear(self, disk_dir):
        store = PlanStore(disk_dir)
        store.put("k", "v")
        store.clear()
        assert len(store) == 0
        assert store.get("k") is None

    def test_rejects_bad_max_bytes(self, disk_dir):
        with pytest.raises(ValueError, match="max_bytes"):
            PlanStore(disk_dir, max_bytes=0)

    def test_truncated_file_is_a_miss_and_removed(self, disk_dir):
        store = PlanStore(disk_dir)
        store.put("k", ("a", "b"))
        path = store._path("k")
        path.write_bytes(path.read_bytes()[:10])  # torn write
        assert store.get("k") is None
        assert not path.exists()
        assert store.errors == 1
        # The slot is immediately reusable.
        store.put("k", ("a", "b"))
        assert store.get("k") == ("a", "b")

    def test_garbage_file_is_a_miss_and_removed(self, disk_dir):
        store = PlanStore(disk_dir)
        store.put("k", ("a", "b"))
        store._path("k").write_bytes(b"\x00not a pickle at all")
        assert store.get("k") is None
        assert store.errors == 1

    def test_non_dict_payload_rejected(self, disk_dir):
        store = PlanStore(disk_dir)
        store.directory.mkdir(parents=True)
        with open(store._path("k"), "wb") as handle:
            pickle.dump(["unexpected", "layout"], handle)
        assert store.get("k") is None
        assert store.errors == 1

    def test_format_version_mismatch_invalidates(self, disk_dir):
        store = PlanStore(disk_dir)
        store.put("k", ("a", "b"))
        # A file written by a future/past format that kept the directory
        # name: the embedded version must still gate the load.
        with open(store._path("k"), "wb") as handle:
            pickle.dump(
                {"format": store_module.FORMAT_VERSION + 1, "key": "k",
                 "value": ("a", "b")},
                handle,
            )
        assert store.get("k") is None
        assert store.errors == 1

    def test_format_bump_orphans_old_directory(self, disk_dir, monkeypatch):
        old = PlanStore(disk_dir)
        old.put("k", ("a", "b"))
        monkeypatch.setattr(store_module, "FORMAT_VERSION",
                            store_module.FORMAT_VERSION + 1)
        new = PlanStore(disk_dir)
        assert new.directory != old.directory
        assert new.get("k") is None  # plain miss, not an error
        assert new.errors == 0

    def test_key_recorded_and_checked(self, disk_dir):
        """A (vanishingly unlikely) filename collision cannot alias keys."""
        store = PlanStore(disk_dir)
        store.put("k", ("a", "b"))
        target = store._path("other")
        target.parent.mkdir(parents=True, exist_ok=True)
        store._path("k").rename(target)
        assert store.get("other") is None

    def test_eviction_bound(self, disk_dir):
        store = PlanStore(disk_dir)
        store.put("a", "x" * 100)
        entry_bytes = store.total_bytes()
        store.max_bytes = int(entry_bytes * 2.5)  # room for two entries
        for key in ("b", "c", "d", "e"):
            store.put(key, "y" * 100)
            assert store.total_bytes() <= store.max_bytes
        assert len(store) == 2  # oldest entries were evicted

    def test_eviction_is_lru(self, disk_dir):
        store = PlanStore(disk_dir)
        store.put("a", "x")
        entry_bytes = store.total_bytes()
        store.max_bytes = int(entry_bytes * 2.5)  # room for two entries
        store.put("b", "y")
        import time

        time.sleep(0.02)  # mtime resolution
        assert store.get("a") is not None  # refresh "a": now "b" is LRU
        time.sleep(0.02)
        store.put("c", "z")
        assert store.get("a") is not None
        assert store.get("b") is None  # evicted as least recently used
        assert store.get("c") is not None

    def test_unpicklable_value_swallowed(self, disk_dir):
        store = PlanStore(disk_dir)
        assert not store.put("k", lambda: None)
        assert store.errors == 1
        assert store.get("k") is None

    def test_stale_tmp_orphans_are_swept(self, disk_dir):
        """A crash between write and rename leaves a .tmp-* file; the
        eviction scan reaps old ones so they can't escape the size bound."""
        import os
        import time

        store = PlanStore(disk_dir)
        store.put("a", "x")
        orphan = store.directory / "deadbeef.tmp-123-456"
        orphan.write_bytes(b"partial write")
        old = time.time() - 300
        os.utime(orphan, (old, old))
        store.max_bytes = 1  # force the next put to run an eviction scan
        store.put("b", "y")
        assert not orphan.exists()


# ---------------------------------------------------------------------------
# PlanCache + store layering
# ---------------------------------------------------------------------------


class TestDiskCache:
    def test_disk_hit_populates_memory_with_one_object(self, disk_dir, chain4):
        cache = PlanCache(store=PlanStore(disk_dir))
        compile_tasks(cacheable_tasks(seeds=(1,)), chain4, cache=cache)
        fresh = PlanCache(store=PlanStore(disk_dir))  # "new process"
        plans = compile_tasks(cacheable_tasks(seeds=(1, 2)), chain4, cache=fresh)
        assert fresh.disk_hits == 2  # two distinct circuits loaded once each
        assert fresh.stats["store"]["hits"] == 2
        # All four tasks share the two loaded artifacts by identity.
        assert len({id(u.scheduled) for p in plans for u in p.units}) == 2

    def test_warm_disk_is_bit_identical(self, disk_dir, chain4):
        """The acceptance property: a second process's results are
        unchanged, for every compile mode and worker count."""
        opts = SimOptions(shots=4)
        reference = run(cacheable_tasks() + mixed_tasks(), chain4, options=opts)
        configure(plan_cache="disk", plan_cache_dir=disk_dir)
        assert plan_cache_mode() == "disk"
        PLAN_CACHE.clear()  # memory hits don't write through; compile cold
        cold = run(cacheable_tasks() + mixed_tasks(), chain4, options=opts)
        assert PLAN_CACHE.stats["store"]["entries"] > 0
        for compile_mode, workers in itertools.product(
            ("thread", "process"), (1, 3)
        ):
            PLAN_CACHE.clear()  # fresh process: memory cold, disk warm
            warm = run(
                cacheable_tasks() + mixed_tasks(), chain4, options=opts,
                workers=workers, compile_workers=workers,
                compile_mode=compile_mode,
            )
            assert batch_signature(warm) == batch_signature(cold), (
                f"compile_mode={compile_mode}, workers={workers}"
            )
            if compile_mode == "thread":
                # (In process mode the disk hits happen inside the worker
                # processes, invisible to the parent's counters.)
                assert PLAN_CACHE.disk_hits > 0
        assert batch_signature(cold) == batch_signature(reference)

    def test_corrupt_store_never_breaks_a_run(self, disk_dir, chain4):
        opts = SimOptions(shots=4)
        cache = PlanCache(store=PlanStore(disk_dir))
        cold = run(cacheable_tasks(), chain4, options=opts)
        compile_tasks(cacheable_tasks(), chain4, options=opts, cache=cache)
        for path in cache.store.directory.iterdir():
            path.write_bytes(b"corruption")
        fresh = PlanCache(store=PlanStore(disk_dir))
        plans = compile_tasks(cacheable_tasks(), chain4, options=opts, cache=fresh)
        assert fresh.disk_hits == 0
        assert fresh.store.errors > 0
        warm = run(plans)
        assert batch_signature(warm) == batch_signature(cold)

    def test_off_mode_disables_caching(self, chain4):
        configure(plan_cache="off")
        compile_tasks(cacheable_tasks(), chain4)
        assert len(PLAN_CACHE) == 0
        assert PLAN_CACHE.stats == {"hits": 0, "misses": 0, "entries": 0}

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="plan cache mode"):
            configure(plan_cache="ramdisk")
        with pytest.raises(ValueError, match="max_bytes"):
            configure(plan_cache="disk", plan_cache_bytes=0)

    def test_none_restores_size_default(self, disk_dir):
        from repro.runtime.store import DEFAULT_MAX_BYTES

        configure(plan_cache="disk", plan_cache_dir=disk_dir,
                  plan_cache_bytes=1024)
        assert PLAN_CACHE.store.max_bytes == 1024
        configure(plan_cache_bytes=None)  # mirror plan_cache_dir=None
        assert PLAN_CACHE.store.max_bytes == DEFAULT_MAX_BYTES

    def test_explicit_cache_argument_still_wins(self, chain4):
        configure(plan_cache="off")
        cache = PlanCache()
        compile_tasks(cacheable_tasks(seeds=(1,)), chain4, cache=cache)
        assert len(cache) > 0


# ---------------------------------------------------------------------------
# Process-parallel compilation
# ---------------------------------------------------------------------------


class TestProcessCompile:
    @pytest.mark.parametrize("backend", ["trajectory", "vectorized", "density"])
    def test_bit_identical_to_thread_mode(self, chain4, backend):
        opts = SimOptions(shots=4)
        reference = run(mixed_tasks(), chain4, options=opts, backend=backend)
        for workers in (2, 3):
            PLAN_CACHE.clear()
            batch = run(
                mixed_tasks(), chain4, options=opts, backend=backend,
                compile_workers=workers, compile_mode="process",
            )
            assert batch_signature(batch) == batch_signature(reference)

    def test_rehomed_plans_share_engines_and_cache(self, chain4):
        tasks = cacheable_tasks(seeds=(1, 2, 3), layers=(2,))
        plans = compile_tasks(tasks, chain4, workers=2, mode="process")
        # One artifact across all three tasks, interned into the parent
        # cache for future batches.
        assert len({id(u.scheduled) for p in plans for u in p.units}) == 1
        assert len(PLAN_CACHE) == 1
        assert all(p.task is t for p, t in zip(plans, tasks))
        follow_up = compile_tasks(cacheable_tasks(seeds=(9,), layers=(2,)), chain4)
        assert PLAN_CACHE.hits >= 1
        assert follow_up[0].units[0].scheduled is plans[0].units[0].scheduled

    def test_generator_seeds_fall_back_to_parent(self, chain4):
        """Tasks drawing from a shared Generator cannot ship to workers
        without desynchronizing the stream — they compile in-parent, in
        order, and match serial mode exactly."""
        import numpy as np

        def tasks():
            rng = np.random.default_rng(5)
            return [
                Task(layered_circuit(), observables=OBS, pipeline="ca_ec+dd",
                     realizations=2, seed=rng)
                for _ in range(3)
            ]

        opts = SimOptions(shots=4)
        assert not _portable(tasks()[0], opts, chain4)
        serial = run(tasks(), chain4, options=opts)
        processed = run(
            tasks(), chain4, options=opts, compile_workers=3,
            compile_mode="process",
        )
        assert batch_signature(serial) == batch_signature(processed)

    def test_unpicklable_factory_falls_back(self, chain4):
        """Lambda factories can't cross the process boundary; their pool
        jobs fail at pickling time and they compile in-parent instead."""

        def tasks():
            base = layered_circuit()
            return [
                Task(factory=lambda rng: base, observables=OBS,
                     realizations=2, seed=s)
                for s in (1, 2, 3)
            ]

        opts = SimOptions(shots=4)
        serial = run(tasks(), chain4, options=opts)
        processed = run(
            tasks(), chain4, options=opts, compile_workers=2,
            compile_mode="process",
        )
        assert batch_signature(serial) == batch_signature(processed)

    def test_mode_validation(self, chain4):
        with pytest.raises(ValueError, match="mode"):
            compile_tasks(mixed_tasks(), chain4, mode="fiber")
        with pytest.raises(ValueError, match="contradicts"):
            compile_tasks(mixed_tasks(), chain4, mode="thread", processes=True)
        with pytest.raises(ValueError, match="compile_mode"):
            configure(compile_mode="fiber")

    def test_processes_boolean_shorthand(self, chain4):
        serial = compile_tasks(cacheable_tasks(), chain4, cache=None)
        shorthand = compile_tasks(
            cacheable_tasks(), chain4, cache=None, workers=2, processes=True
        )
        assert [
            [u.seed for u in p.units] for p in serial
        ] == [[u.seed for u in p.units] for p in shorthand]

    def test_configured_default_mode(self, chain4):
        configure(compile_mode="process", compile_workers=2)
        opts = SimOptions(shots=4)
        reference = run(mixed_tasks(), chain4, options=opts)
        configure(compile_mode="thread", compile_workers=None)
        PLAN_CACHE.clear()
        assert batch_signature(reference) == batch_signature(
            run(mixed_tasks(), chain4, options=opts)
        )

    def test_plan_pickle_roundtrip_executes_identically(self, chain4):
        """Plans are picklable by design — the property the process pool
        (and any future distributed backend) rests on."""
        opts = SimOptions(shots=4)
        plans = compile_tasks(mixed_tasks(), chain4, options=opts)
        clone = pickle.loads(pickle.dumps(plans))
        assert batch_signature(run(plans)) == batch_signature(run(clone))


# ---------------------------------------------------------------------------
# Memory-hit write-through (disk layer attached after compilation)
# ---------------------------------------------------------------------------


class TestWriteThrough:
    """A store attached mid-flight gets warmed by memory hits, not just by
    new compilations — the ROADMAP's "warm the memory layer through to
    disk" gap."""

    def test_memory_hit_writes_through_to_late_store(self, chain4, disk_dir):
        opts = SimOptions(shots=4)
        cold = run(mixed_tasks(), chain4, options=opts)  # memory-only epoch
        configure(plan_cache="disk", plan_cache_dir=disk_dir)
        assert len(PLAN_CACHE.store) == 0
        warm = run(mixed_tasks(), chain4, options=opts)  # pure memory hits
        store = PLAN_CACHE.store
        assert len(store) > 0
        assert batch_signature(cold) == batch_signature(warm)
        # A "new process" (memory cold, same disk) now warm-starts from
        # the written-through entries.
        PLAN_CACHE.clear()
        PLAN_CACHE.store = store
        fresh = run(mixed_tasks(), chain4, options=opts)
        assert PLAN_CACHE.disk_hits > 0
        assert batch_signature(fresh) == batch_signature(cold)

    def test_write_through_happens_once_per_key(self, chain4, disk_dir):
        opts = SimOptions(shots=4)
        run(mixed_tasks(), chain4, options=opts)
        configure(plan_cache="disk", plan_cache_dir=disk_dir)
        run(mixed_tasks(), chain4, options=opts)
        first = PLAN_CACHE.store.stats["errors"], len(PLAN_CACHE.store)
        before = PLAN_CACHE.store.hits
        run(mixed_tasks(), chain4, options=opts)  # hits again: no re-probe
        assert (PLAN_CACHE.store.stats["errors"], len(PLAN_CACHE.store)) == first
        assert PLAN_CACHE.store.hits == before  # write-through never get()s

    def test_reattaching_a_store_resets_the_bookkeeping(self, chain4, tmp_path):
        opts = SimOptions(shots=4)
        run(mixed_tasks(), chain4, options=opts)
        configure(plan_cache="disk", plan_cache_dir=tmp_path / "a")
        run(mixed_tasks(), chain4, options=opts)
        entries_a = len(PLAN_CACHE.store)
        assert entries_a > 0
        configure(plan_cache="disk", plan_cache_dir=tmp_path / "b")
        run(mixed_tasks(), chain4, options=opts)  # same keys, new store
        assert len(PLAN_CACHE.store) == entries_a

    def test_contains_is_a_pure_existence_probe(self, disk_dir):
        store = PlanStore(disk_dir)
        assert not store.contains("k")
        store.put("k", ("compiled", "scheduled"))
        hits_before = store.hits
        assert store.contains("k")
        assert store.hits == hits_before  # no payload load, no stat drift
