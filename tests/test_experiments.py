"""Smoke tests for the experiment drivers (tiny parameters).

Full-scale reproductions live in ``benchmarks/``; these verify that every
driver runs end-to-end and reports sane structures.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_fig3,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_nnn_walsh,
    run_parity,
    run_stark,
    run_table1,
)


class TestFig3:
    def test_case1_only(self):
        result = run_fig3(
            depths=(0, 4), shots=8, realizations=2, cases=("case1_idle_pair",)
        )
        assert set(result.curves) == {"case1_idle_pair"}
        for curve in result.curves["case1_idle_pair"].values():
            assert len(curve) == 2
            assert curve[0] == pytest.approx(1.0, abs=0.05)
        assert result.rows()

    def test_case4_runs_twirled(self):
        result = run_fig3(
            depths=(0, 2), shots=6, realizations=2,
            cases=("case4_adjacent_controls",),
        )
        assert "ca_ec" in result.curves["case4_adjacent_controls"]


class TestFig4:
    def test_parity_beating_returns_series(self):
        data = run_parity(times=tuple(np.linspace(0, 4000, 12)), shots=24)
        assert len(data["signal"]) == 12

    def test_nnn_curves_present(self):
        result = run_nnn_walsh(depths=(0, 4), shots=8)
        assert set(result.curves) == {"none", "aligned", "staggered", "walsh"}

    @pytest.mark.slow
    def test_stark_matches_calibration(self):
        s = run_stark(times=tuple(np.linspace(500.0, 40000.0, 60)), shots=12)
        assert s.stark_shift == pytest.approx(s.calibrated_stark, rel=0.5)


class TestFig6:
    def test_rows_and_ideal(self):
        result = run_fig6(steps=(0, 1), shots=6, realizations=2)
        assert result.ideal == [1.0, -1.0]
        assert set(result.curves) == {"none", "ca_ec", "ca_dd"}
        assert result.rows()


class TestFig7:
    def test_small_ring(self):
        result = run_fig7(
            num_qubits=6, steps=(0, 1), shots=4, realizations=2
        )
        assert "ca_ec" in result.curves
        assert len(result.ideal) == 2
        assert result.fits["none"].rate <= 1.0
        assert result.rows()


class TestFig8:
    def test_two_strategies(self):
        result = run_fig8(
            depths=(1, 2), samples=2, shots=4, strategies=("none", "ca_ec")
        )
        table = dict((name, lf) for name, lf, _g in result.table())
        assert 0.0 < table["none"] <= 1.0
        assert result.rows()


class TestFig9:
    def test_peak_structure(self):
        result = run_fig9(estimates=[0.0, 1150.0, 2300.0], shots=40)
        assert result.peak_fidelity >= result.bare_fidelity
        assert len(result.fidelities) == 3
        assert result.rows()

    def test_peak_at_true_value(self):
        result = run_fig9(estimates=[0.0, 1150.0, 2300.0], shots=60)
        assert result.best_estimate == pytest.approx(1150.0)


class TestFig10:
    def test_curves(self):
        result = run_fig10(steps=(0, 1), shots=6, realizations=2)
        assert set(result.curves) == {"none", "ca_dd", "ca_ec", "ca_ec+dd"}
        for curve in result.curves.values():
            assert curve[0] == pytest.approx(1.0, abs=0.05)
        assert result.rows()


class TestTable1:
    def test_pattern(self):
        result = run_table1(depth=4, shots=24)
        rows = {r.error: r for r in result.rows}
        idle = rows["Z+ZZ (idle)"]
        assert idle.residual_ec < idle.residual_none
        assert idle.residual_dd < idle.residual_none
        parity = rows["Slow Z"]
        assert parity.residual_dd < parity.residual_ec  # EC can't fix slow Z
        assert result.formatted()
