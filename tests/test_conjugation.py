"""Clifford conjugation table tests (twirling substrate)."""

import numpy as np
import pytest

from repro.circuits import gates as g
from repro.pauli import Pauli, conjugate_through, conjugation_table, pauli_labels
from repro.pauli.conjugation import conjugate_pauli_numeric, is_supported

GATE_MATRICES = {"cx": g.CX_MAT, "cz": g.CZ_MAT, "ecr": g.ECR_MAT}


class TestTables:
    @pytest.mark.parametrize("name", ["cx", "cz", "ecr"])
    def test_table_satisfies_conjugation_identity(self, name):
        matrix = GATE_MATRICES[name]
        for label in pauli_labels(2):
            out_label, sign = conjugate_through(name, label)
            p = Pauli.from_label(label).matrix()
            q = Pauli.from_label(out_label).matrix()
            assert np.allclose(matrix @ p @ matrix.conj().T, sign * q, atol=1e-9)

    @pytest.mark.parametrize("name", ["cx", "cz", "ecr"])
    def test_table_is_a_bijection(self, name):
        table = conjugation_table(name)
        images = {out for out, _s in table.values()}
        assert images == set(pauli_labels(2))

    @pytest.mark.parametrize("name", ["cx", "cz", "ecr"])
    def test_identity_maps_to_identity(self, name):
        assert conjugate_through(name, "II") == ("II", 1)

    def test_cx_known_entries(self):
        # CX: X on control spreads to both; Z on target spreads to both.
        assert conjugate_through("cx", "XI") == ("XX", 1)
        assert conjugate_through("cx", "IZ") == ("ZZ", 1)
        assert conjugate_through("cx", "ZI") == ("ZI", 1)
        assert conjugate_through("cx", "IX") == ("IX", 1)

    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError):
            conjugation_table("swap")

    def test_is_supported(self):
        assert is_supported("ecr")
        assert not is_supported("can")


class TestNumericConjugation:
    def test_non_clifford_rejected(self):
        t_on_pair = np.kron(g.T_MAT, np.eye(2))
        with pytest.raises(ValueError):
            conjugate_pauli_numeric(t_on_pair, Pauli.from_label("XI"))

    def test_single_qubit_clifford(self):
        q, s = conjugate_pauli_numeric(g.H_MAT, Pauli.from_label("Z"))
        assert (q.label, s) == ("X", 1)
        q, s = conjugate_pauli_numeric(g.H_MAT, Pauli.from_label("Y"))
        assert (q.label, s) == ("Y", -1)
