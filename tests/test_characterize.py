"""Characterization (simulated calibration) tests."""


import pytest

from repro.benchmarking import (
    characterize_device,
    measure_spectator_shift,
    measure_zz_rate,
)
from repro.circuits import Circuit
from repro.compiler import apply_ca_ec
from repro.device import linear_chain, synthetic_device
from repro.sim import SimOptions, expectation_values

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)


@pytest.fixture
def device():
    return synthetic_device(linear_chain(3), seed=71)


@pytest.fixture
def quiet_options():
    return SimOptions(
        shots=1, stochastic=False, dephasing=False, amplitude_damping=False,
        gate_errors=False, seed=0,
    )


class TestZZMeasurement:
    def test_recovers_true_rate(self, device, quiet_options):
        measurement = measure_zz_rate(device, 0, 1, options=quiet_options)
        assert measurement.rate == pytest.approx(
            device.zz_rate(0, 1), rel=0.02
        )
        assert measurement.phase_residual < 0.01

    def test_second_edge(self, device, quiet_options):
        measurement = measure_zz_rate(device, 1, 2, options=quiet_options)
        assert measurement.rate == pytest.approx(
            device.zz_rate(1, 2), rel=0.02
        )

    def test_with_stochastic_noise_still_close(self, device):
        options = SimOptions(
            shots=256, seed=33, dephasing=False, amplitude_damping=False,
            gate_errors=False,
        )
        measurement = measure_zz_rate(device, 0, 1, options=options)
        assert measurement.rate == pytest.approx(
            device.zz_rate(0, 1), rel=0.15
        )


class TestSpectatorShift:
    def test_matches_coupling_minus_stark(self, device, quiet_options):
        shift = measure_spectator_shift(device, 0, 1, 2, options=quiet_options)
        expected = abs(device.zz_rate(0, 1) - device.stark_shift(1, 0))
        assert shift == pytest.approx(expected, rel=0.05)


class TestCharacterizedCompilation:
    def test_characterize_device_installs_measured_rates(self, device, quiet_options):
        estimated = characterize_device(device, options=quiet_options)
        for a, b in device.pairs:
            assert estimated.zz_rate(a, b) == pytest.approx(
                device.zz_rate(a, b), rel=0.02
            )

    def test_ca_ec_with_measured_calibration(self, device, quiet_options):
        """Compensation from *measured* rates performs like the oracle."""
        estimated = characterize_device(device, options=quiet_options)
        circ = Circuit(3)
        circ.h(0)
        circ.h(1)
        circ.delay(700.0, 0, new_moment=True)
        circ.delay(700.0, 1)
        circ.append_moment([])
        oracle, _ = apply_ca_ec(circ, device)
        measured, _ = apply_ca_ec(circ, estimated)
        obs = {"x0": "IIX", "x1": "IXI"}
        ideal = expectation_values(circ, device.ideal(), obs, quiet_options)
        got_oracle = expectation_values(oracle, device, obs, quiet_options)
        got_measured = expectation_values(measured, device, obs, quiet_options)
        for key in obs:
            assert got_oracle[key] == pytest.approx(ideal[key], abs=1e-7)
            assert got_measured[key] == pytest.approx(ideal[key], abs=5e-3)
