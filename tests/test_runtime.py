"""Runtime tests: pipelines, backends, and the batched ``run()``.

The load-bearing guarantees:

* every named strategy's pipeline compiles seed-for-seed identically to
  the pre-runtime ``compile_circuit`` pass chain;
* ``run()`` results are invariant under the worker count;
* a batched multi-worker run reproduces the sequential legacy execution
  path exactly (compile, seed, simulate, pool — same draws, same floats).
"""

import math

import numpy as np
import pytest

from repro import (
    BACKENDS,
    Circuit,
    Pipeline,
    SimOptions,
    Task,
    TaskResult,
    average_over_realizations,
    compile_circuit,
    draw,
    expectation_values,
    realization_factory,
    run,
    schedule,
)
from repro.compiler.ca_dd import apply_ca_dd
from repro.compiler.ca_ec import apply_ca_ec
from repro.compiler.dd import DEFAULT_MIN_DURATION, apply_aligned_dd, apply_staggered_dd
from repro.compiler.strategies import STRATEGIES, get_strategy
from repro.pauli import Pauli
from repro.pauli.twirling import apply_twirl
from repro.runtime import (
    CADD,
    CAEC,
    DensityBackend,
    Orient,
    Twirl,
    get_backend,
    pipeline_for,
    register_backend,
)
from repro.sim import Executor, density_expectations
from repro.utils.rng import as_generator

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)


def layered_circuit(num_qubits: int = 4, layers: int = 2) -> Circuit:
    circ = Circuit(num_qubits)
    for q in range(num_qubits):
        circ.h(q, new_moment=(q == 0))
    for _ in range(layers):
        circ.can(0.3, 0.2, 0.4, 0, 1, new_moment=True)
        circ.append_moment([])
        circ.can(0.1, 0.5, 0.2, 2, 3, new_moment=True)
        circ.append_moment([])
    return circ


def legacy_compile(circuit, device, strategy, rng):
    """The pre-runtime ``compile_circuit`` pass chain, inlined verbatim."""
    strategy = get_strategy(strategy)
    out = circuit
    if strategy.twirl:
        out, _ = apply_twirl(out, rng)
    if strategy.dd == "aligned":
        out = apply_aligned_dd(out, device, DEFAULT_MIN_DURATION)
    elif strategy.dd == "staggered":
        out = apply_staggered_dd(out, device, DEFAULT_MIN_DURATION)
    elif strategy.dd == "ca":
        out, _ = apply_ca_dd(out, device, DEFAULT_MIN_DURATION)
    if strategy.ec:
        out, _ = apply_ca_ec(out, device, durations=None)
    return out


OBS = {"x2": "IXII", "x3": "XIII"}


class TestPipelineEquivalence:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_named_pipeline_matches_legacy_chain(self, chain4, strategy):
        """pipeline_for(name) reproduces the pre-runtime chain exactly."""
        circ = layered_circuit()
        via_pipeline = pipeline_for(strategy).compile(circ, chain4, seed=13)
        via_legacy = legacy_compile(circ, chain4, strategy, as_generator(13))
        assert draw(via_pipeline) == draw(via_legacy)

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_compile_circuit_shim_matches(self, chain4, strategy):
        circ = layered_circuit()
        assert draw(compile_circuit(circ, chain4, strategy, seed=7)) == draw(
            pipeline_for(strategy).compile(circ, chain4, seed=7)
        )

    def test_custom_pipeline_composes(self, chain4):
        circ = layered_circuit()
        pipeline = Pipeline([Orient(), Twirl(), CADD(), CAEC()])
        assert pipeline.name == "orient+twirl+ca_dd+ca_ec"
        assert not pipeline.is_deterministic
        compiled = pipeline.compile(circ, chain4, seed=0)
        assert compiled.num_qubits == 4
        # seed-for-seed reproducible
        again = pipeline.compile(circ, chain4, seed=0)
        assert draw(compiled) == draw(again)

    def test_pipeline_then_and_determinism(self):
        base = Pipeline([CADD()])
        assert base.is_deterministic
        extended = base.then(Twirl())
        assert len(extended) == 2
        assert not extended.is_deterministic

    def test_context_collects_reports(self, chain4):
        from repro.runtime import PassContext

        ctx = PassContext.from_seed(3)
        Pipeline([Twirl(), CAEC()]).compile(layered_circuit(), chain4, context=ctx)
        assert "twirl" in ctx.reports and "ca_ec" in ctx.reports

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            pipeline_for("nope")


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert {"trajectory", "density"} <= set(BACKENDS)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("vectorized-gpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("trajectory", DensityBackend)

    def test_custom_backend_registration(self, chain4):
        class EchoBackend(DensityBackend):
            name = "echo"

        register_backend("echo", EchoBackend, overwrite=True)
        try:
            circ = Circuit(2)
            circ.h(0)
            batch = run(
                Task(circ, observables={"z": "IZ"}),
                chain4.subdevice([0, 1]),
                backend="echo",
            )
            assert batch.backend == "echo"
        finally:
            BACKENDS.pop("echo", None)

    def test_backend_instance_passes_through(self):
        backend = DensityBackend()
        assert get_backend(backend) is backend


class TestTaskValidation:
    def test_requires_circuit_or_factory(self):
        with pytest.raises(ValueError, match="circuit or factory"):
            Task(observables={"z": "Z"})

    def test_requires_one_measurement_kind(self):
        circ = Circuit(1)
        with pytest.raises(ValueError, match="observables or bit_targets"):
            Task(circ)
        with pytest.raises(ValueError, match="observables or bit_targets"):
            Task(circ, observables={"z": "Z"}, bit_targets={"f": {0: 0}})

    def test_rejects_nonpositive_realizations(self):
        circ = Circuit(1)
        with pytest.raises(ValueError, match="realizations"):
            Task(circ, observables={"z": "Z"}, realizations=0)

    def test_device_required_somewhere(self, chain4):
        task = Task(layered_circuit(), observables=OBS)
        with pytest.raises(ValueError, match="no device"):
            run(task)
        assert run(task, chain4, options=SimOptions(shots=2, seed=0)).results


class TestBatchedRun:
    def test_workers_do_not_change_values(self, chain4):
        """The headline determinism guarantee: workers only change speed."""
        circ = layered_circuit()
        opts = SimOptions(shots=8)
        tasks = [
            Task(circ, observables=OBS, pipeline="ca_ec+dd",
                 realizations=3, seed=s)
            for s in range(4)
        ]
        serial = run(tasks, chain4, options=opts, workers=1)
        threaded = run(tasks, chain4, options=opts, workers=2)
        assert serial.backend == threaded.backend == "trajectory"
        for a, b in zip(serial, threaded):
            assert a.values == b.values
            assert a.errors == b.errors
            assert a.shots == b.shots

    def test_batched_run_matches_sequential_legacy_path(self, chain4):
        """Acceptance: >=4 tasks, workers>1, ca_ec+dd — seed-for-seed equal
        to the pre-runtime sequential loop (compile, draw sub-seed,
        simulate, pool realization means)."""
        opts = SimOptions(shots=6)
        paulis = {k: Pauli.from_label(v) for k, v in OBS.items()}
        circuits = [layered_circuit(layers=k % 2 + 1) for k in range(5)]
        tasks = [
            Task(circ, observables=OBS, pipeline="ca_ec+dd",
                 realizations=3, seed=40 + k)
            for k, circ in enumerate(circuits)
        ]
        batch = run(tasks, chain4, options=opts, workers=3)

        for task, circ, result in zip(tasks, circuits, batch):
            rng = as_generator(task.seed)
            means = {k: [] for k in OBS}
            for _ in range(task.realizations):
                compiled = legacy_compile(circ, chain4, "ca_ec+dd", rng)
                sub_seed = int(rng.integers(0, 2**63 - 1))
                scheduled = schedule(compiled, chain4.durations)
                res = Executor(
                    scheduled, chain4, opts.with_seed(sub_seed)
                ).expectations(paulis)
                for key in OBS:
                    means[key].append(res.values[key])
            for key in OBS:
                assert result.values[key] == float(np.mean(means[key]))
                assert result.errors[key] == float(
                    np.std(means[key], ddof=1) / math.sqrt(len(means[key]))
                )

    def test_shims_delegate_to_runtime(self, chain4):
        """Legacy entry points return the runtime's results unchanged."""
        circ = layered_circuit()
        opts = SimOptions(shots=8, seed=5)
        legacy = expectation_values(circ, chain4, OBS, opts)
        direct = run(Task(circ, observables=OBS), chain4, options=opts)[0]
        assert legacy.values == direct.values

        factory = realization_factory(circ, chain4, "ca_dd")
        pooled = average_over_realizations(
            factory, chain4, OBS, realizations=3, options=SimOptions(shots=4), seed=9
        )
        via_task = run(
            Task(circ, observables=OBS, pipeline="ca_dd", realizations=3, seed=9),
            chain4,
            options=SimOptions(shots=4),
        )[0]
        assert pooled.values == via_task.values

    def test_factory_tasks(self, chain4):
        factory = realization_factory(layered_circuit(), chain4, "none")
        result = run(
            Task(factory=factory, observables=OBS, realizations=2, seed=1),
            chain4,
            options=SimOptions(shots=4),
        )[0]
        assert set(result.values) == set(OBS)
        assert result.realizations == 2

    def test_bit_target_tasks_and_name_lookup(self, chain4):
        circ = Circuit(4)
        circ.h(0)
        batch = run(
            [
                Task(circ, bit_targets={"f": {0: 0}}, seed=3, name="plus"),
                Task(Circuit(4), bit_targets={"f": {0: 0}}, seed=3, name="idle"),
            ],
            chain4,
            options=SimOptions(shots=16),
        )
        assert batch["idle"].values["f"] == pytest.approx(1.0, abs=0.1)
        assert batch["plus"].values["f"] == pytest.approx(0.5, abs=0.3)
        with pytest.raises(KeyError):
            batch["missing"]

    def test_shots_override_per_task(self, chain4):
        circ = layered_circuit()
        batch = run(
            Task(circ, observables=OBS, shots=3),
            chain4,
            options=SimOptions(shots=64, seed=0),
        )
        assert batch[0].shots == 3

    def test_density_backend_matches_density_expectations(self, chain2):
        circ = Circuit(2)
        circ.h(0)
        circ.cx(0, 1, new_moment=True)
        result = run(
            Task(circ, observables={"zz": "ZZ"}), chain2, backend="density"
        )[0]
        ref = density_expectations(circ, chain2, {"zz": "ZZ"})
        assert result.values["zz"] == pytest.approx(ref["zz"], abs=1e-12)
        assert result.errors["zz"] == 0.0
        assert result.shots == 0

    def test_density_collapses_deterministic_realizations(self, chain2):
        """An exact backend ignores seeds, so repeating a deterministic
        pipeline's realizations is pure waste — the batcher collapses them."""
        circ = Circuit(2)
        circ.h(0)
        circ.cx(0, 1, new_moment=True)
        pipeline = Pipeline([CAEC()])
        many = run(
            Task(circ, observables={"zz": "ZZ"}, pipeline=pipeline,
                 realizations=8, seed=0),
            chain2,
            backend="density",
        )[0]
        once = run(
            Task(circ, observables={"zz": "ZZ"}, pipeline=pipeline, seed=0),
            chain2,
            backend="density",
        )[0]
        assert many.values == once.values
        assert many.realizations == 1

    def test_batch_metadata(self, chain4):
        batch = run(
            [Task(layered_circuit(), observables=OBS, seed=k) for k in range(2)],
            chain4,
            options=SimOptions(shots=2),
            workers=2,
        )
        assert len(batch) == 2
        assert batch.workers == 2
        assert batch.wall_time > 0.0
        assert batch.shots == 4
        assert all(isinstance(r, TaskResult) for r in batch)
        assert "BatchResult" in repr(batch)
        assert "TaskResult" in repr(batch[0])


class TestResultErgonomics:
    def test_simresult_mapping_protocol(self, chain4):
        result = expectation_values(
            layered_circuit(), chain4, OBS, SimOptions(shots=4, seed=2)
        )
        assert len(result) == 2
        assert set(result) == set(OBS)
        assert "x2" in result
        assert dict(result.items()) == result.values
        assert result.error("x2") == result.errors["x2"]
        assert "±" in repr(result)


class TestNormGuards:
    def test_no_jump_with_full_excitation_decays(self):
        """gamma = 1 on |1>: the no-jump branch has zero weight; the guard
        must route to the decay jump instead of dividing by zero."""
        from repro.sim import StateVector
        from repro.sim.executor import _apply_no_jump

        state = StateVector(1)
        state.apply_pauli("X", 0)  # |1>
        _apply_no_jump(state, 0, 1.0)
        assert np.all(np.isfinite(state.vector))
        assert state.probability_one(0) == pytest.approx(0.0)

    def test_decay_jump_without_excitation_is_safe(self):
        from repro.sim import StateVector
        from repro.sim.executor import _apply_decay_jump

        state = StateVector(1)  # |0>: no |1> amplitude to project
        _apply_decay_jump(state, 0)
        assert np.all(np.isfinite(state.vector))
        assert np.linalg.norm(state.vector) == pytest.approx(1.0)
