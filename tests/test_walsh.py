"""Walsh-Hadamard DD sequence tests (paper Fig. 5b)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.walsh import (
    max_sequency,
    orthogonal,
    pulse_count,
    walsh_fractions,
    walsh_signs,
)
from repro.sim.timeline import pair_sign_integral, sign_integral


class TestSigns:
    def test_sequency_counts_sign_changes(self):
        for k in range(8):
            signs = walsh_signs(k)
            changes = sum(
                1 for i in range(1, len(signs)) if signs[i] != signs[i - 1]
            )
            assert changes == k

    def test_row_zero_all_plus(self):
        assert set(walsh_signs(0)) == {1}

    def test_rows_orthogonal(self):
        for a, b in itertools.combinations(range(8), 2):
            assert orthogonal(a, b)
            assert np.dot(walsh_signs(a), walsh_signs(b)) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            walsh_signs(8, bins=8)
        with pytest.raises(ValueError):
            walsh_signs(1, bins=6)

    def test_larger_bins(self):
        signs = walsh_signs(3, bins=16)
        changes = sum(
            1 for i in range(1, 16) if signs[i] != signs[i - 1]
        )
        assert changes == 3


class TestFractions:
    def test_even_pulse_counts(self):
        """Sequences always end in the identity frame (even pulse count)."""
        for k in range(8):
            assert len(walsh_fractions(k)) % 2 == 0

    def test_pulse_count_monotone_in_blocks(self):
        counts = [pulse_count(k) for k in range(8)]
        assert counts == sorted(counts)

    def test_zero_integral_for_nonzero_sequency(self):
        for k in range(1, 8):
            assert sign_integral(walsh_fractions(k)) == pytest.approx(0.0)

    def test_pairwise_zz_refocusing(self):
        """Any two distinct colors mutually refocus ZZ (paper Fig. 5b)."""
        for a, b in itertools.combinations(range(8), 2):
            assert pair_sign_integral(
                walsh_fractions(a), walsh_fractions(b)
            ) == pytest.approx(0.0)

    def test_color1_matches_control_echo(self):
        assert pair_sign_integral(walsh_fractions(1), (0.5,)) == pytest.approx(1.0)

    def test_color2_matches_target_rotary(self):
        assert pair_sign_integral(
            walsh_fractions(2), (0.25, 0.75)
        ) == pytest.approx(1.0)

    def test_max_sequency(self):
        assert max_sequency() == 7
        assert max_sequency(16) == 15


@given(st.integers(1, 7), st.integers(1, 7))
@settings(max_examples=30, deadline=None)
def test_same_color_never_refocuses(a, b):
    value = pair_sign_integral(walsh_fractions(a), walsh_fractions(b))
    if a == b:
        assert value == pytest.approx(1.0)
    else:
        assert value == pytest.approx(0.0)
