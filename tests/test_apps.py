"""Application circuit tests: Ising, Heisenberg, dynamic Bell, Floquet-6."""


import numpy as np
import pytest
from scipy.linalg import expm

from repro.apps import (
    bell_dynamic_circuit,
    bell_target_bits,
    boundary_xx_label,
    compensated_circuit,
    dynamic_device,
    equivalent_cnot_count,
    equivalent_cnot_depth,
    floquet6_circuit,
    floquet6_device,
    heisenberg_circuit,
    heisenberg_device,
    ideal_boundary_xx,
    ising_circuit,
    ising_device,
    probe_target_bits,
    ring_edge_layers,
    site_z_label,
)
from repro.circuits import gates as g
from repro.sim import SimOptions, bit_probabilities, expectation_values

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)


class TestIsing:
    def test_boundary_label(self):
        assert boundary_xx_label(6) == "XIIIIX"

    def test_requires_even_size(self):
        with pytest.raises(ValueError):
            ising_circuit(5, 1)

    @pytest.mark.parametrize("steps", [0, 1, 2, 3])
    def test_ideal_alternation(self, steps, ideal_options):
        device = ising_device(6).ideal()
        circ = ising_circuit(6, steps)
        res = expectation_values(
            circ, device, {"xx": boundary_xx_label(6)}, ideal_options
        )
        assert res["xx"] == pytest.approx(ideal_boundary_xx(steps), abs=1e-9)

    def test_boundary_idles_in_odd_layer(self):
        circ = ising_circuit(6, 1)
        odd_layer = next(
            m
            for m in circ.moments
            if m.has_two_qubit_gate and 0 not in m.qubits
        )
        assert 5 not in odd_layer.qubits

    def test_layer_counts(self):
        circ = ising_circuit(8, 2)
        assert circ.count_gates(name="ecr") == 2 * (4 + 3)


class TestHeisenberg:
    def test_ring_edge_layers_are_matchings(self):
        layers = ring_edge_layers(12)
        assert len(layers) == 3
        for layer in layers:
            qubits = [q for e in layer for q in e]
            assert len(qubits) == len(set(qubits))
        all_edges = {tuple(sorted(e)) for layer in layers for e in layer}
        assert len(all_edges) == 12

    def test_ring_size_must_divide_by_three(self):
        with pytest.raises(ValueError):
            ring_edge_layers(10)

    def test_cnot_accounting_matches_paper(self):
        assert equivalent_cnot_count(12, 5) == 180
        assert equivalent_cnot_depth(5) == 45

    def test_site_label(self):
        assert site_z_label(6, 2) == "IIIZII"

    def test_trotter_converges_to_exact(self, ideal_options):
        """Fine Trotter steps approach exp(-iHt) from direct exponentiation."""
        n = 6
        j, total_t = 0.4, 1.0
        device = heisenberg_device(n).ideal()
        obs = {"z": site_z_label(n, 2)}

        # Exact evolution of the Heisenberg ring (eq. 7, J_x=J_y=J_z=j).
        dim = 2**n
        ham = np.zeros((dim, dim), dtype=complex)
        paulis = {"X": g.X_MAT, "Y": g.Y_MAT, "Z": g.Z_MAT}
        for i in range(n):
            k = (i + 1) % n
            for p in "XYZ":
                ops = [np.eye(2)] * n
                ops[n - 1 - i] = paulis[p]
                ops[n - 1 - k] = paulis[p]
                term = ops[0]
                for o in ops[1:]:
                    term = np.kron(term, o)
                ham += -0.5 * j * term
        psi0 = np.zeros(dim, dtype=complex)
        excited_index = (1 << 0) | (1 << 3)
        psi0[excited_index] = 1.0
        psi_t = expm(-1j * ham * total_t) @ psi0
        z2 = np.kron(np.eye(2 ** (n - 3)), np.kron(g.Z_MAT, np.eye(4)))
        exact = float((psi_t.conj() @ z2 @ psi_t).real)

        errors = []
        for steps in (2, 8):
            circ = heisenberg_circuit(
                n, steps, coupling=j, dt=total_t / steps, excited=(0, 3)
            )
            res = expectation_values(circ, device, obs, ideal_options)
            errors.append(abs(res["z"] - exact))
        assert errors[1] < errors[0]  # finer Trotter is closer
        assert errors[1] < 0.05

    def test_zero_steps_keeps_excitations(self, ideal_options):
        device = heisenberg_device(12).ideal()
        circ = heisenberg_circuit(12, 0)
        res = expectation_values(
            circ, device, {"z0": site_z_label(12, 0)}, ideal_options
        )
        assert res["z0"] == pytest.approx(-1.0)  # site 0 starts excited


class TestDynamicBell:
    def test_ideal_fidelity_one(self):
        device = dynamic_device().ideal()
        opts = SimOptions(
            shots=16, coherent=False, stochastic=False, dephasing=False,
            amplitude_damping=False, gate_errors=False, seed=1,
        )
        res = bit_probabilities(
            bell_dynamic_circuit(), device, {"f": bell_target_bits()}, opts
        )
        assert res["f"] == pytest.approx(1.0)

    def test_circuit_has_dynamics(self):
        assert bell_dynamic_circuit().has_dynamics()

    def test_compensation_restores_fidelity(self):
        device = dynamic_device()
        opts = SimOptions(
            shots=64, stochastic=False, dephasing=False,
            amplitude_damping=False, gate_errors=False, seed=2,
        )
        bare = bit_probabilities(
            bell_dynamic_circuit(), device, {"f": bell_target_bits()}, opts
        )
        fixed = bit_probabilities(
            compensated_circuit(device), device, {"f": bell_target_bits()}, opts
        )
        assert fixed["f"] > bare["f"] + 0.2
        assert fixed["f"] > 0.95

    def test_wrong_estimate_underperforms_true(self):
        device = dynamic_device()
        opts = SimOptions(shots=96, seed=3)
        at_true = bit_probabilities(
            compensated_circuit(device, feedforward_estimate=1150.0),
            device, {"f": bell_target_bits()}, opts,
        )
        far_off = bit_probabilities(
            compensated_circuit(device, feedforward_estimate=3000.0),
            device, {"f": bell_target_bits()}, opts,
        )
        assert at_true["f"] > far_off["f"]


class TestFloquet6:
    def test_ideal_p00_stays_one(self, ideal_options):
        device = floquet6_device().ideal()
        for steps in (0, 1, 3):
            circ = floquet6_circuit(steps)
            res = bit_probabilities(
                circ, device, {"p": probe_target_bits()},
                SimOptions(
                    shots=1, coherent=False, stochastic=False, dephasing=False,
                    amplitude_damping=False, gate_errors=False, seed=0,
                ),
            )
            assert res["p"] == pytest.approx(1.0, abs=1e-9)

    def test_contains_both_contexts(self):
        circ = floquet6_circuit(1)
        a_layers = [
            m for m in circ.moments
            if sum(1 for i in m if i.gate.name == "ecr") == 2
        ]
        # A-block: controls 1 and 2 adjacent.
        controls = sorted(i.qubits[0] for i in a_layers[0] if i.gate.name == "ecr")
        assert controls == [1, 2]
        b_layers = [
            m for m in circ.moments
            if sum(1 for i in m if i.gate.name == "ecr") == 1
        ]
        # B-block: probes 1, 2 idle together.
        assert 1 not in b_layers[0].qubits and 2 not in b_layers[0].qubits


class TestConditionalCompensation:
    """The paper's Fig. 9b construction: corrections on the conditional."""

    def test_matches_full_ca_ec_exactly(self):
        from repro.apps import (
            bell_dynamic_circuit,
            compensated_circuit,
            conditionally_compensated_circuit,
            dynamic_device,
        )

        device = dynamic_device()
        opts = SimOptions(
            shots=128, seed=3, stochastic=False, dephasing=False,
            amplitude_damping=False, gate_errors=False,
        )
        target = {"f": bell_target_bits()}
        full = bit_probabilities(compensated_circuit(device), device, target, opts)
        cond = bit_probabilities(
            conditionally_compensated_circuit(device), device, target, opts
        )
        assert cond["f"] == pytest.approx(full["f"], abs=0.02)
        assert cond["f"] > 0.99

    def test_no_two_qubit_gate_touches_aux_in_window(self):
        """During the measurement + feedforward window the aux is being
        read out: no compensation gate may act on it there (compensations in
        the later readout stage are fine — the aux is free again)."""
        from repro.apps import AUX, conditionally_compensated_circuit, dynamic_device

        device = dynamic_device()
        circ = conditionally_compensated_circuit(device)
        measure_index = next(
            i for i, m in enumerate(circ.moments) if m.has_measurement
        )
        ff_index = next(
            i
            for i, m in enumerate(circ.moments)
            if any(
                inst.condition is not None and inst.gate.name == "x"
                for inst in m
            )
        )
        for moment in circ.moments[measure_index:ff_index + 1]:
            for inst in moment:
                if inst.gate.num_qubits == 2:
                    assert AUX not in inst.qubits

    def test_conditional_corrections_present(self):
        from repro.apps import conditionally_compensated_circuit, dynamic_device

        circ = conditionally_compensated_circuit(dynamic_device())
        conditioned_rz = [
            inst
            for inst in circ.instructions()
            if inst.condition is not None and inst.gate.name == "rz"
        ]
        assert len(conditioned_rz) == 2  # one per data qubit

    def test_sweep_still_peaks_at_true_time(self):
        from repro.apps import (
            bell_target_bits,
            conditionally_compensated_circuit,
            dynamic_device,
        )

        device = dynamic_device()
        opts = SimOptions(shots=100, seed=4)
        values = {}
        for estimate in (0.0, 1150.0, 2800.0):
            circ = conditionally_compensated_circuit(
                device, feedforward_estimate=estimate
            )
            res = bit_probabilities(circ, device, {"f": bell_target_bits()}, opts)
            values[estimate] = res["f"]
        assert values[1150.0] > values[0.0]
        assert values[1150.0] > values[2800.0]
