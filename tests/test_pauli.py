"""Pauli algebra tests with hypothesis property checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli import Pauli, commutes, pauli_labels


def pauli_strategy(num_qubits=3):
    return st.text(alphabet="IXYZ", min_size=num_qubits, max_size=num_qubits).map(
        Pauli.from_label
    )


class TestConstruction:
    def test_label_roundtrip(self):
        assert Pauli.from_label("XYZ").label == "XYZ"

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            Pauli.from_label("XQ")

    def test_identity(self):
        p = Pauli.identity(4)
        assert p.label == "IIII"
        assert p.weight == 0

    def test_single(self):
        p = Pauli.single(3, 0, "Z")
        assert p.label == "IIZ"
        assert p.factor(0) == "Z"
        assert p.factor(2) == "I"

    def test_weight(self):
        assert Pauli.from_label("XIYZ").weight == 3


class TestMultiplication:
    @given(pauli_strategy(), pauli_strategy())
    @settings(max_examples=60, deadline=None)
    def test_matches_matrix_product(self, a, b):
        product = a * b
        assert np.allclose(product.matrix(), a.matrix() @ b.matrix(), atol=1e-12)

    @given(pauli_strategy())
    @settings(max_examples=30, deadline=None)
    def test_self_product_is_identity(self, p):
        product = p * p
        assert product.label == "I" * p.num_qubits
        assert product.phase == 0

    def test_known_phase(self):
        assert (Pauli.from_label("X") * Pauli.from_label("Y")).phase == 1
        assert (Pauli.from_label("Y") * Pauli.from_label("X")).phase == 3

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            Pauli.from_label("X") * Pauli.from_label("XX")


class TestCommutation:
    @given(pauli_strategy(), pauli_strategy())
    @settings(max_examples=60, deadline=None)
    def test_matches_matrix_commutator(self, a, b):
        ma, mb = a.matrix(), b.matrix()
        commutator_zero = np.allclose(ma @ mb - mb @ ma, 0.0, atol=1e-12)
        assert a.commutes_with(b) == commutator_zero

    @given(pauli_strategy(), pauli_strategy())
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, a, b):
        assert a.commutes_with(b) == b.commutes_with(a)

    def test_label_helper(self):
        assert commutes("XX", "ZZ")
        assert not commutes("XI", "ZI")


class TestEnumeration:
    def test_counts(self):
        assert len(list(pauli_labels(2))) == 16
        assert len(list(pauli_labels(3))) == 64

    def test_identity_first(self):
        assert next(iter(pauli_labels(3))) == "III"

    def test_matrix_convention_leftmost_is_high_qubit(self):
        p = Pauli.from_label("XI")  # X on qubit 1
        expected = np.kron(
            np.array([[0, 1], [1, 0]], dtype=complex), np.eye(2)
        )
        assert np.allclose(p.matrix(), expected)
