"""Pauli twirling tests (paper Sec. III A / Fig. 2)."""

import numpy as np
import pytest

from repro.circuits import Circuit, gates as g, stratify
from repro.pauli import apply_twirl
from repro.pauli.twirling import sample_layer_twirl
from repro.utils.linalg import allclose_up_to_global_phase
from repro.utils.rng import as_generator

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)


def ecr_circuit():
    circ = Circuit(3)
    circ.h(0)
    circ.h(1)
    circ.h(2)
    circ.ecr(0, 1, new_moment=True)
    circ.rz(0.3, 2, new_moment=True)
    circ.ecr(1, 2, new_moment=True)
    circ.append_moment([])
    return circ


class TestLogicalEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_ecr_twirl_preserves_unitary(self, seed):
        circ = ecr_circuit()
        twirled, _record = apply_twirl(circ, seed=seed)
        assert allclose_up_to_global_phase(
            twirled.unitary(), circ.unitary(), atol=1e-7
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_canonical_twirl_preserves_unitary(self, seed):
        circ = Circuit(2)
        circ.append_moment([])
        circ.can(0.4, 0.3, 0.2, 0, 1, new_moment=True)
        circ.append_moment([])
        twirled, _record = apply_twirl(circ, seed=seed)
        assert allclose_up_to_global_phase(
            twirled.unitary(), circ.unitary(), atol=1e-7
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_rzz_twirl_preserves_unitary(self, seed):
        circ = Circuit(2)
        circ.append_moment([])
        circ.rzz(0.7, 0, 1, new_moment=True)
        circ.append_moment([])
        twirled, _record = apply_twirl(circ, seed=seed)
        assert allclose_up_to_global_phase(
            twirled.unitary(), circ.unitary(), atol=1e-7
        )


class TestRecord:
    def test_frames_cover_2q_layers(self):
        circ = ecr_circuit()
        _twirled, record = apply_twirl(circ, seed=0)
        assert set(record.frames) == {1, 3}

    def test_idle_qubits_twirled_with_self_inverse(self):
        circ = ecr_circuit()
        _twirled, record = apply_twirl(circ, seed=0, twirl_idle=True)
        frame = record.frames[1]
        # Qubit 2 idles in the first ECR layer: pre == post.
        pre, post = frame[2]
        assert pre == post

    def test_twirl_idle_false_skips_idles(self):
        circ = ecr_circuit()
        _twirled, record = apply_twirl(circ, seed=0, twirl_idle=False)
        assert 2 not in record.frames[1]

    def test_default_labels_identity(self):
        circ = ecr_circuit()
        _twirled, record = apply_twirl(circ, seed=0)
        assert record.pre_label(99, 0) == "I"
        assert record.post_label(99, 0) == "I"


class TestSampleLayerTwirl:
    def test_symmetric_gate_uses_correlated_pair(self):
        circ = Circuit(2)
        circ.can(0.1, 0.2, 0.3, 0, 1)
        rng = as_generator(5)
        frame = sample_layer_twirl(circ.moments[0], 2, rng)
        (pre_a, post_a), (pre_b, post_b) = frame[0], frame[1]
        assert pre_a == pre_b == post_a == post_b

    def test_untwirlable_gate_raises(self):
        circ = Circuit(2)
        bad = g.Gate("iswap", 2, matrix=np.eye(4))
        circ.append(bad, [0, 1])
        with pytest.raises(ValueError):
            sample_layer_twirl(circ.moments[0], 2, as_generator(0))


class TestMaterialization:
    def test_twirl_paulis_tagged_in_empty_layers(self):
        circ = ecr_circuit()
        twirled, _record = apply_twirl(circ, seed=2)
        # Layer 2 (between the ECRs) hosts post- and pre-twirl content.
        tags = {inst.tag for inst in twirled.moments[2]}
        assert "twirl" in tags or len(twirled.moments[2]) == 0

    def test_fusion_into_existing_1q_gate(self):
        circ = Circuit(2)
        circ.h(0)
        circ.h(1)
        circ.ecr(0, 1, new_moment=True)
        circ.append_moment([])
        twirled, record = apply_twirl(circ, seed=1)
        # Any pre-twirl on qubit 0 must have been fused into the H slot:
        # moment 0 still holds exactly one instruction per qubit.
        assert len(twirled.moments[0]) <= 2
        assert allclose_up_to_global_phase(
            twirled.unitary(), circ.unitary(), atol=1e-7
        )

    def test_missing_host_layer_raises(self):
        circ = Circuit(2)
        circ.ecr(0, 1)  # 2q layer at moment 0: nowhere to put pre-twirl
        with pytest.raises(ValueError):
            apply_twirl(circ, seed=0)


class TestStatisticalScrambling:
    def test_twirl_averages_coherent_error_to_decay(self, chain2, coherent_options):
        """Averaged over twirls, a coherent ZZ error damps rather than
        rotates the signal: the mean over realizations of <X0> lies strictly
        between the extremes of the untwirled oscillation."""
        from repro.sim import expectation_values

        circ = Circuit(2)
        circ.h(0)
        circ.h(1)
        circ.ecr(0, 1, new_moment=True)
        circ.ecr(0, 1, new_moment=True)  # identity logic, twirl slots between
        # restructure: stratify to get the 1q layers
        strat = stratify(circ)
        values = []
        for seed in range(12):
            twirled, _ = apply_twirl(strat, seed=seed)
            res = expectation_values(
                twirled, chain2, {"x1": "XI"}, coherent_options
            )
            values.append(res.values["x1"])
        assert np.std(values) > 0.0  # different twirls genuinely differ
