"""Topology tests: chains, rings, heavy-hex."""

import pytest

from repro.device import Topology, eagle, heavy_hex, linear_chain, ring


class TestBasics:
    def test_chain(self):
        t = linear_chain(5)
        assert t.num_qubits == 5
        assert t.edges == [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert t.neighbors(2) == [1, 3]
        assert t.degree(0) == 1

    def test_ring(self):
        t = ring(6)
        assert len(t.edges) == 6
        assert t.has_edge(0, 5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Topology(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Topology(2, [(0, 5)])


class TestHeavyHex:
    def test_eagle_size(self):
        t = eagle()
        assert t.num_qubits == 129  # 7 rows x 15 + 24 bridges
        # Row qubits have degree <= 3 (heavy-hex property).
        assert max(t.degree(q) for q in range(t.num_qubits)) <= 3

    def test_bridge_qubits_have_degree_two(self):
        t = heavy_hex(rows=3, row_length=7)
        row_qubit_count = 3 * 7
        for bridge in range(row_qubit_count, t.num_qubits):
            assert t.degree(bridge) == 2

    def test_rows_are_chains(self):
        t = heavy_hex(rows=2, row_length=5)
        for c in range(4):
            assert t.has_edge(c, c + 1)
            assert t.has_edge(5 + c, 5 + c + 1)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            heavy_hex(rows=0)


class TestDerivedStructure:
    def test_next_nearest_pairs_chain(self):
        t = linear_chain(4)
        triples = t.next_nearest_pairs()
        assert (0, 1, 2) in triples
        assert (1, 2, 3) in triples
        assert len(triples) == 2

    def test_subtopology_relabeling(self):
        t = linear_chain(6)
        sub, mapping = t.subtopology([2, 3, 4])
        assert sub.num_qubits == 3
        assert sub.edges == [(0, 1), (1, 2)]
        assert mapping == {2: 0, 3: 1, 4: 2}

    def test_subtopology_drops_external_edges(self):
        t = ring(6)
        sub, _ = t.subtopology([0, 2, 4])
        assert sub.edges == []
