"""Statevector engine tests with hypothesis checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import gates as g
from repro.pauli import Pauli
from repro.sim.coherent import CoherentAccumulation
from repro.sim.statevector import StateVector
from repro.utils.linalg import random_unitary


class TestGateApplication:
    def test_initial_state(self):
        s = StateVector(2)
        assert s.vector[0] == 1.0

    def test_x_flips(self):
        s = StateVector(2)
        s.apply_gate(g.X_MAT, [0])
        assert abs(s.vector[0b01]) == pytest.approx(1.0)

    def test_two_qubit_gate_ordering(self):
        s = StateVector(2)
        s.apply_gate(g.X_MAT, [0])
        s.apply_gate(g.CX_MAT, [0, 1])  # control = qubit 0
        assert abs(s.vector[0b11]) == pytest.approx(1.0)

    @given(st.integers(0, 2))
    @settings(max_examples=10, deadline=None)
    def test_matches_dense_embedding(self, qubit):
        from repro.circuits.circuit import _embed

        rng = np.random.default_rng(qubit + 1)
        u = random_unitary(2, rng)
        s = StateVector(3)
        s.apply_gate(g.H_MAT, [0])
        s.apply_gate(g.H_MAT, [2])
        expected = _embed(u, (qubit,), 3) @ s.vector
        s.apply_gate(u, [qubit])
        assert np.allclose(s.vector, expected)

    def test_norm_preserved(self):
        rng = np.random.default_rng(0)
        s = StateVector(3)
        for _ in range(10):
            u = random_unitary(4, rng)
            qubits = list(rng.choice(3, size=2, replace=False))
            s.apply_gate(u, qubits)
        assert np.linalg.norm(s.vector) == pytest.approx(1.0)


class TestPhases:
    def test_z_phase_matches_rz_gate(self):
        theta = 0.73
        a = StateVector(2)
        a.apply_gate(g.H_MAT, [0])
        b = a.copy()
        acc = CoherentAccumulation(z={0: theta})
        a.apply_phases(acc)
        b.apply_gate(g.rz_matrix(theta), [0])
        assert np.allclose(a.vector, b.vector)

    def test_zz_phase_matches_rzz_gate(self):
        theta = -1.1
        a = StateVector(2)
        a.apply_gate(g.H_MAT, [0])
        a.apply_gate(g.H_MAT, [1])
        b = a.copy()
        a.apply_phases(CoherentAccumulation(zz={(0, 1): theta}))
        b.apply_gate(g.rzz_matrix(theta), [0, 1])
        assert np.allclose(a.vector, b.vector)

    def test_empty_accumulation_noop(self):
        s = StateVector(1)
        before = s.vector.copy()
        s.apply_phases(CoherentAccumulation())
        assert np.array_equal(s.vector, before)


class TestPaulis:
    @pytest.mark.parametrize("label", ["X", "Y", "Z"])
    def test_apply_pauli_matches_gate(self, label):
        rng = np.random.default_rng(4)
        s = StateVector(2)
        s.apply_gate(random_unitary(4, rng), [0, 1])
        expected = s.copy()
        expected.apply_gate(g.PAULI_MATRICES[label], [1])
        s.apply_pauli(label, 1)
        assert np.allclose(s.vector, expected.vector)

    def test_identity_noop(self):
        s = StateVector(1)
        before = s.vector.copy()
        s.apply_pauli("I", 0)
        assert np.array_equal(s.vector, before)


class TestMeasurement:
    def test_deterministic_outcomes(self):
        rng = np.random.default_rng(0)
        s = StateVector(1)
        assert s.measure(0, rng) == 0
        s.apply_pauli("X", 0)
        assert s.measure(0, rng) == 1

    def test_collapse_normalizes(self):
        rng = np.random.default_rng(1)
        s = StateVector(2)
        s.apply_gate(g.H_MAT, [0])
        s.apply_gate(g.CX_MAT, [0, 1])
        outcome = s.measure(0, rng)
        assert np.linalg.norm(s.vector) == pytest.approx(1.0)
        # Bell state: both qubits agree after collapse.
        assert s.probability_one(1) == pytest.approx(float(outcome))

    def test_probability_one(self):
        s = StateVector(1)
        s.apply_gate(g.H_MAT, [0])
        assert s.probability_one(0) == pytest.approx(0.5)


class TestObservables:
    def test_expectation_z_on_zero(self):
        s = StateVector(2)
        assert s.expectation_pauli(Pauli.from_label("IZ")) == pytest.approx(1.0)

    def test_expectation_x_on_plus(self):
        s = StateVector(1)
        s.apply_gate(g.H_MAT, [0])
        assert s.expectation_pauli(Pauli.from_label("X")) == pytest.approx(1.0)

    def test_expectation_xx_on_bell(self):
        s = StateVector(2)
        s.apply_gate(g.H_MAT, [0])
        s.apply_gate(g.CX_MAT, [0, 1])
        assert s.expectation_pauli(Pauli.from_label("XX")) == pytest.approx(1.0)
        assert s.expectation_pauli(Pauli.from_label("ZZ")) == pytest.approx(1.0)
        assert s.expectation_pauli(Pauli.from_label("ZI")) == pytest.approx(0.0)

    def test_observable_size_mismatch(self):
        s = StateVector(2)
        with pytest.raises(ValueError):
            s.expectation_pauli(Pauli.from_label("Z"))

    def test_bitstring_probability(self):
        s = StateVector(2)
        s.apply_gate(g.H_MAT, [0])
        assert s.probability_of_bitstring({0: 0, 1: 0}) == pytest.approx(0.5)
        assert s.probability_of_bitstring({1: 1}) == pytest.approx(0.0)

    def test_fidelity_with(self):
        a = StateVector(1)
        b = StateVector(1)
        b.apply_gate(g.H_MAT, [0])
        assert a.fidelity_with(b) == pytest.approx(0.5)
