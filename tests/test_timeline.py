"""Sign-trajectory tests, including hypothesis invariants (paper Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, gates as g
from repro.sim.timeline import build_timeline, pair_sign_integral, sign_integral

fractions_strategy = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=0, max_size=6
).map(lambda fs: tuple(sorted(set(fs))))


class TestSignIntegral:
    def test_no_flips(self):
        assert sign_integral(()) == 1.0

    def test_midpoint_flip_cancels(self):
        assert sign_integral((0.5,)) == pytest.approx(0.0)

    def test_x2_cancels(self):
        assert sign_integral((0.25, 0.75)) == pytest.approx(0.0)

    def test_asymmetric_flip(self):
        assert sign_integral((0.25,)) == pytest.approx(-0.5)

    @given(fractions_strategy)
    @settings(max_examples=60, deadline=None)
    def test_bounded(self, flips):
        value = sign_integral(flips)
        assert -1.0 - 1e-12 <= value <= 1.0 + 1e-12

    @given(fractions_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_numeric_quadrature(self, flips):
        ts = np.linspace(0, 1, 20001)
        signs = np.ones_like(ts)
        for f in flips:
            signs[ts >= f] *= -1
        numeric = np.trapezoid(signs, ts)
        assert sign_integral(flips) == pytest.approx(numeric, abs=2e-3)


class TestPairSignIntegral:
    def test_aligned_pair_unsuppressed(self):
        assert pair_sign_integral((0.25, 0.75), (0.25, 0.75)) == pytest.approx(1.0)

    def test_staggered_pair_suppressed(self):
        assert pair_sign_integral((0.25, 0.75), (0.5, 1.0)) == pytest.approx(0.0)

    def test_control_echo_refocuses_idle_spectator(self):
        # case II: control flip at midpoint vs undressed spectator.
        assert pair_sign_integral((0.5,), ()) == pytest.approx(0.0)

    def test_rotary_refocuses_idle_spectator(self):
        # case III: rotary at quarter points vs undressed spectator.
        assert pair_sign_integral((0.25, 0.75), ()) == pytest.approx(0.0)

    def test_adjacent_controls_unsuppressed(self):
        # case IV: two aligned midpoint echoes.
        assert pair_sign_integral((0.5,), (0.5,)) == pytest.approx(1.0)

    @given(fractions_strategy, fractions_strategy)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert pair_sign_integral(a, b) == pytest.approx(pair_sign_integral(b, a))

    @given(fractions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_self_pair_is_unity(self, flips):
        assert pair_sign_integral(flips, flips) == pytest.approx(1.0)

    @given(fractions_strategy, fractions_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_numeric_quadrature(self, a, b):
        ts = np.linspace(0, 1, 20001)
        sa = np.ones_like(ts)
        sb = np.ones_like(ts)
        for f in a:
            sa[ts >= f] *= -1
        for f in b:
            sb[ts >= f] *= -1
        numeric = np.trapezoid(sa * sb, ts)
        assert pair_sign_integral(a, b) == pytest.approx(numeric, abs=4e-3)


class TestBuildTimeline:
    def test_ecr_roles(self):
        circ = Circuit(3)
        circ.ecr(0, 1)
        tl = build_timeline(circ.moments[0], 3, 500.0)
        assert tl.flips[0] == (0.5,)
        assert tl.flips[1] == (0.25, 0.75)
        assert tl.gate_pairs == {(0, 1)}
        assert tl.driven == {0, 1}

    def test_dd_sequence_flips(self):
        circ = Circuit(1)
        circ.append(g.dd_sequence((0.125, 0.375, 0.625, 0.875)), [0])
        tl = build_timeline(circ.moments[0], 1, 500.0)
        assert tl.flips[0] == (0.125, 0.375, 0.625, 0.875)

    def test_measurement_recorded(self):
        circ = Circuit(2, num_clbits=1)
        circ.measure(0, 0)
        tl = build_timeline(circ.moments[0], 2, 4000.0)
        assert tl.measured == {0}

    def test_virtual_gates_not_driven(self):
        circ = Circuit(1)
        circ.rz(0.4, 0)
        tl = build_timeline(circ.moments[0], 1, 0.0)
        assert tl.driven_1q == set()

    def test_physical_1q_gate_is_driven(self):
        circ = Circuit(1)
        circ.sx(0)
        tl = build_timeline(circ.moments[0], 1, 50.0)
        assert tl.driven_1q == {0}

    def test_canonical_gate_footprint(self):
        circ = Circuit(2)
        circ.can(0.1, 0.2, 0.3, 0, 1)
        tl = build_timeline(circ.moments[0], 2, 1500.0)
        assert tl.flips[0] == (0.5,)
        assert tl.flips[1] == (0.25, 0.75)
