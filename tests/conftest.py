"""Shared fixtures: small devices, fast simulator configurations, and the
reference workload the plan/cache test modules pin bit-identity against."""

import pytest

from repro import CADD, CAEC, Circuit, Pipeline, Task
from repro.device import linear_chain, ring, synthetic_device
from repro.sim import SimOptions


# -- shared plan/cache test workload ----------------------------------------
#
# Used by tests/test_plan.py and tests/test_plan_disk.py: one definition so
# the two suites can never drift apart in what "bit-identical" means.


def layered_circuit(num_qubits: int = 4, layers: int = 2) -> Circuit:
    circ = Circuit(num_qubits)
    for q in range(num_qubits):
        circ.h(q, new_moment=(q == 0))
    for _ in range(layers):
        circ.can(0.3, 0.2, 0.4, 0, 1, new_moment=True)
        circ.append_moment([])
        circ.can(0.1, 0.5, 0.2, 2, 3, new_moment=True)
        circ.append_moment([])
    return circ


OBS = {"x2": "IXII", "x3": "XIII"}


def det_pipeline() -> Pipeline:
    """A deterministic (twirl-free, therefore cacheable) recipe."""
    return Pipeline([CADD(), CAEC()])


def mixed_tasks():
    """Stochastic + deterministic + direct tasks in one batch."""
    circ = layered_circuit()
    return [
        Task(circ, observables=OBS, pipeline="ca_ec+dd", realizations=3, seed=11),
        Task(circ, observables=OBS, pipeline=det_pipeline(), realizations=2,
             seed=12),
        Task(circ, observables=OBS, seed=13),
        Task(circ, bit_targets={"f": {0: 0}}, pipeline="ca_dd", realizations=2,
             seed=14),
    ]


def batch_signature(batch):
    return [(r.values, r.errors, r.shots, r.realizations) for r in batch]


@pytest.fixture
def chain2():
    return synthetic_device(linear_chain(2), name="chain2", seed=101)


@pytest.fixture
def chain3():
    return synthetic_device(linear_chain(3), name="chain3", seed=102)


@pytest.fixture
def chain4():
    return synthetic_device(linear_chain(4), name="chain4", seed=103)


@pytest.fixture
def chain6():
    return synthetic_device(linear_chain(6), name="chain6", seed=104)


@pytest.fixture
def ring6():
    return synthetic_device(ring(6), name="ring6", seed=105)


@pytest.fixture
def ideal_options():
    """No noise at all: exercises only the ideal unitaries."""
    return SimOptions(
        shots=1,
        coherent=False,
        stochastic=False,
        dephasing=False,
        amplitude_damping=False,
        gate_errors=False,
        seed=0,
    )


@pytest.fixture
def coherent_options():
    """Deterministic: static coherent errors only (single shot suffices)."""
    return SimOptions(
        shots=1,
        stochastic=False,
        dephasing=False,
        amplitude_damping=False,
        gate_errors=False,
        seed=0,
    )


@pytest.fixture
def noisy_options():
    """Full noise with a modest shot count for statistical assertions."""
    return SimOptions(shots=32, seed=7)
