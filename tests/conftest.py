"""Shared fixtures: small devices and fast simulator configurations."""

import pytest

from repro.device import linear_chain, ring, synthetic_device
from repro.sim import SimOptions


@pytest.fixture
def chain2():
    return synthetic_device(linear_chain(2), name="chain2", seed=101)


@pytest.fixture
def chain3():
    return synthetic_device(linear_chain(3), name="chain3", seed=102)


@pytest.fixture
def chain4():
    return synthetic_device(linear_chain(4), name="chain4", seed=103)


@pytest.fixture
def chain6():
    return synthetic_device(linear_chain(6), name="chain6", seed=104)


@pytest.fixture
def ring6():
    return synthetic_device(ring(6), name="ring6", seed=105)


@pytest.fixture
def ideal_options():
    """No noise at all: exercises only the ideal unitaries."""
    return SimOptions(
        shots=1,
        coherent=False,
        stochastic=False,
        dephasing=False,
        amplitude_damping=False,
        gate_errors=False,
        seed=0,
    )


@pytest.fixture
def coherent_options():
    """Deterministic: static coherent errors only (single shot suffices)."""
    return SimOptions(
        shots=1,
        stochastic=False,
        dephasing=False,
        amplitude_damping=False,
        gate_errors=False,
        seed=0,
    )


@pytest.fixture
def noisy_options():
    """Full noise with a modest shot count for statistical assertions."""
    return SimOptions(shots=32, seed=7)
