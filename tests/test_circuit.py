"""Unit tests for the moment-based circuit IR."""

import numpy as np
import pytest

from repro.circuits import Circuit, Instruction, Moment, gates as g
from repro.circuits.circuit import _embed
from repro.utils.linalg import allclose_up_to_global_phase


class TestInstruction:
    def test_qubit_count_checked(self):
        with pytest.raises(ValueError):
            Instruction(g.CX, (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Instruction(g.CX, (1, 1))

    def test_measure_needs_clbit(self):
        with pytest.raises(ValueError):
            Instruction(g.measure(), (0,))

    def test_with_tag(self):
        inst = Instruction(g.X, (0,)).with_tag("dd")
        assert inst.tag == "dd"


class TestMoment:
    def test_disjointness_enforced(self):
        with pytest.raises(ValueError):
            Moment([Instruction(g.X, (0,)), Instruction(g.H, (0,))])

    def test_add_and_remove(self):
        m = Moment([Instruction(g.X, (0,))])
        inst = Instruction(g.H, (1,))
        m.add(inst)
        assert m.qubits == frozenset({0, 1})
        m.remove(inst)
        assert m.qubits == frozenset({0})

    def test_add_conflict_rolls_back(self):
        m = Moment([Instruction(g.X, (0,))])
        with pytest.raises(ValueError):
            m.add(Instruction(g.H, (0,)))
        assert len(m) == 1

    def test_replace(self):
        old = Instruction(g.X, (0,))
        m = Moment([old])
        m.replace(old, Instruction(g.Y, (0,)))
        assert m.instruction_on(0).gate.name == "y"

    def test_instruction_on_idle_returns_none(self):
        m = Moment([Instruction(g.X, (0,))])
        assert m.instruction_on(3) is None


class TestCircuitConstruction:
    def test_append_packs_disjoint_gates(self):
        c = Circuit(3)
        c.h(0)
        c.h(1)
        assert c.depth == 1

    def test_append_splits_on_conflict(self):
        c = Circuit(2)
        c.h(0)
        c.x(0)
        assert c.depth == 2

    def test_new_moment_forces_split(self):
        c = Circuit(2)
        c.h(0)
        c.h(1, new_moment=True)
        assert c.depth == 2

    def test_barrier(self):
        c = Circuit(2)
        c.h(0)
        c.barrier()
        c.h(1)
        assert c.depth == 2

    def test_out_of_range_qubit(self):
        c = Circuit(2)
        with pytest.raises(ValueError):
            c.h(2)

    def test_measure_requires_clbit_range(self):
        c = Circuit(2, num_clbits=1)
        c.measure(0, 0)
        with pytest.raises(ValueError):
            c.measure(1, 5)

    def test_conditional_after_measure_split(self):
        c = Circuit(2, num_clbits=1)
        c.measure(0, 0)
        c.x(1, condition=(0, 1))
        # The conditioned gate must be in a later moment than the measurement.
        measure_moment = next(
            i for i, m in enumerate(c.moments) if m.has_measurement
        )
        cond_moment = next(
            i
            for i, m in enumerate(c.moments)
            if any(inst.condition for inst in m)
        )
        assert cond_moment > measure_moment

    def test_measure_all(self):
        c = Circuit(3, num_clbits=3)
        c.h(0)
        c.measure_all()
        assert sum(1 for i in c.instructions() if i.gate.is_measurement) == 3

    def test_count_gates_by_name_and_tag(self):
        c = Circuit(2)
        c.h(0)
        c.append(g.X, [1], tag="twirl")
        assert c.count_gates(name="h") == 1
        assert c.count_gates(tag="twirl") == 1
        assert c.count_gates() == 2

    def test_copy_is_deep_for_moments(self):
        c = Circuit(2)
        c.h(0)
        c2 = c.copy()
        c2.x(1)
        assert c.count_gates() == 1
        assert c2.count_gates() == 2

    def test_has_dynamics(self):
        c = Circuit(2, num_clbits=1)
        assert not c.has_dynamics()
        c.measure(0, 0)
        assert c.has_dynamics()


class TestUnitary:
    def test_single_h(self):
        c = Circuit(1)
        c.h(0)
        assert np.allclose(c.unitary(), g.H_MAT)

    def test_order_of_moments(self):
        c = Circuit(1)
        c.h(0)
        c.s(0)
        # S after H: total = S @ H
        assert np.allclose(c.unitary(), g.S_MAT @ g.H_MAT)

    def test_cx_little_endian_embedding(self):
        c = Circuit(2)
        c.cx(0, 1)  # control qubit 0 (LSB)
        u = c.unitary()
        # |01> (q0=1) -> |11>
        state = np.zeros(4)
        state[0b01] = 1.0
        out = u @ state
        assert abs(out[0b11]) == pytest.approx(1.0)

    def test_unitary_raises_with_measurement(self):
        c = Circuit(1, num_clbits=1)
        c.measure(0, 0)
        with pytest.raises(ValueError):
            c.unitary()

    def test_embed_matches_kron_for_adjacent_pair(self):
        # gate on (1, 0): first listed = q1 = left factor; with q1 the MSB
        # of a 2-qubit register, the embedding equals the raw matrix.
        u = _embed(g.ECR_MAT, (1, 0), 2)
        assert np.allclose(u, g.ECR_MAT)

    def test_embed_swapped_qubits(self):
        u01 = _embed(g.CX_MAT, (0, 1), 2)
        u10 = _embed(g.CX_MAT, (1, 0), 2)
        swap = np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )
        assert np.allclose(u10, swap @ u01 @ swap)

    def test_three_qubit_circuit_against_kron(self):
        c = Circuit(3)
        c.h(0)
        c.cx(0, 1)
        c.cx(1, 2)
        u = c.unitary()
        state = u @ np.eye(8)[:, 0]
        # GHZ state: |000> + |111>
        expected = np.zeros(8, dtype=complex)
        expected[0] = expected[7] = 1 / np.sqrt(2)
        assert allclose_up_to_global_phase(
            state.reshape(-1, 1), expected.reshape(-1, 1)
        )
