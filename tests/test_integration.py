"""End-to-end physics assertions tying the whole stack together.

These encode the paper's central claims as testable orderings:

* aligned DD cancels Z but not idle-pair ZZ; staggered DD cancels both;
* gate echoes protect spectators for free (cases II/III);
* adjacent-control ZZ (case IV) is immune to DD but fixed by CA-EC;
* CA-EC is exact on the known static error, and cannot touch slow noise;
* the combined strategy beats its constituents on a mixed workload.
"""

import numpy as np
import pytest

from repro.benchmarking import CASE_I, CASE_IV, ramsey_fidelity
from repro.circuits import Circuit
from repro.compiler import compile_circuit, realization_factory
from repro.device import linear_chain, synthetic_device
from repro.sim import SimOptions, average_over_realizations, expectation_values

# These tests exercise the deprecated pre-1.1 shims on purpose (legacy
# equivalence coverage); downgrade their warnings from suite-wide error.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated since repro 1.1.*:DeprecationWarning"
)


@pytest.fixture
def coherent_only():
    return SimOptions(
        shots=1, stochastic=False, dephasing=False, amplitude_damping=False,
        gate_errors=False, seed=0,
    )


class TestCaseOrderings:
    def test_aligned_dd_fails_on_idle_pair(self, chain2, coherent_only):
        """Fig. 3c: at a depth where the ZZ phase is large, aligned DD is no
        better than nothing while staggered DD and CA-EC stay near 1."""
        depth = 12
        f = {
            name: ramsey_fidelity(
                CASE_I, chain2, depth, name, options=coherent_only
            )
            for name in ("none", "dd", "staggered_dd", "ca_ec")
        }
        assert f["staggered_dd"] > 0.98
        assert f["ca_ec"] > 0.98
        assert f["dd"] < 0.9  # ZZ survives aligned pulses

    def test_ec_plus_aligned_dd_equals_staggered(self, chain2):
        """Fig. 3c: EC + simple aligned DD matches the fancy staggered DD."""
        opts = SimOptions(shots=128, seed=9)
        depth = 16
        combo = ramsey_fidelity(
            CASE_I, chain2, depth, "ec+aligned_dd", options=opts
        )
        staggered = ramsey_fidelity(
            CASE_I, chain2, depth, "staggered_dd", options=opts
        )
        assert combo == pytest.approx(staggered, abs=0.06)

    def test_case4_only_ec_helps(self, coherent_only):
        device = synthetic_device(linear_chain(4), seed=55)
        depth = 10
        bare = ramsey_fidelity(
            CASE_IV, device, depth, "none", twirl=True, realizations=8,
            options=SimOptions(
                shots=4, stochastic=False, dephasing=False,
                amplitude_damping=False, gate_errors=False,
            ), seed=3,
        )
        ec = ramsey_fidelity(
            CASE_IV, device, depth, "ca_ec", twirl=True, realizations=8,
            options=SimOptions(
                shots=4, stochastic=False, dephasing=False,
                amplitude_damping=False, gate_errors=False,
            ), seed=3,
        )
        assert ec > bare + 0.02

    def test_gate_echo_protects_spectator_zz_for_free(self, chain3, coherent_only):
        """Cases II/III: without any suppression, the spectator's ZZ with the
        gated neighbor refocuses; the residual is a pure Z drift."""
        circ = Circuit(3)
        circ.h(0)
        for _ in range(6):
            circ.ecr(1, 2, new_moment=True)
            circ.append_moment([])
        circ.append_moment([])
        # A pure Z rotation moves <X> into <Y>; entangling ZZ would shrink
        # the Bloch vector instead. Check the equatorial polarization is
        # preserved (up to the tiny ZZ of the short 1q prep layer).
        res = expectation_values(
            circ, chain3, {"y0": "IIY", "x0": "IIX"}, coherent_only
        )
        length = np.hypot(res["y0"], res["x0"])
        assert length == pytest.approx(1.0, abs=1e-3)
        assert abs(res["y0"]) > 0.05  # the Z drift itself is visible


class TestStrategyHierarchy:
    def test_mixed_workload_ordering(self, coherent_only):
        """On a circuit with can gates and idle pairs, the suppression
        hierarchy none < ca_dd <= ca_ec holds for static coherent noise."""
        device = synthetic_device(linear_chain(4), seed=5)
        circ = Circuit(4)
        for q in range(4):
            circ.h(q, new_moment=(q == 0))
        for _ in range(2):
            circ.can(0.3, 0.2, 0.4, 0, 1, new_moment=True)
            circ.append_moment([])
            circ.can(0.1, 0.5, 0.2, 2, 3, new_moment=True)
            circ.append_moment([])
        obs = {"x2": "IXII", "x3": "XIII"}
        ideal = expectation_values(
            circ, device.ideal(), obs,
            SimOptions(
                shots=1, coherent=False, stochastic=False, dephasing=False,
                amplitude_damping=False, gate_errors=False, seed=0,
            ),
        )

        def err(strategy):
            factory = realization_factory(circ, device, strategy)
            res = average_over_realizations(
                factory, device, obs, realizations=24,
                options=coherent_only, seed=11,
            )
            return sum(abs(res[k] - ideal[k]) for k in obs)

        e_none = err("none")
        e_cadd = err("ca_dd")
        e_caec = err("ca_ec")
        assert e_cadd < e_none
        assert e_caec < e_none
        assert e_caec < e_cadd + 0.05

    def test_ca_ec_cannot_fix_slow_noise_dd_can(self):
        """Table I row 5 as an ordering on the same circuit."""
        from dataclasses import replace

        from repro.utils.units import KHZ

        device = synthetic_device(linear_chain(2), seed=6)
        qubits = [
            replace(
                q, quasistatic_sigma=20.0 * KHZ, parity_delta=0.0,
                t1=float("inf"), t2=float("inf"), p1=0.0,
            )
            for q in device.qubits
        ]
        device = replace(device, qubits=qubits)
        opts = SimOptions(
            shots=200, dephasing=False, amplitude_damping=False,
            gate_errors=False, seed=12,
        )
        depth = 10
        ec = ramsey_fidelity(CASE_I, device, depth, "ca_ec", options=opts)
        dd = ramsey_fidelity(CASE_I, device, depth, "staggered_dd", options=opts)
        assert dd > ec + 0.05


class TestCompilerCost:
    def test_ca_dd_uses_fewer_pulses_than_max_walsh(self, chain6):
        """Greedy low-color preference keeps pulse counts near minimal."""
        from repro.compiler import apply_ca_dd, dd_pulse_count

        circ = Circuit(6)
        circ.append_moment([])
        for q in range(6):
            circ.delay(500.0, q, new_moment=(q == 0))
        circ.append_moment([])
        dressed, report = apply_ca_dd(circ, chain6)
        # Chain is bipartite: 2 colors suffice -> 2 pulses per qubit.
        assert dd_pulse_count(dressed) == 12

    def test_ec_zero_walltime_overhead(self, chain4):
        from repro.circuits import schedule

        circ = Circuit(4)
        for q in range(4):
            circ.h(q, new_moment=(q == 0))
        circ.can(0.3, 0.2, 0.4, 0, 1, new_moment=True)
        circ.append_moment([])
        # Compare against the twirl-only pipeline with the same seed: EC must
        # add zero wall-clock on top of it (virtual Rz + stretched pulses).
        baseline = compile_circuit(circ, chain4, "none", seed=0)
        compiled = compile_circuit(circ, chain4, "ca_ec", seed=0)
        before = schedule(baseline, chain4.durations).total_duration
        after = schedule(compiled, chain4.durations).total_duration
        assert after == pytest.approx(before)
