"""Scheduling tests: durations, idle windows, timing arithmetic."""


from repro.circuits import Circuit, Durations, gates as g, schedule


class TestDurations:
    def test_defaults(self):
        d = Durations()
        assert d.twoq == 500.0
        assert d.measure == 4000.0

    def test_virtual_gates_are_free(self):
        circ = Circuit(1)
        circ.rz(0.4, 0)
        sched = schedule(circ)
        assert sched.total_duration == 0.0

    def test_delay_uses_param(self):
        circ = Circuit(1)
        circ.delay(777.0, 0)
        sched = schedule(circ)
        assert sched.total_duration == 777.0

    def test_moment_duration_is_max(self):
        circ = Circuit(3)
        circ.h(0)
        circ.delay(900.0, 1)
        sched = schedule(circ)
        assert sched[0].duration == 900.0

    def test_canonical_gate_three_cnots_long(self):
        circ = Circuit(2)
        circ.can(0.1, 0.2, 0.3, 0, 1)
        d = Durations()
        sched = schedule(circ, d)
        assert sched.total_duration == d.twoq * d.canonical_factor

    def test_conditional_uses_feedforward(self):
        circ = Circuit(2, num_clbits=1)
        circ.measure(0, 0)
        circ.x(1, condition=(0, 1))
        d = Durations()
        sched = schedule(circ, d)
        assert sched.total_duration == d.measure + d.feedforward

    def test_duration_override_wins(self):
        circ = Circuit(1)
        circ.append(g.dd_sequence((0.25, 0.75), duration=480.0), [0])
        sched = schedule(circ)
        assert sched[0].duration == 480.0


class TestScheduledCircuit:
    def test_start_times_accumulate(self):
        circ = Circuit(2)
        circ.h(0, new_moment=True)
        circ.ecr(0, 1, new_moment=True)
        circ.h(0, new_moment=True)
        sched = schedule(circ)
        starts = [sm.start for sm in sched]
        assert starts == [0.0, 50.0, 550.0]
        assert sched.total_duration == 600.0

    def test_idle_qubits(self):
        circ = Circuit(3)
        circ.ecr(0, 1, new_moment=True)
        sched = schedule(circ)
        assert sched.idle_qubits(0) == frozenset({2})

    def test_idle_windows_reports_delays_and_gaps(self):
        circ = Circuit(2)
        circ.delay(600.0, 0, new_moment=True)
        sched = schedule(circ)
        windows = sched.idle_windows(min_duration=100.0)
        qubits = {q for _i, q, _d in windows}
        assert qubits == {0, 1}  # the delayed qubit and the truly idle one

    def test_refresh_after_edit(self):
        circ = Circuit(1)
        circ.h(0)
        sched = schedule(circ)
        total_before = sched.total_duration
        circ.moments.append(
            __import__("repro.circuits.circuit", fromlist=["Moment"]).Moment([])
        )
        circ.delay(100.0, 0, new_moment=True)
        sched.refresh()
        assert sched.total_duration == total_before + 100.0
