"""Constrained graph-coloring tests (Algorithm 1, ColorGraph)."""

import networkx as nx

from repro.compiler.coloring import (
    CONTROL_COLOR,
    TARGET_COLOR,
    color_idle_group,
    colors_used,
)


def path_graph(n):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from((i, i + 1) for i in range(n - 1))
    return g


class TestBasicColoring:
    def test_isolated_qubit_gets_lowest_color(self):
        g = nx.Graph()
        g.add_node(0)
        result = color_idle_group([0], g)
        assert result.colors[0] == 1

    def test_adjacent_idles_differ(self):
        result = color_idle_group([0, 1, 2], path_graph(3))
        assert result.colors[0] != result.colors[1]
        assert result.colors[1] != result.colors[2]
        assert result.conflicts == []

    def test_chain_uses_two_colors(self):
        result = color_idle_group(range(6), path_graph(6))
        assert colors_used(result) == 2

    def test_triangle_needs_three_colors(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2), (0, 2)])
        result = color_idle_group([0, 1, 2], g)
        assert colors_used(result) == 3
        assert result.conflicts == []


class TestPinnedConstraints:
    def test_control_spectator_avoids_control_color(self):
        """Paper Sec. IV A: the control's spectator must not share color 1."""
        g = path_graph(2)
        result = color_idle_group([0], g, pinned={1: CONTROL_COLOR})
        assert result.colors[0] != CONTROL_COLOR

    def test_target_spectator_avoids_target_color(self):
        g = path_graph(2)
        result = color_idle_group([0], g, pinned={1: TARGET_COLOR})
        assert result.colors[0] != TARGET_COLOR

    def test_spectator_between_control_and_target(self):
        # idle qubit 1 between a control (0) and a target (2).
        g = path_graph(3)
        result = color_idle_group(
            [1], g, pinned={0: CONTROL_COLOR, 2: TARGET_COLOR}
        )
        assert result.colors[1] not in (CONTROL_COLOR, TARGET_COLOR)
        assert result.colors[1] == 3  # lowest legal color

    def test_adjacent_pinned_controls_reported_as_conflict(self):
        """Case IV: two adjacent controls share color 1 -> conflict."""
        g = path_graph(2)
        result = color_idle_group(
            [], g, pinned={0: CONTROL_COLOR, 1: CONTROL_COLOR}
        )
        assert (0, 1) in result.conflicts

    def test_constrained_qubits_colored_first(self):
        """Greedy order starts at qubits constrained by pinned neighbors."""
        g = path_graph(4)
        result = color_idle_group([1, 2, 3], g, pinned={0: CONTROL_COLOR})
        # Qubit 1 (next to the pin) should receive the lowest non-1 color.
        assert result.colors[1] == 2

    def test_assigned_excludes_pinned(self):
        g = path_graph(2)
        result = color_idle_group([0], g, pinned={1: CONTROL_COLOR})
        assert result.assigned == [0]


class TestExhaustion:
    def test_color_exhaustion_falls_back_with_conflict(self):
        """With bins=2 only color 1 exists; a pair must conflict."""
        g = path_graph(2)
        result = color_idle_group([0, 1], g, bins=2)
        assert result.conflicts  # unavoidable
