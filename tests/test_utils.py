"""Tests for rng, linalg, units, fitting utilities."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    DecayFit,
    allclose_up_to_global_phase,
    as_generator,
    derive_seed,
    dominant_frequency,
    fit_exponential_decay,
    is_unitary,
    khz,
    kron_all,
    phase_angle,
    random_unitary,
    spawn,
    state_fidelity,
    us,
)


class TestRng:
    def test_as_generator_from_int(self):
        a = as_generator(5)
        b = as_generator(5)
        assert a.random() == b.random()

    def test_passthrough(self):
        rng = np.random.default_rng(1)
        assert as_generator(rng) is rng

    def test_spawn_independent(self):
        children = spawn(as_generator(0), 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_derive_seed_deterministic(self):
        assert derive_seed(5, 1, 2) == derive_seed(5, 1, 2)
        assert derive_seed(5, 1, 2) != derive_seed(5, 2, 1)
        assert derive_seed(None, 1) is None


class TestLinalg:
    def test_is_unitary(self):
        assert is_unitary(np.eye(3))
        assert not is_unitary(np.ones((2, 2)))
        assert not is_unitary(np.ones((2, 3)))

    @given(st.floats(-math.pi, math.pi, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_global_phase_equivalence(self, phi):
        rng = np.random.default_rng(0)
        u = random_unitary(2, rng)
        assert allclose_up_to_global_phase(np.exp(1j * phi) * u, u)

    def test_global_phase_rejects_different(self):
        assert not allclose_up_to_global_phase(
            np.eye(2), np.array([[1, 0], [0, -1]], dtype=complex)
        )

    def test_kron_all(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        assert np.allclose(kron_all(x, np.eye(2)), np.kron(x, np.eye(2)))

    def test_state_fidelity(self):
        a = np.array([1, 0], dtype=complex)
        b = np.array([1, 1], dtype=complex) / math.sqrt(2)
        assert state_fidelity(a, b) == pytest.approx(0.5)

    def test_random_unitary_is_unitary(self):
        rng = np.random.default_rng(2)
        assert is_unitary(random_unitary(8, rng))


class TestUnits:
    def test_khz(self):
        assert khz(50.0) == pytest.approx(5e-5)

    def test_us(self):
        assert us(4.0) == pytest.approx(4000.0)

    def test_phase_angle(self):
        # 50 kHz over 500 ns: 2 pi * 5e-5 * 500.
        assert phase_angle(khz(50.0), 500.0) == pytest.approx(
            2 * math.pi * 5e-5 * 500.0
        )


class TestDecayFit:
    def test_recovers_known_decay(self):
        x = np.arange(10)
        y = 0.9 * 0.8**x
        fit = fit_exponential_decay(x, y, offset=0.0)
        assert fit.rate == pytest.approx(0.8, abs=1e-3)
        assert fit.amplitude == pytest.approx(0.9, abs=1e-3)

    def test_with_free_offset(self):
        x = np.arange(12)
        y = 0.7 * 0.85**x + 0.1
        fit = fit_exponential_decay(x, y)
        assert fit.rate == pytest.approx(0.85, abs=0.02)
        assert fit.offset == pytest.approx(0.1, abs=0.03)

    def test_callable(self):
        fit = DecayFit(amplitude=1.0, rate=0.5, offset=0.0, residual=0.0)
        assert fit(2) == pytest.approx(0.25)

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            fit_exponential_decay([1], [1])

    def test_noisy_data_still_fits(self):
        rng = np.random.default_rng(3)
        x = np.arange(15)
        y = 0.95**x + rng.normal(0, 0.01, size=15)
        fit = fit_exponential_decay(x, y, offset=0.0)
        assert fit.rate == pytest.approx(0.95, abs=0.02)


class TestDominantFrequency:
    def test_recovers_single_tone(self):
        times = np.linspace(0, 100, 400)
        freq = 0.22
        signal = np.cos(2 * math.pi * freq * times)
        assert dominant_frequency(times, signal) == pytest.approx(freq, abs=0.01)

    def test_ignores_dc(self):
        times = np.linspace(0, 50, 256)
        signal = 3.0 + 0.5 * np.cos(2 * math.pi * 0.3 * times)
        assert dominant_frequency(times, signal) == pytest.approx(0.3, abs=0.02)

    def test_requires_uniform_spacing(self):
        with pytest.raises(ValueError):
            dominant_frequency([0, 1, 3, 4, 6], [1, 2, 1, 2, 1])

    def test_requires_minimum_samples(self):
        with pytest.raises(ValueError):
            dominant_frequency([0, 1], [0, 1])
