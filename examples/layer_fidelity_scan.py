"""Layer-fidelity benchmarking of a sparse 10-qubit layer (paper Fig. 8).

Measures the layer fidelity (and the mitigation overhead base gamma =
LF**-2) of a layer containing three ECR gates, two adjacent idle qubits,
and two adjacent ECR controls — then compares suppression strategies.

Run:  python examples/layer_fidelity_scan.py
"""

from repro.benchmarking import measure_layer_fidelity, overhead_reduction
from repro.experiments import fig8_device, fig8_layer
from repro.sim import SimOptions

device = fig8_device()
spec = fig8_layer()
print(f"layer: {spec.gates} on {spec.num_qubits} qubits")
print(f"idle qubits: {sorted(set(range(10)) - set(spec.active_qubits))}\n")

options = SimOptions(shots=10)
results = {}
print("strategy        LF      gamma")
for strategy in ("none", "dd", "ca_dd", "ca_ec"):
    result = measure_layer_fidelity(
        spec, device, strategy,
        depths=(1, 2, 4, 6), samples=5, options=options, seed=42,
    )
    results[strategy] = result
    print(f"{strategy:>12s}  {result.layer_fidelity:.3f}  {result.gamma:.2f}")

print("\nper-partition decay rates (ca_ec):")
for partition, rate in results["ca_ec"].rates.items():
    print(f"  {partition}: {rate:.4f}")

layers = 10
print(f"\nsampling-overhead reduction for a {layers}-layer circuit:")
for strategy in ("ca_dd", "ca_ec"):
    factor = overhead_reduction(
        results["dd"].gamma, results[strategy].gamma, layers
    )
    print(f"  {strategy} vs dd: {factor:.1f}x")
