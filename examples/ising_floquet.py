"""Floquet Ising chain at the Clifford point (paper Fig. 6).

The boundary correlation <X0 X5> should alternate between +1 and -1 every
Floquet step. Idle periods at the chain boundary accumulate coherent Z/ZZ
errors that wash the signal out; CA-EC and CA-DD recover it.

Every (strategy, step) point is one runtime Task; the whole table is a
single batched, multi-threaded run().

Run:  python examples/ising_floquet.py
"""

from repro.apps import boundary_xx_label, ideal_boundary_xx, ising_circuit, ising_device
from repro.runtime import Task, run
from repro.sim import SimOptions

NUM_QUBITS = 6
STEPS = range(0, 6)
STRATEGIES = ("none", "ca_ec", "ca_dd")

device = ising_device(NUM_QUBITS, seed=21)
observable = {"xx": boundary_xx_label(NUM_QUBITS)}

batch = run(
    [
        Task(
            ising_circuit(NUM_QUBITS, depth),
            observables=observable,
            pipeline=strategy,
            realizations=6,
            seed=100 + depth,
            name=f"{strategy}/d{depth}",
        )
        for strategy in STRATEGIES
        for depth in STEPS
    ],
    device,
    options=SimOptions(shots=24),
    workers=4,
)

print("step  ideal   none     ca_ec    ca_dd")
for depth in STEPS:
    row = [f"{ideal_boundary_xx(depth):+.0f}"]
    row += [f"{batch[f'{s}/d{depth}']['xx']:+.3f}" for s in STRATEGIES]
    print(f"{depth:4d}  {row[0]:>5s}  {row[1]}   {row[2]}   {row[3]}")

print(f"\n{batch!r}")
print(
    "The suppressed columns should track the alternating ideal signal"
    " noticeably better than the twirl-only baseline."
)
