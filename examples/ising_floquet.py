"""Floquet Ising chain at the Clifford point (paper Fig. 6).

The boundary correlation <X0 X5> should alternate between +1 and -1 every
Floquet step. Idle periods at the chain boundary accumulate coherent Z/ZZ
errors that wash the signal out; CA-EC and CA-DD recover it.

Run:  python examples/ising_floquet.py
"""

from repro.apps import boundary_xx_label, ideal_boundary_xx, ising_circuit, ising_device
from repro.compiler import realization_factory
from repro.sim import SimOptions, average_over_realizations

NUM_QUBITS = 6
STEPS = range(0, 6)

device = ising_device(NUM_QUBITS, seed=21)
observable = {"xx": boundary_xx_label(NUM_QUBITS)}
options = SimOptions(shots=24)

print("step  ideal   none     ca_ec    ca_dd")
for depth in STEPS:
    circuit = ising_circuit(NUM_QUBITS, depth)
    row = [f"{ideal_boundary_xx(depth):+.0f}"]
    for strategy in ("none", "ca_ec", "ca_dd"):
        factory = realization_factory(circuit, device, strategy)
        result = average_over_realizations(
            factory, device, observable,
            realizations=6, options=options, seed=100 + depth,
        )
        row.append(f"{result['xx']:+.3f}")
    print(f"{depth:4d}  {row[0]:>5s}  {row[1]}   {row[2]}   {row[3]}")

print(
    "\nThe suppressed columns should track the alternating ideal signal"
    " noticeably better than the twirl-only baseline."
)
