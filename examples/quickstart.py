"""Quickstart: suppress correlated noise in a small layered circuit.

Builds a 4-qubit circuit with two entangling layers (leaving idle neighbors
each time — the context that breeds correlated ZZ errors), then compares
the uncompensated result against each compilation strategy from the paper
using the batched runtime: one ``run()`` call executes every strategy on
the vectorized backend (all shots of a task evolve as one batched array —
bit-for-bit identical to the scalar ``trajectory`` backend, just faster),
fanned out across worker threads, with seed-for-seed deterministic results.

Run:  python examples/quickstart.py
"""

from repro import (
    CADD,
    CAEC,
    Circuit,
    Pipeline,
    SimOptions,
    Task,
    Twirl,
    linear_chain,
    run,
    synthetic_device,
)

# --- 1. a device: 4 qubits in a chain with synthetic IBM-like calibration ---
device = synthetic_device(linear_chain(4), name="demo", seed=7)
print(f"device: {device.name}, ZZ(0,1) = {device.zz_rate(0, 1) / 1e-6:.1f} kHz")

# --- 2. a layered circuit: Heisenberg-style interactions with idle gaps ----
circuit = Circuit(4)
for q in range(4):
    circuit.h(q, new_moment=(q == 0))
for _ in range(2):
    circuit.can(0.3, 0.2, 0.4, 0, 1, new_moment=True)  # qubits 2,3 idle
    circuit.append_moment([])
    circuit.can(0.1, 0.5, 0.2, 2, 3, new_moment=True)  # qubits 0,1 idle
    circuit.append_moment([])

observables = {"<X2>": "IXII", "<X3>": "XIII"}

# --- 3. the noiseless reference ---------------------------------------------
ideal = run(
    Task(circuit, observables=observables, device=device.ideal()),
    options=SimOptions(
        shots=1, coherent=False, stochastic=False, dephasing=False,
        amplitude_damping=False, gate_errors=False, seed=0,
    ),
).results[0]
print("\nideal:", {k: round(v, 4) for k, v in ideal.items()})

# --- 4. compare suppression strategies in ONE batched, parallel run ---------
strategies = ("none", "dd", "staggered_dd", "ca_dd", "ca_ec", "ca_ec+dd")
batch = run(
    [
        Task(circuit, observables=observables, pipeline=strategy,
             realizations=10, seed=1, name=strategy)
        for strategy in strategies
    ],
    device,
    options=SimOptions(shots=32),
    backend="vectorized",  # same bits as "trajectory", batched evolution
    workers=4,
)
for strategy in strategies:
    result = batch[strategy]
    error = sum(abs(result[k] - ideal[k]) for k in observables)
    values = {k: round(v, 4) for k, v in result.items()}
    print(f"{strategy:>14s}: {values}   total |error| = {error:.4f}")
print(f"\n{batch!r}")

# --- 5. custom pipelines compose passes directly ----------------------------
custom = Pipeline([Twirl(), CADD(), CAEC()], name="custom")
result = run(
    Task(circuit, observables=observables, pipeline=custom,
         realizations=10, seed=1),
    device,
    options=SimOptions(shots=32),
).results[0]
print(f"\ncustom {custom.name} pipeline:",
      {k: round(v, 4) for k, v in result.items()})

print(
    "\nExpected ordering: none > dd > staggered_dd >= ca_dd >= ca_ec;"
    " the combined strategy is best."
)
