"""Quickstart: suppress correlated noise in a small layered circuit.

Builds a 4-qubit circuit with two entangling layers (leaving idle neighbors
each time — the context that breeds correlated ZZ errors), then compares
the uncompensated result against each compilation strategy from the paper.

Run:  python examples/quickstart.py
"""

from repro import (
    Circuit,
    SimOptions,
    average_over_realizations,
    expectation_values,
    linear_chain,
    realization_factory,
    synthetic_device,
)

# --- 1. a device: 4 qubits in a chain with synthetic IBM-like calibration ---
device = synthetic_device(linear_chain(4), name="demo", seed=7)
print(f"device: {device.name}, ZZ(0,1) = {device.zz_rate(0, 1) / 1e-6:.1f} kHz")

# --- 2. a layered circuit: Heisenberg-style interactions with idle gaps ----
circuit = Circuit(4)
for q in range(4):
    circuit.h(q, new_moment=(q == 0))
for _ in range(2):
    circuit.can(0.3, 0.2, 0.4, 0, 1, new_moment=True)  # qubits 2,3 idle
    circuit.append_moment([])
    circuit.can(0.1, 0.5, 0.2, 2, 3, new_moment=True)  # qubits 0,1 idle
    circuit.append_moment([])

observables = {"<X2>": "IXII", "<X3>": "XIII"}

# --- 3. the noiseless reference ---------------------------------------------
ideal = expectation_values(
    circuit,
    device.ideal(),
    observables,
    SimOptions(
        shots=1, coherent=False, stochastic=False, dephasing=False,
        amplitude_damping=False, gate_errors=False, seed=0,
    ),
)
print("\nideal:", {k: round(v, 4) for k, v in ideal.values.items()})

# --- 4. compare suppression strategies --------------------------------------
options = SimOptions(shots=32)
for strategy in ("none", "dd", "staggered_dd", "ca_dd", "ca_ec", "ca_ec+dd"):
    factory = realization_factory(circuit, device, strategy)
    result = average_over_realizations(
        factory, device, observables, realizations=10, options=options, seed=1
    )
    error = sum(abs(result[k] - ideal[k]) for k in observables)
    values = {k: round(v, 4) for k, v in result.values.items()}
    print(f"{strategy:>14s}: {values}   total |error| = {error:.4f}")

print(
    "\nExpected ordering: none > dd > staggered_dd >= ca_dd >= ca_ec;"
    " the combined strategy is best."
)
