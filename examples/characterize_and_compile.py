"""Characterize, then compile: the full calibration-to-compensation loop.

The paper's compensation angles come from backend characterization data.
This example runs that loop inside the simulator: it *measures* the device's
always-on ZZ rates with conditional Ramsey experiments, builds a
calibration-estimated device model, compiles CA-EC against the measured
rates, and compares the result with the oracle-calibration compilation.

Run:  python examples/characterize_and_compile.py
"""

from repro.benchmarking import characterize_device, measure_zz_rate
from repro.circuits import Circuit, draw
from repro.compiler import apply_ca_ec
from repro.device import linear_chain, synthetic_device
from repro.runtime import Task, run
from repro.sim import SimOptions

device = synthetic_device(linear_chain(3), name="lab_device", seed=71)
quiet = SimOptions(
    shots=64, seed=5, dephasing=False, amplitude_damping=False, gate_errors=False
)

# --- 1. characterize every coupled pair -------------------------------------
print("conditional-Ramsey ZZ characterization:")
for a, b in device.pairs:
    measured = measure_zz_rate(device, a, b, options=quiet)
    true = device.zz_rate(a, b)
    print(
        f"  pair ({a},{b}): measured {measured.rate / 1e-6:6.2f} kHz,"
        f" true {true / 1e-6:6.2f} kHz"
    )

estimated = characterize_device(device, options=quiet)

# --- 2. compile against the measured calibration -----------------------------
circuit = Circuit(3)
circuit.h(0)
circuit.h(1)
circuit.delay(700.0, 0, new_moment=True)
circuit.delay(700.0, 1)
circuit.append_moment([])

oracle, _ = apply_ca_ec(circuit, device)       # knows the true rates
measured_comp, _ = apply_ca_ec(circuit, estimated)  # knows only measurements

print("\ncompiled circuit (measured calibration):")
print(draw(measured_comp))

# --- 3. compare ---------------------------------------------------------------
clean = SimOptions(
    shots=1, stochastic=False, dephasing=False, amplitude_damping=False,
    gate_errors=False, seed=0,
)
obs = {"<X0>": "IIX", "<X1>": "IXI"}
# One batched run; the ideal reference rides along on its own device.
batch = run(
    [
        Task(circuit, observables=obs, device=device.ideal(), name="ideal"),
        Task(circuit, observables=obs, name="bare"),
        Task(oracle, observables=obs, name="CA-EC (oracle)"),
        Task(measured_comp, observables=obs, name="CA-EC (measured)"),
    ],
    device,
    options=clean,
)

print("\n                ", "  ".join(obs))
for res in batch:
    print(f"{res.name:>18s}:", "  ".join(f"{res[k]:+.4f}" for k in obs))

print(
    "\nThe measured-calibration compilation matches the oracle to the"
    " characterization accuracy — the workflow a real backend runs."
)
