"""Trotterized Heisenberg ring with context-aware compiling (paper Fig. 7).

Simulates <Z2> dynamics of a 12-spin Heisenberg ring (3 canonical-gate
layers per Trotter step on the heavy-hex embedding) and estimates how much
error-mitigation sampling overhead each suppression strategy saves via the
global depolarizing model.

Run:  python examples/heisenberg_ring.py
"""

from repro.apps import (
    equivalent_cnot_count,
    equivalent_cnot_depth,
    heisenberg_circuit,
    heisenberg_device,
    site_z_label,
)
from repro.benchmarking import fit_global_depolarizing
from repro.compiler import realization_factory
from repro.sim import SimOptions, average_over_realizations, expectation_values

NUM_QUBITS = 12
STEPS = [0, 1, 2, 3, 4]
SITE = 2

device = heisenberg_device(NUM_QUBITS, seed=31)
observable = {"z": site_z_label(NUM_QUBITS, SITE)}
print(
    f"{NUM_QUBITS}-qubit ring, {equivalent_cnot_count(NUM_QUBITS, max(STEPS))} "
    f"equivalent CNOTs, CNOT depth {equivalent_cnot_depth(max(STEPS))}"
)

ideal_options = SimOptions(
    shots=1, coherent=False, stochastic=False, dephasing=False,
    amplitude_damping=False, gate_errors=False, seed=0,
)
ideal = [
    expectation_values(
        heisenberg_circuit(NUM_QUBITS, d), device.ideal(), observable, ideal_options
    )["z"]
    for d in STEPS
]
print("ideal <Z2>:", [round(v, 3) for v in ideal])

options = SimOptions(shots=12)
fits = {}
for strategy in ("none", "dd", "ca_dd", "ca_ec"):
    curve = []
    for depth in STEPS:
        circuit = heisenberg_circuit(NUM_QUBITS, depth)
        factory = realization_factory(circuit, device, strategy)
        result = average_over_realizations(
            factory, device, observable,
            realizations=6, options=options, seed=200 + depth,
        )
        curve.append(result["z"])
    fits[strategy] = fit_global_depolarizing(STEPS, curve, ideal)
    print(f"{strategy:>8s} <Z2>:", [round(v, 3) for v in curve])

depth = STEPS[-1]
print("\nmitigation overhead at d =", depth)
for strategy, fit in fits.items():
    print(f"  {strategy:>8s}: {fit.overhead(depth):9.2f}  (lambda = {fit.rate:.4f})")
reference = fits["none"].overhead(depth)
for strategy in ("ca_dd", "ca_ec"):
    print(
        f"  {strategy} reduces overhead by "
        f"{reference / fits[strategy].overhead(depth):.2f}x over none"
    )
