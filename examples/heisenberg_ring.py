"""Trotterized Heisenberg ring with context-aware compiling (paper Fig. 7).

Simulates <Z2> dynamics of a 12-spin Heisenberg ring (3 canonical-gate
layers per Trotter step on the heavy-hex embedding) and estimates how much
error-mitigation sampling overhead each suppression strategy saves via the
global depolarizing model. All strategy curves execute as one batched,
multi-threaded runtime call.

Run:  python examples/heisenberg_ring.py
"""

from repro.apps import (
    equivalent_cnot_count,
    equivalent_cnot_depth,
    heisenberg_circuit,
    heisenberg_device,
    site_z_label,
)
from repro.benchmarking import fit_global_depolarizing
from repro.runtime import Task, run
from repro.sim import SimOptions

NUM_QUBITS = 12
STEPS = [0, 1, 2, 3, 4]
SITE = 2
STRATEGIES = ("none", "dd", "ca_dd", "ca_ec")

device = heisenberg_device(NUM_QUBITS, seed=31)
observable = {"z": site_z_label(NUM_QUBITS, SITE)}
print(
    f"{NUM_QUBITS}-qubit ring, {equivalent_cnot_count(NUM_QUBITS, max(STEPS))} "
    f"equivalent CNOTs, CNOT depth {equivalent_cnot_depth(max(STEPS))}"
)

ideal_options = SimOptions(
    shots=1, coherent=False, stochastic=False, dephasing=False,
    amplitude_damping=False, gate_errors=False, seed=0,
)
ideal_batch = run(
    [
        Task(heisenberg_circuit(NUM_QUBITS, d), observables=observable)
        for d in STEPS
    ],
    device.ideal(),
    options=ideal_options,
)
ideal = [point["z"] for point in ideal_batch]
print("ideal <Z2>:", [round(v, 3) for v in ideal])

batch = run(
    [
        Task(
            heisenberg_circuit(NUM_QUBITS, depth),
            observables=observable,
            pipeline=strategy,
            realizations=6,
            seed=200 + depth,
            name=f"{strategy}/d{depth}",
        )
        for strategy in STRATEGIES
        for depth in STEPS
    ],
    device,
    options=SimOptions(shots=12),
    workers=4,
)

fits = {}
for strategy in STRATEGIES:
    curve = [batch[f"{strategy}/d{d}"]["z"] for d in STEPS]
    fits[strategy] = fit_global_depolarizing(STEPS, curve, ideal)
    print(f"{strategy:>8s} <Z2>:", [round(v, 3) for v in curve])

depth = STEPS[-1]
print("\nmitigation overhead at d =", depth)
for strategy, fit in fits.items():
    print(f"  {strategy:>8s}: {fit.overhead(depth):9.2f}  (lambda = {fit.rate:.4f})")
reference = fits["none"].overhead(depth)
for strategy in ("ca_dd", "ca_ec"):
    print(
        f"  {strategy} reduces overhead by "
        f"{reference / fits[strategy].overhead(depth):.2f}x over none"
    )
