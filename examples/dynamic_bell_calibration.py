"""Error compensation for dynamic circuits (paper Fig. 9).

Prepares a Bell state between two data qubits via mid-circuit measurement
of an auxiliary qubit plus classical feedforward. During the long readout
window the data qubits pick up large coherent ZZ / Stark-Z phases; CA-EC
cancels them — but the compensation angle depends on the *assumed* timing.
Sweeping the compiler's feedforward-time estimate traces a calibration
curve that peaks at the true hardware value. The bare baseline plus the
whole sweep execute as one batched, multi-threaded runtime call.

Run:  python examples/dynamic_bell_calibration.py
"""

import numpy as np

from repro.apps import bell_dynamic_circuit, bell_target_bits, compensated_circuit, dynamic_device
from repro.runtime import Task, run
from repro.sim import SimOptions

TRUE_FEEDFORWARD = 1150.0  # ns — what the hardware actually takes

device = dynamic_device(feedforward_duration=TRUE_FEEDFORWARD)
options = SimOptions(shots=150, seed=11)
target = {"fidelity": bell_target_bits()}
estimates = [float(e) for e in np.linspace(0.0, 3000.0, 13)]

tasks = [Task(bell_dynamic_circuit(), bit_targets=target, name="bare")]
tasks += [
    Task(
        compensated_circuit(device, feedforward_estimate=estimate),
        bit_targets=target,
        name=f"est{i}",
    )
    for i, estimate in enumerate(estimates)
]
batch = run(tasks, device, options=options, workers=4)

bare = batch["bare"]
print(f"bare Bell fidelity: {bare['fidelity']:.3f}")
print(f"true feedforward time: {TRUE_FEEDFORWARD:.0f} ns\n")

print("tau_estimate (ns)   Bell fidelity")
best = (0.0, 0.0)
for i, estimate in enumerate(estimates):
    fidelity = batch[f"est{i}"]["fidelity"]
    if fidelity > best[1]:
        best = (estimate, fidelity)
    print(f"{estimate:14.0f}      {fidelity:.3f}")

print(
    f"\npeak fidelity {best[1]:.3f} at tau = {best[0]:.0f} ns "
    f"({best[1] / max(bare['fidelity'], 1e-9):.1f}x over bare)"
)
print("The peak calibrates the feedforward time, as in the paper's Fig. 9c.")
