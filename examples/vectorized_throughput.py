"""Vectorized backend: batched throughput with bit-for-bit reproducibility.

Runs the same seeded Ramsey workload (paper Fig. 3, case I) on the scalar
``trajectory`` backend and the batched ``vectorized`` backend, then shows
the two properties that make the vectorized engine safe to use everywhere:

1. the results are bit-for-bit identical — not merely statistically
   compatible — because both engines consume the same noise draws from the
   same per-task RNG streams in the same order;
2. sharding the shot axis (any ``chunk_shots``, any ``workers``) changes
   wall time and peak memory, never values.

Run:  python examples/vectorized_throughput.py
"""

import time

from repro import SimOptions, VectorizedBackend, linear_chain, run, synthetic_device
from repro.benchmarking.ramsey import CASE_I, ramsey_task

device = synthetic_device(linear_chain(CASE_I.num_qubits), name="demo", seed=1003)
task = ramsey_task(CASE_I, device, depth=16, strategy="staggered_dd", seed=1)
options = SimOptions(shots=1024)

# --- 1. same task, two engines, same bits -----------------------------------
results = {}
for backend in ("trajectory", "vectorized"):
    start = time.perf_counter()
    results[backend] = run(task, device, options=options, backend=backend)[0]
    elapsed = time.perf_counter() - start
    print(f"{backend:>10s}: f = {results[backend]['f']!r}  ({elapsed:.2f} s, "
          f"{options.shots / elapsed:,.0f} shots/s)")
assert results["trajectory"].values == results["vectorized"].values
print("bit-for-bit identical: True")

# --- 2. sharding is invisible ------------------------------------------------
reference = results["vectorized"]
for chunk_shots, workers in ((64, 1), (128, 4), (None, 2)):
    sharded = run(
        task,
        device,
        options=options,
        backend=VectorizedBackend(chunk_shots=chunk_shots),
        workers=workers,
    )[0]
    assert sharded.values == reference.values
    print(f"chunk_shots={str(chunk_shots):>5s} workers={workers}: same bits")
