"""Fig. 9 reproduction bench: dynamic-circuit Bell preparation.

Paper reference: bare fidelity 9.5% -> 78.1% with CA-EC (>8x), peaking at
the true feedforward time of 1.15 us.
"""

import numpy as np
import pytest

from repro.experiments import run_fig9


def test_feedforward_calibration_sweep(benchmark, once):
    estimates = list(np.linspace(0.0, 3000.0, 11))
    result = once(benchmark, run_fig9, estimates=estimates, shots=140)
    print()
    for line in result.rows():
        print(line)
    # Shape checks mirroring the paper:
    assert result.bare_fidelity < 0.2          # bare collapses (paper: 9.5%)
    assert result.peak_fidelity > 0.75         # compensated (paper: 78.1%)
    assert result.improvement > 4.0            # paper: > 8x
    # The sweep peaks at the true feedforward time (paper: 1.15 us).
    assert abs(result.best_estimate - result.true_feedforward) <= 300.0


def test_conditional_variant_matches(benchmark, once):
    """The Fig. 9b conditional-branch construction performs like the generic
    CA-EC compilation at the true feedforward time."""
    result = once(benchmark, run_fig9, estimates=[1150.0], shots=140)
    print()
    print(f"generic CA-EC @ true timing : {result.fidelities[0]:.3f}")
    print(f"conditional corrections     : {result.conditional_fidelity:.3f}")
    assert result.conditional_fidelity == pytest.approx(
        result.fidelities[0], abs=0.08
    )
