"""Fig. 8 reproduction bench: layer fidelity of a sparse 10-qubit layer.

Paper reference: LF 0.648 (bare) -> 0.743 (DD) -> 0.822 (CA-DD) -> 0.881
(CA-EC); gamma = LF**-2: 2.38 -> 1.81 -> 1.48 -> 1.29; ~7x / ~30x overhead
reduction over 10 layers. The synthetic device reproduces the ordering and
the multi-x reductions.
"""

from repro.experiments import run_fig8


def test_layer_fidelity_ladder(benchmark, once):
    result = once(
        benchmark, run_fig8, depths=(1, 2, 4, 6), samples=6, shots=12
    )
    print()
    for line in result.rows():
        print(line)
    table = {name: lf for name, lf, _gamma in result.table()}
    # The paper's ladder: bare < DD < CA-DD < CA-EC for this layer (the
    # ctrl-ctrl ZZ is invisible to DD, so CA-EC wins).
    assert table["none"] < table["ca_dd"]
    assert table["dd"] < table["ca_dd"]
    assert table["ca_dd"] < table["ca_ec"] + 0.02
    # Multi-x overhead reduction for a 10-layer circuit.
    assert result.reduction("dd", "ca_ec", 10) > 2.0


def test_partition_structure(benchmark, once):
    from repro.benchmarking import partition_layer
    from repro.experiments import fig8_device, fig8_layer

    device = fig8_device()
    spec = fig8_layer()
    partitions = once(benchmark, partition_layer, spec, device)
    print()
    print("partitions:", partitions)
    pair_count = sum(1 for p in partitions if len(p) == 2)
    assert pair_count >= 4  # 3 gate pairs + >=1 idle pair
    covered = sorted(q for p in partitions for q in p)
    assert covered == list(range(10))
