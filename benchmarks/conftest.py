"""Benchmark configuration.

Each bench regenerates one of the paper's tables or figures with
reduced-but-representative statistics and prints the rows/series it
produces, so running ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction harness. Timing uses a single round (the experiments are
minutes-scale aggregates, not microbenchmarks).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
