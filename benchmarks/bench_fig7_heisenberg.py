"""Fig. 7 reproduction bench: 12-qubit Heisenberg ring + mitigation overhead.

Paper reference: without suppression the features of <Z2> wash out; CA-EC
and CA-DD recover them, while context-unaware DD does not noticeably help.
The overhead of global-depolarizing mitigation shrinks accordingly (paper:
>3.5x over none, >2.75x over DD; our simulator reproduces the ordering and
multi-x reductions, not the absolute factors).
"""

import numpy as np

from repro.apps.heisenberg import equivalent_cnot_count, equivalent_cnot_depth
from repro.experiments import run_fig7

STEPS = (0, 1, 2, 3, 4, 5)


def test_heisenberg_dynamics_and_overhead(benchmark, once):
    result = once(
        benchmark, run_fig7,
        num_qubits=12, steps=STEPS, shots=14, realizations=10,
    )
    print()
    print(
        f"circuit scale: {equivalent_cnot_count(12, 5)} CNOTs, "
        f"CNOT depth {equivalent_cnot_depth(5)} (paper: 180 / 45)"
    )
    for line in result.rows():
        print(line)

    ideal = np.asarray(result.ideal)

    def total_error(name):
        return float(np.sum(np.abs(np.asarray(result.curves[name]) - ideal)))

    errors = {name: total_error(name) for name in result.curves}
    print("total |error| per strategy:", {k: round(v, 3) for k, v in errors.items()})

    # Shape checks: the context-aware methods beat both baselines, and
    # context-unaware DD does not noticeably improve over none.
    assert errors["ca_ec"] < errors["none"]
    assert errors["ca_ec"] < errors["dd"]
    assert errors["ca_dd"] < errors["dd"]

    depth = STEPS[-1]
    red_ec = result.reduction_over("none", "ca_ec", depth)
    red_dd_ref = result.reduction_over("dd", "ca_ec", depth)
    print(f"overhead reduction ca_ec vs none: {red_ec:.2f}x, vs dd: {red_dd_ref:.2f}x")
    assert red_ec > 1.0
    assert red_dd_ref > 1.0
