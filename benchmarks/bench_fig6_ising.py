"""Fig. 6 reproduction bench: Floquet Ising boundary correlator.

Paper reference: the twirl-only signal loses contrast with depth; CA-EC and
CA-DD recover the alternating +-1 boundary correlation.
"""

import numpy as np

from repro.experiments import run_fig6


def test_ising_boundary_correlator(benchmark, once):
    result = once(
        benchmark, run_fig6,
        steps=(0, 1, 2, 3, 4, 5), shots=20, realizations=6,
    )
    print()
    for line in result.rows():
        print(line)

    ideal = np.asarray(result.ideal)

    def total_error(name):
        return float(np.sum(np.abs(np.asarray(result.curves[name]) - ideal)))

    e_none = total_error("none")
    e_ec = total_error("ca_ec")
    e_dd = total_error("ca_dd")
    print(f"total |error|: none={e_none:.3f} ca_ec={e_ec:.3f} ca_dd={e_dd:.3f}")
    # Shape: both context-aware methods beat the twirl-only baseline.
    assert e_ec < e_none
    assert e_dd < e_none
