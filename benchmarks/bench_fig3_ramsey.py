"""Fig. 3 reproduction bench: Ramsey characterization of the four contexts.

Paper reference (Fig. 3c-f): the noisy and aligned-DD curves oscillate
deeply; staggered DD and error compensation stay near 1; EC + aligned DD
matches staggered DD; in case IV only EC helps.
"""

from repro.experiments import run_fig3

DEPTHS = (0, 4, 8, 12, 16, 20)


def _run(cases):
    return run_fig3(depths=DEPTHS, shots=32, realizations=6, cases=cases)


def test_case1_idle_pair(benchmark, once):
    result = once(benchmark, _run, ("case1_idle_pair",))
    print()
    for line in result.rows():
        print(line)
    curves = result.curves["case1_idle_pair"]
    worst = DEPTHS.index(12)
    # Shape checks: staggered DD and EC hold up where bare/aligned collapse.
    assert curves["staggered_dd"][worst] > curves["none"][worst]
    assert curves["ca_ec"][worst] > curves["none"][worst]
    assert min(curves["ec+aligned_dd"]) > 0.8


def test_case2_control_spectator(benchmark, once):
    result = once(benchmark, _run, ("case2_control_spectator",))
    print()
    for line in result.rows():
        print(line)
    curves = result.curves["case2_control_spectator"]
    assert curves["ca_dd"][-1] > curves["none"][-1]
    assert curves["ca_ec"][-1] > curves["none"][-1]


def test_case3_target_spectator(benchmark, once):
    result = once(benchmark, _run, ("case3_target_spectator",))
    print()
    for line in result.rows():
        print(line)
    curves = result.curves["case3_target_spectator"]
    assert curves["ca_dd"][-1] > curves["none"][-1]
    assert curves["ca_ec"][-1] > curves["none"][-1]


def test_case4_adjacent_controls(benchmark, once):
    result = once(benchmark, _run, ("case4_adjacent_controls",))
    print()
    for line in result.rows():
        print(line)
    curves = result.curves["case4_adjacent_controls"]
    assert sum(curves["ca_ec"]) > sum(curves["none"])
