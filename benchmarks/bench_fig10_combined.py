"""Fig. 10 reproduction bench: combined CA-EC + CA-DD strategy.

Paper reference: on a Floquet circuit containing both an idle pair and
adjacent ECR controls, the combined strategy outperforms its constituents.
"""


from repro.experiments import run_fig10


def test_combined_beats_constituents(benchmark, once):
    result = once(
        benchmark, run_fig10,
        steps=(0, 1, 2, 3, 4, 5), shots=24, realizations=10,
    )
    print()
    for line in result.rows():
        print(line)
    means = {name: result.mean_fidelity(name) for name in result.curves}
    # Shape: both constituents beat the baseline; the combination is at
    # least as good as the better constituent (within sampling noise).
    assert means["ca_dd"] > means["none"]
    assert means["ca_ec"] > means["none"]
    best_single = max(means["ca_dd"], means["ca_ec"])
    assert means["ca_ec+dd"] > best_single - 0.02
