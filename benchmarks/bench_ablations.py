"""Ablation benches for the design choices called out in DESIGN.md.

* greedy low-color preference vs naive max-color assignment (pulse counts);
* pulse-stretched Rzz compensation vs a 2-CNOT synthesis (polarization
  retained after many compensations);
* simulator kernel throughput (moments/second on a 12-qubit state), the
  budget everything above runs on.
"""

import numpy as np

from repro.circuits import Circuit, gates as g, schedule
from repro.compiler import apply_ca_dd, dd_pulse_count
from repro.compiler.walsh import pulse_count
from repro.device import linear_chain, ring, synthetic_device
from repro.sim import SimOptions, expectation_values


def test_coloring_minimizes_pulses(benchmark, once):
    """CA-DD's greedy coloring uses near-minimal pulses on a bipartite chain."""
    device = synthetic_device(linear_chain(8), seed=61)
    circ = Circuit(8)
    circ.append_moment([])
    for q in range(8):
        circ.delay(500.0, q, new_moment=(q == 0))
    circ.append_moment([])

    def run():
        dressed, report = apply_ca_dd(circ, device)
        return dressed, report

    dressed, report = once(benchmark, run)
    used = dd_pulse_count(dressed)
    colors = {report.colorings[1].colors[q] for q in range(8)}
    worst_case = 8 * pulse_count(7)  # everyone on the deepest Walsh row
    print()
    print(f"pulses used: {used} (worst-case uniform w7: {worst_case})")
    print(f"colors used: {sorted(colors)}")
    assert used == 16  # two colors x two pulses x eight qubits
    assert used < worst_case / 3


def test_stretched_rzz_vs_two_cnot_cost(benchmark, once):
    """Explicit compensation via pulse stretching retains far more
    polarization than synthesizing each Rzz from two CNOTs."""
    device = synthetic_device(linear_chain(2), seed=62)
    theta = 0.1
    opts = SimOptions(
        shots=400, seed=5, coherent=False, stochastic=False,
        dephasing=False, amplitude_damping=False,
    )

    def build(use_stretched):
        circ = Circuit(2)
        circ.h(0)
        for _ in range(40):
            if use_stretched:
                circ.append(g.stretched_rzz(theta), [0, 1], new_moment=True)
            else:
                # 2-CNOT synthesis: CX . Rz . CX.
                circ.cx(0, 1, new_moment=True)
                circ.rz(theta, 1, new_moment=True)
                circ.cx(0, 1, new_moment=True)
        return circ

    def run():
        stretched = expectation_values(
            build(True), device, {"x": "IX"}, opts
        )["x"]
        synthesized = expectation_values(
            build(False), device, {"x": "IX"}, opts
        )["x"]
        return stretched, synthesized

    stretched, synthesized = once(benchmark, run)
    print()
    print(f"polarization after 40 compensations: stretched={stretched:.3f} "
          f"2-CNOT={synthesized:.3f}")
    assert abs(stretched) > abs(synthesized) + 0.1


def test_simulator_kernel_throughput(benchmark):
    """Trajectories/second on the 12-qubit Heisenberg-scale workload."""
    device = synthetic_device(ring(12), seed=63)
    circ = Circuit(12)
    circ.append_moment([])
    for start in range(0, 12, 2):
        circ.can(0.3, 0.3, 0.3, start, start + 1, new_moment=(start == 0))
    circ.append_moment([])
    scheduled = schedule(circ, device.durations)
    opts = SimOptions(shots=8, seed=1)

    from repro.pauli import Pauli
    from repro.runtime import get_backend

    observable = {"z": Pauli.from_label("I" * 11 + "Z")}
    # Build the engine once so the benchmark times the trajectory kernel,
    # not scheduling + coherent accumulation setup.
    engine = get_backend("trajectory")._make_engine(scheduled, device, opts)

    result = benchmark(lambda: engine.expectations(observable, shots=8))
    assert -1.0 <= result["z"] <= 1.0


def test_orientation_removes_case_iv(benchmark, once):
    """Ablation of the context-avoidance pass (paper's Conclusion):
    re-orienting ECR gates removes the ctrl-ctrl context entirely, so even
    plain CA-DD matches CA-EC on a layer that otherwise needs EC."""
    from repro.benchmarking import CASE_IV, build_case_circuit
    from repro.compiler import compile_circuit
    from repro.sim import bit_probabilities
    from repro.utils.rng import as_generator

    device = synthetic_device(linear_chain(4), seed=64)
    depth = 12
    opts = SimOptions(shots=12)

    def fidelity(strategy, orient):
        rng = as_generator(9)
        values = []
        for _ in range(8):
            circ = build_case_circuit(CASE_IV, depth)
            compiled = compile_circuit(circ, device, strategy, seed=rng, orient=orient)
            sub_seed = int(rng.integers(0, 2**63 - 1))
            res = bit_probabilities(
                compiled, device, {"f": {1: 0, 2: 0}}, opts.with_seed(sub_seed)
            )
            values.append(res.values["f"])
        return float(np.mean(values))

    def run():
        return (
            fidelity("none", False),
            fidelity("none", True),
            fidelity("ca_dd", True),
        )

    bare, oriented, oriented_dd = once(benchmark, run)
    print()
    print(f"case IV @ depth {depth}: bare={bare:.3f} "
          f"oriented={oriented:.3f} oriented+ca_dd={oriented_dd:.3f}")
    # Orientation alone removes the ctrl-ctrl ZZ context.
    assert oriented > bare
