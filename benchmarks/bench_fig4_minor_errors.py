"""Fig. 4 reproduction bench: Stark shift, charge-parity beating, NNN ZZ.

Paper reference: (a) ~20 kHz Stark shift of the spectator fringe away from
the always-on line; (b) beating at the parity splitting; (c) progressive
suppression going up the Walsh hierarchy.
"""

import numpy as np
import pytest

from repro.experiments import run_nnn_walsh, run_parity, run_stark
from repro.utils.fitting import dominant_frequency


def test_stark_shift(benchmark, once):
    result = once(
        benchmark, run_stark,
        times=tuple(np.linspace(500.0, 60000.0, 100)), shots=16,
    )
    print()
    print(f"driven fringe peak : {result.driven_frequency / 1e-6:8.1f} kHz")
    print(f"always-on reference: {result.always_on_reference / 1e-6:8.1f} kHz")
    print(f"measured shift     : {result.stark_shift / 1e-6:8.1f} kHz")
    print(f"calibrated shift   : {result.calibrated_stark / 1e-6:8.1f} kHz")
    # Shape: the displacement matches the device's Stark calibration.
    assert result.stark_shift == np.float64(result.stark_shift)
    assert abs(result.stark_shift - result.calibrated_stark) < 10e-6


def test_parity_beating(benchmark, once):
    applied = 250.0  # kHz
    delta = 40.0  # kHz
    times = tuple(np.linspace(0.0, 50000.0, 200))
    data = once(benchmark, run_parity, applied_khz=applied, delta_khz=delta,
                times=times, shots=96)
    signal = np.asarray(data["signal"])
    print()
    print("fringe  min/max:", round(signal.min(), 3), round(signal.max(), 3))
    # Averaging over the random parity sign splits the fringe into sidebands
    # at (applied +- delta): the FFT peak sits a beat away from the applied
    # tone, never on it (paper eq. 6 / Fig. 4b).
    peak = dominant_frequency(data["times"], signal)
    offset_khz = abs(peak - applied * 1e-6) / 1e-6
    print(f"peak: {peak / 1e-6:.1f} kHz (applied {applied}, delta {delta})")
    assert offset_khz == pytest.approx(delta, abs=25.0)
    # The beat envelope forces a deep minimum: the rectified signal dips
    # well below 1 somewhere mid-record.
    envelope_min = np.min(np.abs(signal[:180]).reshape(30, 6).max(axis=1))
    print("envelope dip:", round(float(envelope_min), 3))
    assert envelope_min < 0.75


def test_nnn_walsh_hierarchy(benchmark, once):
    result = once(
        benchmark, run_nnn_walsh, depths=(0, 8, 16, 24), shots=32
    )
    print()
    for name, curve in result.curves.items():
        print(f"  {name:>10s}: " + " ".join(f"{v:.3f}" for v in curve))
    deep = -1
    # Walsh (3 colors) beats 2-color staggered on the collision triple,
    # which in turn beats aligned and none.
    assert result.curves["walsh"][deep] > result.curves["staggered"][deep]
    assert result.curves["staggered"][deep] > result.curves["none"][deep]
    assert result.curves["staggered"][deep] > result.curves["aligned"][deep]
