"""Table I reproduction bench: the error taxonomy.

Paper reference: each error source is suppressible by the techniques the
table marks with a check, and immune to the ones marked with a cross.
"""

from repro.experiments import run_table1


def test_error_taxonomy(benchmark, once):
    result = once(benchmark, run_table1, depth=8, shots=48)
    print()
    for line in result.formatted():
        print(line)
    rows = {r.error: r for r in result.rows}

    idle = rows["Z+ZZ (idle)"]
    assert idle.residual_ec < 0.2 * idle.residual_none
    assert idle.residual_dd < 0.2 * idle.residual_none

    active = rows["ZZ (active)"]
    assert active.residual_ec < active.residual_none

    stark = rows["Stark Z"]
    assert stark.residual_ec < 0.2 * stark.residual_none
    assert stark.residual_dd < 0.2 * stark.residual_none

    slow = rows["Slow Z"]
    assert slow.residual_dd < slow.residual_ec  # EC cannot fix slow Z

    nnn = rows["NNN ZZ"]
    nnn2 = rows["NNN ZZ(2col)"]
    assert nnn.residual_dd < nnn.residual_none  # Walsh suppresses it
    assert nnn.residual_dd < nnn2.residual_dd + 0.05  # 2 colors are not enough
