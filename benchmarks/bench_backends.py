"""Backend throughput benchmark: scalar trajectory vs vectorized batches.

Times the same seeded workloads on ``backend="trajectory"`` and
``backend="vectorized"`` and writes ``BENCH_backends.json``:

* the fig. 3 Ramsey workload (case I, staggered DD) at 1024 shots — the
  acceptance workload for the vectorized engine's >=3x throughput target;
* layered CX chains across qubit counts and shot counts, showing how the
  speedup scales with state size and batch size.

Every run also cross-checks that the two backends return bit-identical
values, so the benchmark doubles as an end-to-end parity check.

Usage::

    python benchmarks/bench_backends.py            # full sweep
    python benchmarks/bench_backends.py --quick    # CI smoke (seconds)
    python benchmarks/bench_backends.py --output out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro import Circuit, SimOptions, Task, run
from repro.benchmarking.ramsey import CASE_I, ramsey_task
from repro.device.calibration import synthetic_device
from repro.device.topology import linear_chain

BACKENDS = ("trajectory", "vectorized")


def layered_chain(num_qubits: int, layers: int = 4) -> Circuit:
    circ = Circuit(num_qubits)
    for q in range(num_qubits):
        circ.h(q, new_moment=(q == 0))
    for _ in range(layers):
        for start in (0, 1):
            circ.append_moment([])
            for a in range(start, num_qubits - 1, 2):
                circ.cx(a, a + 1, new_moment=(a == start))
            circ.append_moment([])
    return circ


def time_backends(task: Task, device, options: SimOptions) -> Dict:
    timings: Dict[str, float] = {}
    values: Dict[str, Dict[str, float]] = {}
    for backend in BACKENDS:
        start = time.perf_counter()
        result = run(task, device, options=options, backend=backend)[0]
        timings[backend] = time.perf_counter() - start
        values[backend] = dict(result.values)
    shots = (task.shots or options.shots) * max(task.realizations, 1)
    return {
        "shots": shots,
        "seconds": {b: round(timings[b], 4) for b in BACKENDS},
        "shots_per_second": {
            b: round(shots / timings[b], 1) for b in BACKENDS
        },
        "speedup": round(timings["trajectory"] / timings["vectorized"], 2),
        "bit_identical": values["trajectory"] == values["vectorized"],
    }


def bench_fig3_ramsey(shots: int) -> Dict:
    device = synthetic_device(
        linear_chain(CASE_I.num_qubits), name="bench_fig3", seed=1003
    )
    task = ramsey_task(CASE_I, device, depth=16, strategy="staggered_dd", seed=1)
    entry = {
        "workload": "fig3_ramsey_case1",
        "num_qubits": CASE_I.num_qubits,
        "depth": 16,
    }
    entry.update(time_backends(task, device, SimOptions(shots=shots)))
    return entry


def bench_layered(num_qubits: int, shots: int) -> Dict:
    device = synthetic_device(
        linear_chain(num_qubits), name=f"bench_chain{num_qubits}", seed=500 + num_qubits
    )
    observables = {"z0": "I" * (num_qubits - 1) + "Z"}
    task = Task(layered_chain(num_qubits), observables=observables, seed=7)
    entry = {"workload": "layered_chain", "num_qubits": num_qubits}
    entry.update(time_backends(task, device, SimOptions(shots=shots)))
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweep for CI smoke runs"
    )
    parser.add_argument(
        "--output", default="BENCH_backends.json", help="where to write the JSON"
    )
    args = parser.parse_args(argv)

    ramsey_shots = 1024
    sweep = (
        [(2, 256), (4, 256)]
        if args.quick
        else [(2, 1024), (4, 1024), (6, 1024), (8, 512), (10, 256)]
    )

    results: List[Dict] = []
    entry = bench_fig3_ramsey(ramsey_shots)
    results.append(entry)
    print(
        f"{entry['workload']:>22s} n={entry['num_qubits']} shots={entry['shots']}: "
        f"{entry['speedup']}x ({entry['shots_per_second']['vectorized']:,.0f} vs "
        f"{entry['shots_per_second']['trajectory']:,.0f} shots/s, "
        f"bit_identical={entry['bit_identical']})"
    )
    for num_qubits, shots in sweep:
        entry = bench_layered(num_qubits, shots)
        results.append(entry)
        print(
            f"{entry['workload']:>22s} n={num_qubits} shots={entry['shots']}: "
            f"{entry['speedup']}x ({entry['shots_per_second']['vectorized']:,.0f} vs "
            f"{entry['shots_per_second']['trajectory']:,.0f} shots/s, "
            f"bit_identical={entry['bit_identical']})"
        )

    payload = {
        "benchmark": "trajectory-vs-vectorized backend throughput",
        "quick": args.quick,
        "results": results,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not all(r["bit_identical"] for r in results):
        print("ERROR: backends disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
