"""Backend throughput benchmark: scalar trajectory vs vectorized batches.

Times the same seeded workloads on ``backend="trajectory"`` and
``backend="vectorized"`` and writes ``BENCH_backends.json``:

* the fig. 3 Ramsey workload (case I, staggered DD) at 1024 shots — the
  acceptance workload for the vectorized engine's >=3x throughput target;
* layered CX chains across qubit counts and shot counts, showing how the
  speedup scales with state size and batch size;
* a cold-vs-warm plan-cache sweep (the same deterministic-pipeline grid
  compiled twice) measuring the compile-stage speedup of the
  content-addressed cache — the plan/execute split's acceptance workload;
* a cold-disk vs warm-disk sweep: the same grid compiled with the
  persistent plan store, clearing the in-memory layer between runs so the
  warm pass measures exactly what a *new process* (a second CLI
  invocation) gets from disk;
* a thread-vs-process compile fan-out comparison on a grid of distinct
  circuits (informational: the ratio is machine-dependent, so it is
  recorded but not regression-gated);
* a distributed-vs-in-process scaling entry: a realization-heavy twirled
  batch sharded across ``backend="distributed"`` worker processes,
  cross-checked bit-identical against both in-process engines
  (informational ratios, gated bit-identity);
* two real ``python -m repro.experiments fig3 --quick`` subprocess
  invocations sharing a ``--plan-cache`` directory — the end-to-end
  warm-start scenario, cross-checked bit-identical.

Every run also cross-checks bit-identity (trajectory vs vectorized, cold
vs warm cache, thread vs process compile), so the benchmark doubles as an
end-to-end parity check. ``--check-against BASELINE`` compares the
measured speedups to a previously committed JSON and fails on a >25%
regression — speedups are ratios of timings on the same machine, so the
gate is robust to absolute machine speed. Entries without a ``speedup``
field are informational only and never gated.

Usage::

    python benchmarks/bench_backends.py            # full sweep
    python benchmarks/bench_backends.py --quick    # CI smoke (seconds)
    python benchmarks/bench_backends.py --quick \
        --output BENCH_current.json --check-against BENCH_backends.json

The baseline is read before the output is written, so pointing both at the
same file compares against the previous run's content — but use a separate
--output to keep the committed baseline untouched.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

import repro
from repro import Circuit, SimOptions, Sweep, Task, compile_tasks, configure, run
from repro.benchmarking.ramsey import CASE_I, ramsey_task
from repro.device.calibration import synthetic_device
from repro.device.topology import linear_chain
from repro.runtime import PLAN_CACHE, DistributedBackend

BACKENDS = ("trajectory", "vectorized")

#: Max allowed speedup regression vs the committed baseline (25%).
REGRESSION_TOLERANCE = 0.25


def layered_chain(num_qubits: int, layers: int = 4) -> Circuit:
    circ = Circuit(num_qubits)
    for q in range(num_qubits):
        circ.h(q, new_moment=(q == 0))
    for _ in range(layers):
        for start in (0, 1):
            circ.append_moment([])
            for a in range(start, num_qubits - 1, 2):
                circ.cx(a, a + 1, new_moment=(a == start))
            circ.append_moment([])
    return circ


def time_backends(task: Task, device, options: SimOptions, repeats: int = 2) -> Dict:
    # Best-of-N timing: the gated quantity is a speedup ratio, so per-run
    # scheduler noise must stay well under the regression tolerance.
    timings: Dict[str, float] = {b: float("inf") for b in BACKENDS}
    values: Dict[str, Dict[str, float]] = {}
    for _ in range(repeats):
        for backend in BACKENDS:
            # Same cache temperature for both engines: a run would
            # otherwise warm the plan cache for the next and bias the ratio.
            PLAN_CACHE.clear()
            start = time.perf_counter()
            result = run(task, device, options=options, backend=backend)[0]
            timings[backend] = min(
                timings[backend], time.perf_counter() - start
            )
            values[backend] = dict(result.values)
    shots = (task.shots or options.shots) * max(task.realizations, 1)
    return {
        "shots": shots,
        "seconds": {b: round(timings[b], 4) for b in BACKENDS},
        "shots_per_second": {
            b: round(shots / timings[b], 1) for b in BACKENDS
        },
        "speedup": round(timings["trajectory"] / timings["vectorized"], 2),
        "bit_identical": values["trajectory"] == values["vectorized"],
    }


def bench_fig3_ramsey(shots: int) -> Dict:
    device = synthetic_device(
        linear_chain(CASE_I.num_qubits), name="bench_fig3", seed=1003
    )
    task = ramsey_task(CASE_I, device, depth=16, strategy="staggered_dd", seed=1)
    entry = {
        "workload": "fig3_ramsey_case1",
        "num_qubits": CASE_I.num_qubits,
        "depth": 16,
    }
    entry.update(time_backends(task, device, SimOptions(shots=shots)))
    return entry


def bench_layered(num_qubits: int, shots: int) -> Dict:
    device = synthetic_device(
        linear_chain(num_qubits), name=f"bench_chain{num_qubits}", seed=500 + num_qubits
    )
    observables = {"z0": "I" * (num_qubits - 1) + "Z"}
    task = Task(layered_chain(num_qubits), observables=observables, seed=7)
    entry = {"workload": "layered_chain", "num_qubits": num_qubits}
    entry.update(time_backends(task, device, SimOptions(shots=shots)))
    return entry


def _cache_sweep_batch(device, options):
    """The deterministic (strategy x depth) grid every cache bench reuses."""
    return Sweep(
        {
            "strategy": ("dd", "staggered_dd", "ca_ec", "ca_ec+dd"),
            "depth": (8, 16, 24, 32, 40),
        },
        lambda strategy, depth: ramsey_task(
            CASE_I, device, depth, strategy, twirl=False, seed=1
        ),
        name="bench_cache",
    ).run(options=options, backend="vectorized")


def bench_compile_cache() -> Dict:
    """Cold-vs-warm compile of a repeated deterministic-pipeline sweep.

    The same (strategy x depth) Ramsey grid is compiled twice; the second
    pass hits the content-addressed plan cache for every point, so the
    compile-stage wall time collapses while every value stays bit-equal.
    The workload is identical in quick and full modes so the committed
    baseline's speedup is comparable from CI.
    """
    device = synthetic_device(
        linear_chain(CASE_I.num_qubits), name="bench_cache", seed=1007
    )
    options = SimOptions(shots=8)

    def sweep_batch():
        return _cache_sweep_batch(device, options)

    values = lambda swept: [dict(r.values) for _c, r in swept]  # noqa: E731
    # Best-of-3 cold/warm cycles: warm compiles are milliseconds, so a
    # single sample would be far noisier than the CI regression tolerance.
    cold_s = warm_s = float("inf")
    bit_identical = True
    for _ in range(3):
        PLAN_CACHE.clear()
        cold = sweep_batch()
        assert PLAN_CACHE.misses > 0 and PLAN_CACHE.hits == 0
        warm = sweep_batch()
        cold_s = min(cold_s, cold.compile_time)
        warm_s = min(warm_s, warm.compile_time)
        bit_identical = bit_identical and values(cold) == values(warm)
    return {
        "workload": "compile_cache",
        "points": len(cold),
        "compile_seconds": {"cold": round(cold_s, 4), "warm": round(warm_s, 4)},
        "speedup": round(cold_s / warm_s, 2),
        "cache": dict(PLAN_CACHE.stats),
        "bit_identical": bit_identical,
    }


def bench_disk_cache() -> Dict:
    """Cold-disk vs warm-disk compile across a simulated process boundary.

    Same grid as ``compile_cache``, but with the persistent store attached
    and the in-memory layer cleared between the two passes — exactly what a
    new process (a second CLI invocation of the same figure) sees: memory
    cold, disk warm. The warm compile stage is pure store reads.
    """
    device = synthetic_device(
        linear_chain(CASE_I.num_qubits), name="bench_cache", seed=1007
    )
    options = SimOptions(shots=8)
    values = lambda swept: [dict(r.values) for _c, r in swept]  # noqa: E731
    cold_s = warm_s = float("inf")
    bit_identical = True
    with tempfile.TemporaryDirectory() as tmpdir:
        configure(plan_cache="disk", plan_cache_dir=tmpdir)
        try:
            for _ in range(3):
                PLAN_CACHE.store.clear()
                PLAN_CACHE.clear()
                cold = _cache_sweep_batch(device, options)
                PLAN_CACHE.clear()  # "new process": memory cold, disk warm
                warm = _cache_sweep_batch(device, options)
                cold_s = min(cold_s, cold.compile_time)
                warm_s = min(warm_s, warm.compile_time)
                bit_identical = bit_identical and values(cold) == values(warm)
            stats = dict(PLAN_CACHE.stats)
        finally:
            # Restore the directory default too: leaving the deleted
            # tmpdir in process-wide config would silently re-root a later
            # configure(plan_cache="disk") at a stale path.
            configure(plan_cache="memory", plan_cache_dir=None)
    return {
        "workload": "disk_cache",
        "points": len(cold),
        "compile_seconds": {
            "cold_disk": round(cold_s, 4),
            "warm_disk": round(warm_s, 4),
        },
        "speedup": round(cold_s / warm_s, 2),
        "cache": stats,
        "bit_identical": bit_identical,
    }


def bench_compile_modes(workers: int = 2) -> Dict:
    """Thread-vs-process compile fan-out over distinct circuits.

    Caching is disabled so every point really compiles; the grid uses
    distinct depths so there is nothing to share. The ratio is recorded as
    ``process_vs_thread`` (not ``speedup``): it depends on core count and
    fork cost, so it is informational, never regression-gated. Bit-identity
    of the executed plans IS gated — that is the correctness claim.
    """
    device = synthetic_device(
        linear_chain(CASE_I.num_qubits), name="bench_modes", seed=1009
    )
    options = SimOptions(shots=4)

    def tasks():
        return [
            ramsey_task(CASE_I, device, depth, strategy, twirl=False, seed=1)
            for strategy in ("dd", "staggered_dd", "ca_ec", "ca_ec+dd")
            for depth in (8, 16, 24, 32, 40)
        ]

    timings = {"thread": float("inf"), "process": float("inf")}
    plans_by_mode = {}
    for _ in range(2):
        for mode in ("thread", "process"):
            start = time.perf_counter()
            plans = compile_tasks(
                tasks(), options=options, workers=workers, cache=None, mode=mode
            )
            timings[mode] = min(timings[mode], time.perf_counter() - start)
            plans_by_mode[mode] = plans
    results = {
        mode: [dict(r.values) for r in run(plans, backend="vectorized")]
        for mode, plans in plans_by_mode.items()
    }
    return {
        "workload": "compile_modes",
        "points": len(plans_by_mode["thread"]),
        "workers": workers,
        "compile_seconds": {m: round(t, 4) for m, t in timings.items()},
        "process_vs_thread": round(timings["thread"] / timings["process"], 2),
        "bit_identical": results["thread"] == results["process"],
    }


def bench_distributed(workers: int = 2) -> Dict:
    """Distributed-vs-in-process scaling on a realization-heavy batch.

    The workload is the distributed backend's sweet spot: many twirl
    realizations per task, each an independent seeded simulation, sharded
    across ``workers`` processes. The ratios are machine-dependent (core
    count, fork cost), so they are recorded as ``dist_vs_trajectory`` /
    ``dist_vs_vectorized`` and never regression-gated; bit-identity across
    all three engines IS gated — that is the correctness claim.
    """
    device = synthetic_device(
        linear_chain(CASE_I.num_qubits), name="bench_dist", seed=1011
    )
    options = SimOptions(shots=48)

    def tasks():
        return [
            ramsey_task(
                CASE_I, device, depth, "ca_ec+dd", twirl=True,
                realizations=8, seed=depth,
            )
            for depth in (8, 16, 24)
        ]

    engines = {
        "trajectory": "trajectory",
        "vectorized": "vectorized",
        "distributed": DistributedBackend(dist_workers=workers),
    }
    timings = {name: float("inf") for name in engines}
    values: Dict[str, List[Dict[str, float]]] = {}
    for _ in range(2):
        for name, engine in engines.items():
            PLAN_CACHE.clear()
            start = time.perf_counter()
            batch = run(tasks(), device, options=options, backend=engine)
            timings[name] = min(timings[name], time.perf_counter() - start)
            values[name] = [dict(r.values) for r in batch]
    return {
        "workload": "distributed_scaling",
        "tasks": 3,
        "realizations_per_task": 8,
        "dist_workers": workers,
        # Ratios only mean something relative to the cores available:
        # on a 1-CPU runner the best possible dist/traj is ~1.0x minus
        # transport overhead.
        "cpus": os.cpu_count(),
        "seconds": {name: round(t, 4) for name, t in timings.items()},
        "dist_vs_trajectory": round(timings["trajectory"] / timings["distributed"], 2),
        "dist_vs_vectorized": round(timings["vectorized"] / timings["distributed"], 2),
        "bit_identical": (
            values["trajectory"] == values["distributed"]
            and values["trajectory"] == values["vectorized"]
        ),
    }


def _strip_timing(obj):
    """Drop wall-time fields so two JSON payloads compare by value only."""
    if isinstance(obj, dict):
        return {k: _strip_timing(v) for k, v in obj.items() if "time" not in k}
    if isinstance(obj, list):
        return [_strip_timing(v) for v in obj]
    return obj


def _sum_compile_time(obj) -> float:
    if isinstance(obj, dict):
        return sum(
            v if k == "compile_time" else _sum_compile_time(v)
            for k, v in obj.items()
        )
    if isinstance(obj, list):
        return sum(_sum_compile_time(v) for v in obj)
    return 0.0


def bench_cli_warm_start(cycles: int = 2) -> Dict:
    """Real CLI invocations of fig3 sharing one disk plan cache.

    The end-to-end acceptance scenario: the second
    ``python -m repro.experiments fig3`` process finds the first one's
    schedules on disk and warm-starts its compile stage, with bit-identical
    results. The speedup is partial by design — fig3's twirled cases
    (II-IV) are uncacheable, so only case I's plans persist — and the
    ratio is informational, not regression-gated; each cold/warm cycle
    wipes the cache directory and the best of ``cycles`` is kept.
    """
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")

    def invoke(plans_dir: Path, out: Path) -> Dict:
        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "fig3",
                "--quick",
                "--plan-cache",
                str(plans_dir),
                "--json",
                str(out),
            ],
            check=True,
            env=env,
            stdout=subprocess.DEVNULL,
        )
        with open(out) as handle:
            return json.load(handle)

    cold_s = warm_s = float("inf")
    bit_identical = True
    with tempfile.TemporaryDirectory() as tmpdir:
        for cycle in range(cycles):
            plans_dir = Path(tmpdir) / f"plans{cycle}"  # fresh dir: cold start
            cold = invoke(plans_dir, Path(tmpdir) / "cold.json")
            warm = invoke(plans_dir, Path(tmpdir) / "warm.json")
            cold_s = min(cold_s, _sum_compile_time(cold))
            warm_s = min(warm_s, _sum_compile_time(warm))
            bit_identical = bit_identical and (
                _strip_timing(cold) == _strip_timing(warm)
            )
    return {
        "workload": "cli_warm_start",
        "figure": "fig3 --quick",
        "compile_seconds": {"cold": round(cold_s, 4), "warm": round(warm_s, 4)},
        "compile_speedup": round(cold_s / warm_s, 2),
        "bit_identical": bit_identical,
    }


def _print_entry(entry: Dict) -> None:
    if entry["workload"] in ("compile_cache", "disk_cache", "cli_warm_start"):
        seconds = entry["compile_seconds"]
        (cold_key, cold_s), (warm_key, warm_s) = seconds.items()
        ratio = entry.get("speedup", entry.get("compile_speedup"))
        print(
            f"{entry['workload']:>22s}: {ratio}x compile-stage speedup "
            f"({cold_s:.3f}s {cold_key} vs {warm_s:.3f}s {warm_key}, "
            f"bit_identical={entry['bit_identical']})"
        )
        return
    if entry["workload"] == "distributed_scaling":
        seconds = entry["seconds"]
        print(
            f"{entry['workload']:>22s} {entry['tasks']}x{entry['realizations_per_task']} "
            f"realizations, {entry['dist_workers']} workers: "
            f"dist/traj = {entry['dist_vs_trajectory']}x, "
            f"dist/vec = {entry['dist_vs_vectorized']}x "
            f"({seconds['distributed']:.3f}s dist vs {seconds['trajectory']:.3f}s traj, "
            f"bit_identical={entry['bit_identical']})"
        )
        return
    if entry["workload"] == "compile_modes":
        seconds = entry["compile_seconds"]
        print(
            f"{entry['workload']:>22s} {entry['points']} points, "
            f"{entry['workers']} workers: process/thread = "
            f"{entry['process_vs_thread']}x ({seconds['thread']:.3f}s thread vs "
            f"{seconds['process']:.3f}s process, "
            f"bit_identical={entry['bit_identical']})"
        )
        return
    print(
        f"{entry['workload']:>22s} n={entry['num_qubits']} shots={entry['shots']}: "
        f"{entry['speedup']}x ({entry['shots_per_second']['vectorized']:,.0f} vs "
        f"{entry['shots_per_second']['trajectory']:,.0f} shots/s, "
        f"bit_identical={entry['bit_identical']})"
    )


def _entry_key(entry: Dict) -> str:
    if "num_qubits" not in entry:
        return entry["workload"]
    return f"{entry['workload']}:n{entry['num_qubits']}:s{entry['shots']}"


def check_regression(results: List[Dict], baseline: Dict[str, float]) -> bool:
    """Compare speedups against the committed baseline; True when healthy.

    Only workloads present in both files are compared (the quick sweep is a
    subset of the full one), and each must retain at least
    ``1 - REGRESSION_TOLERANCE`` of its baseline speedup. Entries without a
    ``speedup`` field (machine-dependent ratios like thread-vs-process) are
    informational and skipped.
    """
    healthy = True
    compared = 0
    for entry in results:
        if "speedup" not in entry:
            continue
        reference = baseline.get(_entry_key(entry))
        if reference is None:
            continue
        compared += 1
        floor = reference * (1.0 - REGRESSION_TOLERANCE)
        status = "ok" if entry["speedup"] >= floor else "REGRESSION"
        if entry["speedup"] < floor:
            healthy = False
        print(
            f"  {_entry_key(entry):>40s}: {entry['speedup']:.2f}x vs baseline "
            f"{reference:.2f}x (floor {floor:.2f}x) {status}"
        )
    if compared == 0:
        print("  no overlapping workloads with the baseline", file=sys.stderr)
        return False
    return healthy


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweep for CI smoke runs"
    )
    parser.add_argument(
        "--output", default="BENCH_backends.json", help="where to write the JSON"
    )
    parser.add_argument(
        "--check-against",
        default=None,
        metavar="BASELINE",
        help="compare speedups to this committed JSON; exit 1 on a "
        f">{REGRESSION_TOLERANCE:.0%} regression",
    )
    args = parser.parse_args(argv)

    # Read the baseline up front: --output may point at the same file (the
    # committed baseline), and writing first would make the comparison
    # vacuous and destroy the reference.
    baseline = None
    if args.check_against:
        with open(args.check_against) as handle:
            baseline = {
                _entry_key(e): e["speedup"]
                for e in json.load(handle)["results"]
                if "speedup" in e
            }

    ramsey_shots = 1024
    # The quick sweep is an exact-key subset of the full one so that the
    # committed full baseline gates every quick entry in CI.
    sweep = (
        [(2, 1024), (4, 1024)]
        if args.quick
        else [(2, 1024), (4, 1024), (6, 1024), (8, 512), (10, 256)]
    )

    results: List[Dict] = []
    entry = bench_fig3_ramsey(ramsey_shots)
    results.append(entry)
    _print_entry(entry)
    for num_qubits, shots in sweep:
        entry = bench_layered(num_qubits, shots)
        results.append(entry)
        _print_entry(entry)
    for bench in (
        bench_compile_cache,
        bench_disk_cache,
        bench_compile_modes,
        bench_distributed,
        bench_cli_warm_start,
    ):
        entry = bench()
        results.append(entry)
        _print_entry(entry)

    payload = {
        "benchmark": "trajectory-vs-vectorized backend throughput",
        "quick": args.quick,
        "results": results,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not all(r["bit_identical"] for r in results):
        print("ERROR: backends disagree", file=sys.stderr)
        return 1
    if baseline is not None:
        print(f"regression check vs {args.check_against}:")
        if not check_regression(results, baseline):
            print("ERROR: benchmark regression", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
