"""Backend throughput benchmark: scalar trajectory vs vectorized batches.

Times the same seeded workloads on ``backend="trajectory"`` and
``backend="vectorized"`` and writes ``BENCH_backends.json``:

* the fig. 3 Ramsey workload (case I, staggered DD) at 1024 shots — the
  acceptance workload for the vectorized engine's >=3x throughput target;
* layered CX chains across qubit counts and shot counts, showing how the
  speedup scales with state size and batch size;
* a cold-vs-warm plan-cache sweep (the same deterministic-pipeline grid
  compiled twice) measuring the compile-stage speedup of the
  content-addressed cache — the plan/execute split's acceptance workload.

Every run also cross-checks bit-identity (trajectory vs vectorized, and
cold vs warm cache), so the benchmark doubles as an end-to-end parity
check. ``--check-against BASELINE`` compares the measured speedups to a
previously committed JSON and fails on a >25% regression — speedups are
ratios of timings on the same machine, so the gate is robust to absolute
machine speed.

Usage::

    python benchmarks/bench_backends.py            # full sweep
    python benchmarks/bench_backends.py --quick    # CI smoke (seconds)
    python benchmarks/bench_backends.py --quick \
        --output BENCH_current.json --check-against BENCH_backends.json

The baseline is read before the output is written, so pointing both at the
same file compares against the previous run's content — but use a separate
--output to keep the committed baseline untouched.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro import Circuit, SimOptions, Sweep, Task, run
from repro.benchmarking.ramsey import CASE_I, ramsey_task
from repro.device.calibration import synthetic_device
from repro.device.topology import linear_chain
from repro.runtime import PLAN_CACHE

BACKENDS = ("trajectory", "vectorized")

#: Max allowed speedup regression vs the committed baseline (25%).
REGRESSION_TOLERANCE = 0.25


def layered_chain(num_qubits: int, layers: int = 4) -> Circuit:
    circ = Circuit(num_qubits)
    for q in range(num_qubits):
        circ.h(q, new_moment=(q == 0))
    for _ in range(layers):
        for start in (0, 1):
            circ.append_moment([])
            for a in range(start, num_qubits - 1, 2):
                circ.cx(a, a + 1, new_moment=(a == start))
            circ.append_moment([])
    return circ


def time_backends(task: Task, device, options: SimOptions, repeats: int = 2) -> Dict:
    # Best-of-N timing: the gated quantity is a speedup ratio, so per-run
    # scheduler noise must stay well under the regression tolerance.
    timings: Dict[str, float] = {b: float("inf") for b in BACKENDS}
    values: Dict[str, Dict[str, float]] = {}
    for _ in range(repeats):
        for backend in BACKENDS:
            # Same cache temperature for both engines: a run would
            # otherwise warm the plan cache for the next and bias the ratio.
            PLAN_CACHE.clear()
            start = time.perf_counter()
            result = run(task, device, options=options, backend=backend)[0]
            timings[backend] = min(
                timings[backend], time.perf_counter() - start
            )
            values[backend] = dict(result.values)
    shots = (task.shots or options.shots) * max(task.realizations, 1)
    return {
        "shots": shots,
        "seconds": {b: round(timings[b], 4) for b in BACKENDS},
        "shots_per_second": {
            b: round(shots / timings[b], 1) for b in BACKENDS
        },
        "speedup": round(timings["trajectory"] / timings["vectorized"], 2),
        "bit_identical": values["trajectory"] == values["vectorized"],
    }


def bench_fig3_ramsey(shots: int) -> Dict:
    device = synthetic_device(
        linear_chain(CASE_I.num_qubits), name="bench_fig3", seed=1003
    )
    task = ramsey_task(CASE_I, device, depth=16, strategy="staggered_dd", seed=1)
    entry = {
        "workload": "fig3_ramsey_case1",
        "num_qubits": CASE_I.num_qubits,
        "depth": 16,
    }
    entry.update(time_backends(task, device, SimOptions(shots=shots)))
    return entry


def bench_layered(num_qubits: int, shots: int) -> Dict:
    device = synthetic_device(
        linear_chain(num_qubits), name=f"bench_chain{num_qubits}", seed=500 + num_qubits
    )
    observables = {"z0": "I" * (num_qubits - 1) + "Z"}
    task = Task(layered_chain(num_qubits), observables=observables, seed=7)
    entry = {"workload": "layered_chain", "num_qubits": num_qubits}
    entry.update(time_backends(task, device, SimOptions(shots=shots)))
    return entry


def bench_compile_cache() -> Dict:
    """Cold-vs-warm compile of a repeated deterministic-pipeline sweep.

    The same (strategy x depth) Ramsey grid is compiled twice; the second
    pass hits the content-addressed plan cache for every point, so the
    compile-stage wall time collapses while every value stays bit-equal.
    The workload is identical in quick and full modes so the committed
    baseline's speedup is comparable from CI.
    """
    device = synthetic_device(
        linear_chain(CASE_I.num_qubits), name="bench_cache", seed=1007
    )
    options = SimOptions(shots=8)

    def sweep_batch():
        return Sweep(
            {
                "strategy": ("dd", "staggered_dd", "ca_ec", "ca_ec+dd"),
                "depth": (8, 16, 24, 32, 40),
            },
            lambda strategy, depth: ramsey_task(
                CASE_I, device, depth, strategy, twirl=False, seed=1
            ),
            name="bench_cache",
        ).run(options=options, backend="vectorized")

    values = lambda swept: [dict(r.values) for _c, r in swept]  # noqa: E731
    # Best-of-3 cold/warm cycles: warm compiles are milliseconds, so a
    # single sample would be far noisier than the CI regression tolerance.
    cold_s = warm_s = float("inf")
    bit_identical = True
    for _ in range(3):
        PLAN_CACHE.clear()
        cold = sweep_batch()
        assert PLAN_CACHE.misses > 0 and PLAN_CACHE.hits == 0
        warm = sweep_batch()
        cold_s = min(cold_s, cold.compile_time)
        warm_s = min(warm_s, warm.compile_time)
        bit_identical = bit_identical and values(cold) == values(warm)
    return {
        "workload": "compile_cache",
        "points": len(cold),
        "compile_seconds": {"cold": round(cold_s, 4), "warm": round(warm_s, 4)},
        "speedup": round(cold_s / warm_s, 2),
        "cache": dict(PLAN_CACHE.stats),
        "bit_identical": bit_identical,
    }


def _print_entry(entry: Dict) -> None:
    if entry["workload"] == "compile_cache":
        print(
            f"{entry['workload']:>22s} {entry['points']} points: "
            f"{entry['speedup']}x compile-stage speedup "
            f"({entry['compile_seconds']['cold']:.3f}s cold vs "
            f"{entry['compile_seconds']['warm']:.3f}s warm, "
            f"bit_identical={entry['bit_identical']})"
        )
        return
    print(
        f"{entry['workload']:>22s} n={entry['num_qubits']} shots={entry['shots']}: "
        f"{entry['speedup']}x ({entry['shots_per_second']['vectorized']:,.0f} vs "
        f"{entry['shots_per_second']['trajectory']:,.0f} shots/s, "
        f"bit_identical={entry['bit_identical']})"
    )


def _entry_key(entry: Dict) -> str:
    if entry["workload"] == "compile_cache":
        return "compile_cache"
    return f"{entry['workload']}:n{entry['num_qubits']}:s{entry['shots']}"


def check_regression(results: List[Dict], baseline: Dict[str, float]) -> bool:
    """Compare speedups against the committed baseline; True when healthy.

    Only workloads present in both files are compared (the quick sweep is a
    subset of the full one), and each must retain at least
    ``1 - REGRESSION_TOLERANCE`` of its baseline speedup.
    """
    healthy = True
    compared = 0
    for entry in results:
        reference = baseline.get(_entry_key(entry))
        if reference is None:
            continue
        compared += 1
        floor = reference * (1.0 - REGRESSION_TOLERANCE)
        status = "ok" if entry["speedup"] >= floor else "REGRESSION"
        if entry["speedup"] < floor:
            healthy = False
        print(
            f"  {_entry_key(entry):>40s}: {entry['speedup']:.2f}x vs baseline "
            f"{reference:.2f}x (floor {floor:.2f}x) {status}"
        )
    if compared == 0:
        print("  no overlapping workloads with the baseline", file=sys.stderr)
        return False
    return healthy


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweep for CI smoke runs"
    )
    parser.add_argument(
        "--output", default="BENCH_backends.json", help="where to write the JSON"
    )
    parser.add_argument(
        "--check-against",
        default=None,
        metavar="BASELINE",
        help="compare speedups to this committed JSON; exit 1 on a "
        f">{REGRESSION_TOLERANCE:.0%} regression",
    )
    args = parser.parse_args(argv)

    # Read the baseline up front: --output may point at the same file (the
    # committed baseline), and writing first would make the comparison
    # vacuous and destroy the reference.
    baseline = None
    if args.check_against:
        with open(args.check_against) as handle:
            baseline = {
                _entry_key(e): e["speedup"]
                for e in json.load(handle)["results"]
            }

    ramsey_shots = 1024
    # The quick sweep is an exact-key subset of the full one so that the
    # committed full baseline gates every quick entry in CI.
    sweep = (
        [(2, 1024), (4, 1024)]
        if args.quick
        else [(2, 1024), (4, 1024), (6, 1024), (8, 512), (10, 256)]
    )

    results: List[Dict] = []
    entry = bench_fig3_ramsey(ramsey_shots)
    results.append(entry)
    _print_entry(entry)
    for num_qubits, shots in sweep:
        entry = bench_layered(num_qubits, shots)
        results.append(entry)
        _print_entry(entry)
    entry = bench_compile_cache()
    results.append(entry)
    _print_entry(entry)

    payload = {
        "benchmark": "trajectory-vs-vectorized backend throughput",
        "quick": args.quick,
        "results": results,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not all(r["bit_identical"] for r in results):
        print("ERROR: backends disagree", file=sys.stderr)
        return 1
    if baseline is not None:
        print(f"regression check vs {args.check_against}:")
        if not check_regression(results, baseline):
            print("ERROR: benchmark regression", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
