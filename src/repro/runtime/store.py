"""Disk-backed plan store: the persistent layer under the plan cache.

The in-memory :class:`~repro.runtime.plan.PlanCache` dies with its process,
so a fresh CLI invocation always compiles cold. :class:`PlanStore`
persists the cache's values — the ``(compiled, scheduled)`` circuit pair a
deterministic pipeline produced for one content key — as pickled files
under a versioned directory, so the *second* invocation of the same figure
warm-starts its compile stage.

Design constraints, in order:

* **Correctness over persistence.** Every load failure — truncated file,
  corrupt pickle, format-version mismatch, unreadable directory — is
  treated as a cache miss (and the offending file is deleted when
  possible). A broken store can cost wall time, never change a value.
* **Crash/concurrency safety.** Writes go to a temporary file in the same
  directory and are published with :func:`os.replace`, so readers (other
  processes included) only ever see complete payloads. Two processes
  racing on one key write byte-identical content, so last-writer-wins is
  harmless.
* **Bounded size.** The store holds at most ``max_bytes`` of payloads;
  :meth:`put` evicts least-recently-used files (access bumps mtime) until
  the bound holds again.
* **Versioned format.** Entries live under ``v<FORMAT_VERSION>/`` and
  embed the version in the payload; bumping ``FORMAT_VERSION`` orphans old
  entries instead of risking misinterpreting them.

The store never hashes or compiles anything itself — keys come from the
content fingerprints in :mod:`repro.runtime.plan`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..utils.paths import default_plan_cache_dir

#: Bump when the pickled payload layout (or anything it embeds) changes
#: incompatibly; old entries are orphaned, not misread.
FORMAT_VERSION = 1

#: Default size bound: generous for plan payloads (~10 kB each) while
#: keeping a forgotten cache directory from growing without bound.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_SUFFIX = ".plan"


class PlanStore:
    """A versioned, size-bounded, corruption-tolerant on-disk k/v store.

    Args:
        directory: root of the store. ``None`` uses
            :func:`repro.utils.paths.default_plan_cache_dir` (respects
            ``REPRO_PLAN_CACHE_DIR`` / ``XDG_CACHE_HOME``). Entries live in
            a ``v<FORMAT_VERSION>`` subdirectory so format bumps never
            misread old files.
        max_bytes: total payload bound; least-recently-used entries are
            evicted after each :meth:`put` until the bound holds.

    Example:
        >>> store = PlanStore("/tmp/plans", max_bytes=1 << 20)
        >>> store.put("key", ("compiled", "scheduled"))
        >>> store.get("key")
        ('compiled', 'scheduled')
        >>> store.get("missing") is None
        True
    """

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = Path(directory).expanduser() if directory else default_plan_cache_dir()
        self.directory = self.root / f"v{FORMAT_VERSION}"
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.errors = 0
        # Running size estimate so puts don't rescan the directory each
        # time; initialized lazily from a real scan, re-trued by _evict.
        # Lock-guarded: compile worker threads put concurrently, and a
        # lost update would undercount and let the bound slip.
        self._approx_bytes: Optional[int] = None
        self._size_lock = threading.Lock()

    # -- key/path mapping ------------------------------------------------------

    def _path(self, key: str) -> Path:
        # Keys are colon-joined fingerprints; hash them again so filenames
        # are fixed-length and filesystem-safe no matter what a custom
        # pass's fingerprint contains.
        digest = hashlib.blake2b(key.encode(), digest_size=20).hexdigest()
        return self.directory / f"{digest}{_SUFFIX}"

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- read ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """Load the value stored under ``key``, or ``None`` on any failure.

        A hit bumps the file's mtime (the LRU clock). Corrupt, truncated,
        or version-mismatched files are deleted and reported as misses —
        the caller simply recompiles and overwrites them.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated write, corrupt bytes, unpicklable content from a
            # different library version... all equally recoverable: drop
            # the file and compile fresh.
            self.errors += 1
            self.misses += 1
            self._discard(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != FORMAT_VERSION
            or payload.get("key") != key
        ):
            # Wrong embedded version (file predates a format bump that
            # kept the directory name) or a key hash collision: unusable.
            self.errors += 1
            self.misses += 1
            self._discard(path)
            return None
        try:
            os.utime(path)
        except OSError:
            pass  # eviction raced us; the value is still good
        self.hits += 1
        return payload["value"]

    def contains(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` (no payload validation).

        A cheap existence probe for write-through decisions; a corrupt file
        found here still resolves to a miss (and recompilation) on the next
        real :meth:`get`.
        """
        return self._path(key).exists()

    # -- write -----------------------------------------------------------------

    def put(self, key: str, value: Any) -> bool:
        """Persist ``value`` under ``key``; returns ``False`` on failure.

        The payload is written to a sibling temporary file and published
        atomically, then LRU eviction enforces ``max_bytes``. Unpicklable
        values and filesystem errors are swallowed — persistence is an
        optimization, never a requirement.
        """
        path = self._path(key)
        tmp = path.with_suffix(f".tmp-{os.getpid()}-{time.monotonic_ns()}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = {"format": FORMAT_VERSION, "key": key, "value": value}
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            written = tmp.stat().st_size
            os.replace(tmp, path)
        except Exception:
            self.errors += 1
            self._discard(tmp)
            return False
        # Overwrites make the estimate drift high, never low, so the bound
        # still holds; _evict re-trues it from a real scan when it trips.
        with self._size_lock:
            if self._approx_bytes is None:
                self._approx_bytes = self._scan()[1]
            else:
                self._approx_bytes += written
            over = self._approx_bytes > self.max_bytes
        if over:
            self._evict()
        return True

    def _scan(self):
        """``(entries, total)`` for the current store; sweeps stale tmps.

        A temporary file only survives a crash between write and rename;
        anything older than a minute is garbage and would otherwise escape
        the size bound forever (eviction only considers ``.plan`` files).
        """
        entries = []
        total = 0
        stale = time.time() - 60.0
        try:
            for path in self.directory.iterdir():
                if ".tmp-" in path.name:
                    try:
                        if path.stat().st_mtime < stale:
                            self._discard(path)
                    except OSError:
                        pass
                    continue
                if path.suffix != _SUFFIX:
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        except OSError:
            pass
        return entries, total

    def _evict(self) -> None:
        """Delete least-recently-used entries until ``max_bytes`` holds."""
        entries, total = self._scan()
        entries.sort()  # oldest access first
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            self._discard(path)
            total -= size
        with self._size_lock:
            self._approx_bytes = total

    # -- maintenance -----------------------------------------------------------

    def __len__(self) -> int:
        try:
            return sum(
                1 for p in self.directory.iterdir() if p.suffix == _SUFFIX
            )
        except OSError:
            return 0

    def total_bytes(self) -> int:
        """Current payload size on disk (0 when the store is empty)."""
        try:
            return sum(
                p.stat().st_size
                for p in self.directory.iterdir()
                if p.suffix == _SUFFIX
            )
        except OSError:
            return 0

    def clear(self) -> None:
        """Delete every entry (of this format version) and reset counters."""
        try:
            for path in self.directory.iterdir():
                if path.suffix == _SUFFIX or ".tmp-" in path.name:
                    self._discard(path)
        except OSError:
            pass
        self.hits = 0
        self.misses = 0
        self.errors = 0
        with self._size_lock:
            self._approx_bytes = 0

    @property
    def stats(self) -> Dict[str, int]:
        """``{"hits", "misses", "errors", "entries", "bytes"}`` counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "entries": len(self),
            "bytes": self.total_bytes(),
        }

    def __repr__(self) -> str:
        return (
            f"PlanStore({str(self.root)!r}, entries={len(self)}, "
            f"max_bytes={self.max_bytes})"
        )
