"""Unified runtime: composable pipelines, pluggable backends, batched runs.

The three pieces fit together like this::

    from repro.runtime import CADD, CAEC, Pipeline, Task, Twirl, run

    # 1. a compilation recipe: a named strategy or a custom pass pipeline
    pipeline = Pipeline([Twirl(), CADD(), CAEC()])   # or pipeline="ca_ec+dd"

    # 2. tasks: circuit + what to measure + statistics
    tasks = [
        Task(circ, observables={"z": "IIZ"}, pipeline=pipeline,
             realizations=8, seed=k)
        for k, circ in enumerate(circuits)
    ]

    # 3. one batched, parallel, backend-agnostic run
    batch = run(tasks, device, backend="trajectory", workers=4)

See :mod:`repro.runtime.task` for the seed semantics that make the batched
path bit-for-bit equivalent to the legacy single-task entry points.
"""

from .backends import (
    BACKENDS,
    Backend,
    DensityBackend,
    TrajectoryBackend,
    VectorizedBackend,
    get_backend,
    register_backend,
)
from .passes import CADD, CAEC, AlignedDD, Orient, Pass, PassContext, StaggeredDD, Twirl
from .pipeline import IDENTITY, Pipeline, as_pipeline, pipeline_for
from .run import configure, default_backend, default_workers, run
from .task import BatchResult, Task, TaskResult

__all__ = [
    "BACKENDS",
    "Backend",
    "DensityBackend",
    "TrajectoryBackend",
    "VectorizedBackend",
    "get_backend",
    "register_backend",
    "CADD",
    "CAEC",
    "AlignedDD",
    "Orient",
    "Pass",
    "PassContext",
    "StaggeredDD",
    "Twirl",
    "IDENTITY",
    "Pipeline",
    "as_pipeline",
    "pipeline_for",
    "configure",
    "default_backend",
    "default_workers",
    "run",
    "BatchResult",
    "Task",
    "TaskResult",
]
