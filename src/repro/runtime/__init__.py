"""Unified runtime: pipelines, plans, backends, batched runs, sweeps.

The pieces fit together like this::

    from repro.runtime import CADD, CAEC, Pipeline, Sweep, Task, Twirl, run

    # 1. a compilation recipe: a named strategy or a custom pass pipeline
    pipeline = Pipeline([Twirl(), CADD(), CAEC()])   # or pipeline="ca_ec+dd"

    # 2. tasks: circuit + what to measure + statistics
    tasks = [
        Task(circ, observables={"z": "IIZ"}, pipeline=pipeline,
             realizations=8, seed=k)
        for k, circ in enumerate(circuits)
    ]

    # 3. one batched, parallel, backend-agnostic run
    batch = run(tasks, device, backend="trajectory", workers=4)

Under the hood ``run()`` is a plan/execute split: a shared
:func:`~repro.runtime.plan.compile_tasks` stage produces frozen
:class:`~repro.runtime.plan.ExecutionPlan` artifacts (parallel across
tasks, content-cached for deterministic pipelines), and every backend
consumes the same plans. Grid-shaped experiments declare a
:class:`~repro.runtime.sweep.Sweep` instead of hand-rolling task lists.

See :mod:`repro.runtime.task` for the seed semantics that make the batched
path bit-for-bit equivalent to the legacy single-task entry points.
"""

from .backends import (
    BACKENDS,
    Backend,
    DensityBackend,
    TrajectoryBackend,
    VectorizedBackend,
    get_backend,
    register_backend,
)
from .distributed import (
    DistributedBackend,
    LocalShardExecutor,
    SocketShardExecutor,
)
from .passes import CADD, CAEC, AlignedDD, Orient, Pass, PassContext, StaggeredDD, Twirl
from .pipeline import IDENTITY, Pipeline, as_pipeline, pipeline_for
from .plan import (
    COMPILE_MODES,
    PLAN_CACHE,
    PLAN_CACHE_MODES,
    ExecutionPlan,
    PlanCache,
    PlanShard,
    PlanUnit,
    circuit_fingerprint,
    compile_tasks,
    configure_plan_cache,
    default_plan_cache,
    device_fingerprint,
    plan_cache_mode,
    plan_options,
    shard_plans,
)
from .run import (
    configure,
    default_backend,
    default_chunk_shots,
    default_compile_mode,
    default_compile_workers,
    default_dist_connect,
    default_dist_inner,
    default_dist_serve,
    default_dist_shard_size,
    default_dist_workers,
    default_workers,
    run,
)
from .store import PlanStore
from .sweep import Sweep, SweepResult
from .task import BatchResult, Task, TaskResult

__all__ = [
    "BACKENDS",
    "Backend",
    "DensityBackend",
    "DistributedBackend",
    "LocalShardExecutor",
    "SocketShardExecutor",
    "TrajectoryBackend",
    "VectorizedBackend",
    "get_backend",
    "register_backend",
    "CADD",
    "CAEC",
    "AlignedDD",
    "Orient",
    "Pass",
    "PassContext",
    "StaggeredDD",
    "Twirl",
    "IDENTITY",
    "Pipeline",
    "as_pipeline",
    "pipeline_for",
    "COMPILE_MODES",
    "PLAN_CACHE",
    "PLAN_CACHE_MODES",
    "ExecutionPlan",
    "PlanCache",
    "PlanShard",
    "PlanStore",
    "PlanUnit",
    "circuit_fingerprint",
    "compile_tasks",
    "configure_plan_cache",
    "default_plan_cache",
    "device_fingerprint",
    "plan_cache_mode",
    "plan_options",
    "shard_plans",
    "configure",
    "default_backend",
    "default_chunk_shots",
    "default_compile_mode",
    "default_compile_workers",
    "default_dist_connect",
    "default_dist_inner",
    "default_dist_serve",
    "default_dist_shard_size",
    "default_dist_workers",
    "default_workers",
    "run",
    "Sweep",
    "SweepResult",
    "BatchResult",
    "Task",
    "TaskResult",
]
