"""Work units and results for the batched runtime.

A :class:`Task` bundles one circuit (or realization factory) with what to
measure, how many twirl realizations to average, and which compilation
pipeline to apply. :func:`repro.runtime.run` executes a list of tasks on a
backend and returns a :class:`BatchResult` of per-task
:class:`TaskResult` objects (the same shape as ``SimResult``, plus run
metadata).

Seed semantics (chosen to match the legacy entry points bit-for-bit):

* ``pipeline is None`` and ``realizations == 1`` — the circuit runs as-is
  and ``seed`` (or ``options.seed``) seeds the simulator directly, like
  ``expectation_values`` / ``bit_probabilities``.
* otherwise — ``seed`` seeds the realization stream: each realization
  compiles from that stream, then draws a simulator sub-seed from it, like
  ``average_over_realizations``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.schedule import ScheduledCircuit
from ..device.calibration import Device
from ..pauli.pauli import Pauli
from ..sim.executor import SimResult
from ..utils.rng import SeedLike
from .pipeline import PipelineLike

CircuitLike = Union[Circuit, ScheduledCircuit]
#: ``factory(rng) -> circuit`` producing fresh realizations (legacy style).
RealizationFactory = Callable[[np.random.Generator], CircuitLike]


@dataclass
class Task:
    """One batched work item: circuit, measurement, pipeline, statistics.

    Exactly one of ``circuit`` / ``factory`` and exactly one of
    ``observables`` / ``bit_targets`` must be given. ``observables`` maps
    names to Pauli labels (or ``Pauli`` objects); ``bit_targets`` maps
    names to ``{qubit: bit}`` assignments. ``device`` overrides the batch
    device for this task (e.g. an ideal reference). ``shots`` overrides
    ``options.shots``.
    """

    circuit: Optional[CircuitLike] = None
    observables: Optional[Dict[str, Union[str, Pauli]]] = None
    bit_targets: Optional[Dict[str, Dict[int, int]]] = None
    pipeline: PipelineLike = None
    realizations: int = 1
    seed: SeedLike = None
    shots: Optional[int] = None
    device: Optional[Device] = None
    factory: Optional[RealizationFactory] = None
    name: Optional[str] = None

    def __post_init__(self):
        if (self.circuit is None) == (self.factory is None):
            raise ValueError("give exactly one of circuit or factory")
        if self.factory is not None and self.pipeline is not None:
            raise ValueError("factory tasks already compile themselves")
        if (self.observables is None) == (self.bit_targets is None):
            raise ValueError("give exactly one of observables or bit_targets")
        if self.realizations < 1:
            raise ValueError("realizations must be >= 1")


@dataclass
class TaskResult(SimResult):
    """A ``SimResult`` plus run metadata for one task."""

    name: Optional[str] = None
    backend: str = ""
    realizations: int = 1
    wall_time: float = 0.0

    def __repr__(self) -> str:
        body = ", ".join(
            f"{k}={v:+.6f}±{self.errors.get(k, 0.0):.6f}"
            for k, v in self.values.items()
        )
        label = f"{self.name!r}, " if self.name else ""
        return (
            f"TaskResult({label}{body}, shots={self.shots}, "
            f"realizations={self.realizations}, backend={self.backend!r})"
        )


@dataclass
class BatchResult:
    """Per-task results plus batch-level run metadata.

    ``compile_time`` / ``exec_time`` split the wall time between the shared
    compile stage (task -> :class:`~repro.runtime.plan.ExecutionPlan`) and
    backend execution, so sweeps can report where the time went (and the
    benchmarks can measure the plan cache).
    """

    results: List[TaskResult]
    backend: str = ""
    workers: int = 1
    wall_time: float = 0.0
    compile_time: float = 0.0
    exec_time: float = 0.0

    @property
    def shots(self) -> int:
        return sum(r.shots for r in self.results)

    def __getitem__(self, key: Union[int, str]) -> TaskResult:
        if isinstance(key, str):
            for result in self.results:
                if result.name == key:
                    return result
            raise KeyError(key)
        return self.results[key]

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __repr__(self) -> str:
        return (
            f"BatchResult({len(self.results)} tasks, backend={self.backend!r}, "
            f"workers={self.workers}, shots={self.shots}, "
            f"wall_time={self.wall_time:.3f}s)"
        )
