"""Distributed plan execution: shard plans across processes and hosts.

The paper's headline numbers average thousands of independently-seeded
noise realizations per circuit — an embarrassingly parallel workload whose
natural shipping unit already exists: the frozen, picklable
:class:`~repro.runtime.plan.ExecutionPlan`. This module splits compiled
plans into self-contained :class:`~repro.runtime.plan.PlanShard` work
units, executes them on a pluggable executor layer, and merges the partial
results with the runtime's existing associative aggregation::

    batch = run(tasks, device, backend="distributed", workers=4)

Two transports ship with the library:

* ``local`` (the default) — a ``ProcessPoolExecutor`` on this machine.
  Worker-process crashes are recovered by re-queueing the lost shards onto
  a fresh pool (and, as a last resort, executing them inline), so a run
  always completes.
* ``socket`` — the coordinator serves a shard queue over TCP
  (``configure(dist_serve="0.0.0.0:7777")`` or ``--dist-serve``), spawns
  its local workers as subprocesses that pull from it, and lets any other
  host join the same run::

      python -m repro.runtime.distributed worker --connect HOST:7777

  The inverse topology is also supported for workers behind a firewall the
  coordinator can reach: the worker listens
  (``... worker --listen 0.0.0.0:7778``) and the coordinator dials out
  (``configure(dist_connect="workerhost:7778")``). A worker that vanishes
  mid-shard (killed, crashed, unplugged) just gets its shard re-queued for
  the next puller; when no workers remain the coordinator drains the queue
  itself.

Results are bit-for-bit identical to ``backend="trajectory"`` (or to
whichever ``inner`` backend executes the shards) for every shard size,
worker count, transport, and failure/recovery history: per-realization
seeds are derived from the plan at compile time — never from the worker —
and the coordinator reassembles shard results in realization order before
aggregating, so scheduling can only ever change wall time.

Shards travel as pickles. That is the right trade for a trusted cluster
(zero-copy NumPy, exact object fidelity) but it means a malicious peer on
the queue port can execute arbitrary code — bind ``--dist-serve`` to
trusted networks only.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...sim.executor import SimOptions, SimResult
from ..backends import Backend, get_backend
from ..plan import ExecutionPlan, PlanShard, plan_options, shard_plans
from ..task import TaskResult

#: ``(plan_index, shard_index)`` — how shard results are keyed and merged.
ShardKey = Tuple[int, int]
#: One executed unit: the simulation result and its wall time.
UnitOutcome = Tuple[SimResult, float]


@dataclass(frozen=True)
class WorkUnit:
    """A shard plus the execution context a worker needs to run it.

    ``options`` overrides the shard's compile-time options for this
    execution (the backend passes the batch-level options here, mirroring
    in-process execution); ``None`` falls back to ``shard.options``.
    ``crash_token`` is a failure-injection hook for the recovery tests: the
    first *worker* that picks the unit up creates the token file and dies
    abruptly (``os._exit``), so the shard exercises the re-queue path
    exactly once and then executes normally. Inline (coordinator-side)
    execution ignores it.
    """

    shard: PlanShard
    inner: str
    options: Optional[SimOptions] = None
    crash_token: Optional[str] = None

    @property
    def key(self) -> ShardKey:
        return (self.shard.plan_index, self.shard.shard_index)


def execute_work_unit(unit: WorkUnit, in_worker: bool = True) -> List[UnitOutcome]:
    """Run every simulation unit of one shard on the inner backend.

    This is the worker-side kernel shared by both transports (and by the
    coordinator's inline drain, with ``in_worker=False`` so the crash hook
    cannot kill the coordinator). Engines are shared between units whose
    scheduled circuits are the same object — pickling preserves that
    sharing within a shard — and results come back in unit order.
    """
    if in_worker and unit.crash_token is not None:
        try:
            fd = os.open(unit.crash_token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass  # already crashed once for this token; execute normally
        else:
            os.close(fd)
            os._exit(17)
    backend = get_backend(unit.inner)
    shard = unit.shard
    options = unit.options if unit.options is not None else shard.options
    options = options or SimOptions()
    engines: Dict[Tuple[int, int], Any] = {}
    outcomes: List[UnitOutcome] = []
    for plan_unit in shard.units:
        key = (id(plan_unit.scheduled), id(plan_unit.device))
        engine = engines.get(key)
        if engine is None:
            engine = backend._make_engine(plan_unit.scheduled, plan_unit.device, options)
            engines[key] = engine
        start = time.perf_counter()
        result = backend._execute(
            engine, shard.kind, shard.payload, shard.shots, plan_unit.seed
        )
        outcomes.append((result, time.perf_counter() - start))
    return outcomes


# ---------------------------------------------------------------------------
# Local executor: a process pool with crash recovery
# ---------------------------------------------------------------------------


class LocalShardExecutor:
    """Execute work units on a ``ProcessPoolExecutor``, surviving crashes.

    A worker process that dies mid-shard breaks the whole pool (that is how
    ``concurrent.futures`` reports it), taking every in-flight future with
    it. Recovery is simple because shards are idempotent — seeds come from
    the plan, so re-running one reproduces the same bits: unfinished shards
    are re-submitted to a fresh pool up to ``max_retries`` times, and
    whatever still remains executes inline in the coordinator, where a
    genuine (deterministic) error finally surfaces with a clean traceback.
    """

    def __init__(self, workers: int, max_retries: int = 2):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.max_retries = max_retries

    def run(self, units: Sequence[WorkUnit]) -> Dict[ShardKey, List[UnitOutcome]]:
        results: Dict[ShardKey, List[UnitOutcome]] = {}
        pending = list(units)
        for _attempt in range(self.max_retries + 1):
            if not pending:
                break
            pending = self._round(pending, results)
        for unit in pending:  # last resort: always completes (or raises)
            results[unit.key] = execute_work_unit(unit, in_worker=False)
        return results

    def _round(
        self,
        units: List[WorkUnit],
        results: Dict[ShardKey, List[UnitOutcome]],
    ) -> List[WorkUnit]:
        """One pool generation; returns the units lost to a crash."""
        crashed: List[WorkUnit] = []
        with ProcessPoolExecutor(max_workers=min(self.workers, len(units))) as pool:
            futures = [(unit, pool.submit(execute_work_unit, unit)) for unit in units]
            for unit, future in futures:
                try:
                    results[unit.key] = future.result()
                except BrokenProcessPool:
                    crashed.append(unit)
        return crashed


# ---------------------------------------------------------------------------
# Socket transport: length-prefixed pickle frames
# ---------------------------------------------------------------------------

_HEADER = struct.Struct(">Q")


def _send_msg(sock: socket.socket, message: Dict) -> None:
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_msg(sock: socket.socket) -> Optional[Dict]:
    """One framed message, or ``None`` on EOF / a torn frame."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    payload = _recv_exact(sock, _HEADER.unpack(header)[0])
    if payload is None:
        return None
    return pickle.loads(payload)


def parse_address(spec: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """``"host:port"`` (or bare ``"port"``) -> ``(host, port)``."""
    text = str(spec).strip()
    if ":" in text:
        host, _, port = text.rpartition(":")
        host = host or default_host
    else:
        host, port = default_host, text
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"invalid address {spec!r}; expected HOST:PORT") from None


class _ShardQueue:
    """The coordinator's work queue: checkout, result, and re-queue logic.

    One serving thread runs per worker connection; the strictly alternating
    ready/unit/result protocol means each connection has at most one shard
    in flight, and a connection that dies simply puts that shard back in
    the queue. Duplicate results (a shard drained inline while a slow
    worker raced on it) are harmless: the first one wins, and both are
    bit-identical by construction.
    """

    def __init__(self, units: Sequence[WorkUnit]):
        self.total = len(units)
        self.results: Dict[ShardKey, List[UnitOutcome]] = {}
        self._pending = deque(units)
        self._cond = threading.Condition()
        self._active = 0  # live worker connections
        self._inflight = 0  # shards handed out but not yet completed

    # -- queue state -----------------------------------------------------------

    @property
    def complete(self) -> bool:
        with self._cond:
            return len(self.results) == self.total

    def idle_and_unfinished(self) -> bool:
        """No live workers, nothing in flight, work still pending."""
        with self._cond:
            return (
                self._active == 0
                and self._inflight == 0
                and len(self.results) < self.total
            )

    def wait(self, timeout: float) -> bool:
        """Block until complete (or ``timeout`` elapses); returns complete."""
        with self._cond:
            if len(self.results) < self.total:
                self._cond.wait(timeout)
            return len(self.results) == self.total

    def steal(self) -> Optional[WorkUnit]:
        """Check a unit out for inline execution by the coordinator."""
        with self._cond:
            if not self._pending:
                return None
            self._inflight += 1
            return self._pending.popleft()

    def deposit(self, key: ShardKey, outcomes: List[UnitOutcome]) -> None:
        with self._cond:
            self._inflight -= 1
            self.results.setdefault(key, outcomes)
            self._cond.notify_all()

    def _requeue(self, unit: WorkUnit) -> None:
        with self._cond:
            self._inflight -= 1
            self._pending.append(unit)
            self._cond.notify_all()

    # -- one worker connection -------------------------------------------------

    def serve_connection(self, conn: socket.socket) -> None:
        with self._cond:
            self._active += 1
        inflight: Optional[WorkUnit] = None
        try:
            while True:
                message = _recv_msg(conn)
                if message is None:
                    break
                kind = message.get("type")
                if kind == "result":
                    if inflight is not None and message["key"] == inflight.key:
                        self.deposit(inflight.key, message["results"])
                        inflight = None
                elif kind == "ready":
                    if self.complete:
                        _send_msg(conn, {"type": "done"})
                        break
                    unit = self.steal()
                    if unit is not None:
                        inflight = unit
                        _send_msg(conn, {"type": "unit", "unit": unit})
                    else:
                        # Queue momentarily empty, but a re-queue may still
                        # happen: ask the worker to poll again shortly.
                        _send_msg(conn, {"type": "wait", "seconds": 0.05})
        except OSError:
            pass  # connection died; the re-queue below recovers the shard
        finally:
            with self._cond:
                self._active -= 1
                self._cond.notify_all()
            if inflight is not None:
                self._requeue(inflight)
            try:
                conn.close()
            except OSError:
                pass


def _worker_command(address: str, worker_args: Sequence[str]) -> List[str]:
    return [
        sys.executable,
        "-m",
        "repro.runtime.distributed",
        "worker",
        "--connect",
        address,
        *worker_args,
    ]


def _worker_env() -> Dict[str, str]:
    """Spawned workers must import ``repro`` exactly as the coordinator did."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[3])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    return env


class SocketShardExecutor:
    """Serve the shard queue over TCP; spawn and/or adopt pulling workers.

    Args:
        spawn: local worker subprocesses to launch against the queue
            (each runs ``python -m repro.runtime.distributed worker
            --connect ...``).
        serve: ``"host:port"`` to bind the queue at (``None`` binds an
            ephemeral localhost port when ``spawn`` workers need one). Any
            host may join the run while it is live by connecting a worker
            to this address.
        connect: worker addresses the *coordinator* dials out to — the
            inverse topology, for workers running ``worker --listen`` on
            hosts that cannot reach the coordinator.
        worker_args: extra CLI arguments for spawned workers (used by the
            failure-injection tests).
        poll: coordinator wake-up interval while waiting for results.

    Liveness guarantee: when every connection is gone, nothing is in
    flight, and shards remain, the coordinator executes them inline — a
    run never hangs on dead workers. The only indefinitely-blocking shape
    is a pure ``serve`` with no spawned and no dialed workers, which is
    precisely "wait for a host to join".
    """

    def __init__(
        self,
        spawn: int = 0,
        serve: Optional[str] = None,
        connect: Sequence[str] = (),
        worker_args: Sequence[str] = (),
        poll: float = 0.05,
    ):
        if spawn < 0:
            raise ValueError("spawn must be >= 0")
        self.spawn = spawn
        self.serve = serve
        self.connect = tuple(connect)
        self.worker_args = tuple(worker_args)
        self.poll = poll

    def run(self, units: Sequence[WorkUnit]) -> Dict[ShardKey, List[UnitOutcome]]:
        queue = _ShardQueue(units)
        listener: Optional[socket.socket] = None
        threads: List[threading.Thread] = []
        procs: List[subprocess.Popen] = []
        stop = threading.Event()

        def track(target, *args) -> None:
            thread = threading.Thread(target=target, args=args, daemon=True)
            thread.start()
            threads.append(thread)

        try:
            if self.serve is not None or self.spawn:
                host, port = (
                    parse_address(self.serve)
                    if self.serve is not None
                    else ("127.0.0.1", 0)
                )
                listener = socket.create_server((host, port))
                listener.settimeout(0.1)
                bound = listener.getsockname()
                spawn_at = f"{'127.0.0.1' if bound[0] == '0.0.0.0' else bound[0]}:{bound[1]}"

                def accept_loop() -> None:
                    while not stop.is_set():
                        try:
                            conn, _addr = listener.accept()
                        except socket.timeout:
                            continue
                        except OSError:
                            return
                        track(queue.serve_connection, conn)

                track(accept_loop)
                for _ in range(self.spawn):
                    procs.append(
                        subprocess.Popen(
                            _worker_command(spawn_at, self.worker_args),
                            env=_worker_env(),
                        )
                    )
            for address in self.connect:
                conn = socket.create_connection(parse_address(address), timeout=30)
                # The 30s bound is for *connecting* only: left in place it
                # would also cap every recv, and a shard that simulates
                # longer than that would get its live worker treated as
                # vanished. Shards have no deadline — block indefinitely.
                conn.settimeout(None)
                track(queue.serve_connection, conn)

            while not queue.wait(self.poll):
                if queue.idle_and_unfinished() and not self._capacity_left(procs):
                    # Every worker is gone: finish the job ourselves.
                    while True:
                        unit = queue.steal()
                        if unit is None:
                            break
                        queue.deposit(
                            unit.key, execute_work_unit(unit, in_worker=False)
                        )
        finally:
            stop.set()
            if listener is not None:
                try:
                    listener.close()
                except OSError:
                    pass
            for proc in procs:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        return queue.results

    def _capacity_left(self, procs: List[subprocess.Popen]) -> bool:
        """Could a worker still show up without coordinator help?

        Spawned workers that have exited are never coming back; a pure
        ``serve`` queue, by contrast, is an open invitation — external
        workers may join at any time, so the coordinator keeps waiting.
        """
        if any(proc.poll() is None for proc in procs):
            return True
        return self.serve is not None and not procs and not self.connect


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class DistributedBackend(Backend):
    """Shard compiled plans across processes (and hosts) and merge results.

    The compile stage is untouched — plans come from the shared
    :func:`~repro.runtime.plan.compile_tasks` path like every other
    backend. Execution splits each plan's units into
    :class:`~repro.runtime.plan.PlanShard` blocks, ships them to an
    executor (``local`` process pool by default; the socket queue when
    ``serve``/``connect`` is set), and merges the partial results with the
    same associative aggregation the in-process backends use — after
    reordering them into realization order, which is what makes the output
    bit-for-bit identical to the ``inner`` backend run locally, for every
    (shard size × worker count × transport) combination and across worker
    crashes.

    Args:
        inner: backend that executes the shards inside each worker
            (default ``"trajectory"``; ``"vectorized"`` works identically).
        dist_workers: worker processes. ``None`` defers to
            ``configure(dist_workers=...)``, then to the ``workers``
            argument of the run.
        shard_size: realizations per shard. ``None`` auto-sizes to roughly
            :data:`SHARDS_PER_WORKER` shards per worker so re-queues and
            stragglers load-balance.
        serve: ``"host:port"`` queue address for the socket transport.
        connect: worker address(es) the coordinator should dial out to.

    Example:
        >>> run(tasks, device, backend="distributed", workers=4)  # doctest: +SKIP
        >>> configure(dist_serve="0.0.0.0:7777", dist_workers=2)  # doctest: +SKIP
    """

    name = "distributed"

    #: Auto shard sizing targets this many shards per worker: small enough
    #: to load-balance stragglers and cheap re-queues, large enough that
    #: per-shard transport overhead stays amortized.
    SHARDS_PER_WORKER = 4

    def __init__(
        self,
        inner: Optional[str] = None,
        dist_workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        serve: Optional[str] = None,
        connect: Optional[Sequence[str]] = None,
    ):
        if inner == self.name:
            raise ValueError("distributed cannot be its own inner backend")
        if dist_workers is not None and dist_workers < 1:
            raise ValueError("dist_workers must be >= 1")
        if shard_size is not None and shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.inner = inner
        self.dist_workers = dist_workers
        self.shard_size = shard_size
        self.serve = serve
        self.connect = (
            [connect] if isinstance(connect, str) else list(connect or ())
        )
        #: Failure-injection hook (see :class:`WorkUnit`); tests only.
        self._crash_token: Optional[str] = None
        #: Extra CLI args for spawned socket workers; tests only.
        self._worker_args: Sequence[str] = ()

    # The ABC hooks delegate to the inner backend so a DistributedBackend
    # still works anywhere a plain Backend is expected; the real fan-out
    # lives in execute_plans.
    def _make_engine(self, scheduled, device, options):
        return self._inner_backend()._make_engine(scheduled, device, options)

    def _execute(self, engine, kind, payload, shots, seed, workers=1):
        return self._inner_backend()._execute(
            engine, kind, payload, shots, seed, workers=workers
        )

    def _inner_backend(self) -> Backend:
        from ..run import default_dist_inner

        return get_backend(self.inner or default_dist_inner())

    def _resolve(self, workers: int):
        """Fold instance args, configured defaults, and run args."""
        from ..run import (
            default_dist_connect,
            default_dist_serve,
            default_dist_shard_size,
            default_dist_workers,
        )

        count = self.dist_workers or default_dist_workers() or max(workers, 1)
        serve = self.serve if self.serve is not None else default_dist_serve()
        connect = self.connect or default_dist_connect()
        shard_size = self.shard_size or default_dist_shard_size()
        return count, serve, connect, shard_size

    def execute_plans(
        self,
        plans: Sequence[ExecutionPlan],
        options: Optional[SimOptions] = None,
        workers: int = 1,
    ) -> List[TaskResult]:
        """Shard the plans, execute them distributed, merge the results."""
        if options is None:
            options = plan_options(plans)
        options = options or SimOptions()
        inner = self._inner_backend()
        count, serve, connect, shard_size = self._resolve(workers)
        # Size from the units that will actually ship: collapsible plans
        # reduce to one unit for seed-insensitive inner backends.
        total_units = sum(
            1 if plan.collapsible and not inner.seed_sensitive else len(plan.units)
            for plan in plans
        )
        if shard_size is None:
            shard_size = max(
                1, -(-total_units // max(1, count * self.SHARDS_PER_WORKER))
            )
        shards = shard_plans(plans, shard_size, seed_sensitive=inner.seed_sensitive)
        units = [
            WorkUnit(
                shard=shard,
                inner=inner.name,
                options=options,
                crash_token=self._crash_token,
            )
            for shard in shards
        ]
        if serve is not None or connect:
            # Dial-out-only coordinators don't spawn local pullers: the
            # listening workers they connect to *are* the capacity.
            executor = SocketShardExecutor(
                spawn=count if serve is not None else 0,
                serve=serve,
                connect=connect,
                worker_args=self._worker_args,
            )
        else:
            executor = LocalShardExecutor(count)
        outcomes = executor.run(units)

        # Reassemble in realization order before aggregating: shards are
        # already sorted by (plan_index, shard_index), so a plain ordered
        # walk reproduces exactly the unit order local execution uses.
        per_plan: List[List[UnitOutcome]] = [[] for _ in plans]
        for shard in shards:
            key = (shard.plan_index, shard.shard_index)
            per_plan[shard.plan_index].extend(outcomes[key])
        return [
            self._aggregate(plan.task, results, plan.direct)
            for plan, results in zip(plans, per_plan)
        ]


# ---------------------------------------------------------------------------
# Worker CLI: python -m repro.runtime.distributed worker ...
# ---------------------------------------------------------------------------


def _worker_loop(sock: socket.socket, max_units: Optional[int] = None) -> bool:
    """Pull-and-execute until the coordinator says done; True on clean end.

    ``max_units`` is the failure-injection hook: the worker hard-exits
    (``os._exit``, no goodbye frame) right after *receiving* its Nth unit,
    so the coordinator sees a vanished connection with a shard in flight —
    exactly what a crash, OOM kill, or pulled cable looks like.
    """
    received = 0
    _send_msg(sock, {"type": "ready"})
    while True:
        message = _recv_msg(sock)
        if message is None:
            return False
        kind = message.get("type")
        if kind == "done":
            return True
        if kind == "wait":
            time.sleep(message.get("seconds", 0.05))
            _send_msg(sock, {"type": "ready"})
            continue
        if kind != "unit":
            continue
        received += 1
        if max_units is not None and received > max_units:
            os._exit(23)
        unit: WorkUnit = message["unit"]
        outcomes = execute_work_unit(unit)
        _send_msg(sock, {"type": "result", "key": unit.key, "results": outcomes})
        _send_msg(sock, {"type": "ready"})


def _run_worker(args: argparse.Namespace) -> int:
    if (args.connect is None) == (args.listen is None):
        print("worker: give exactly one of --connect or --listen", file=sys.stderr)
        return 2
    if args.connect is not None:
        try:
            sock = socket.create_connection(parse_address(args.connect), timeout=30)
        except OSError as exc:
            print(f"worker: cannot reach {args.connect}: {exc}", file=sys.stderr)
            return 1
        sock.settimeout(None)  # connect deadline only; waits have no bound
        try:
            _worker_loop(sock, max_units=args.max_units)
        finally:
            sock.close()
        return 0
    listener = socket.create_server(parse_address(args.listen, "0.0.0.0"))
    print(f"worker listening on {listener.getsockname()}", flush=True)
    try:
        while True:
            conn, _addr = listener.accept()
            try:
                _worker_loop(conn, max_units=args.max_units)
            finally:
                conn.close()
            if args.once:
                return 0
    finally:
        listener.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.distributed",
        description="Join (or offer capacity to) a distributed run.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    worker = commands.add_parser(
        "worker",
        help="pull and execute plan shards from a running coordinator",
        description=(
            "Execute plan shards for a coordinator. --connect dials a "
            "coordinator started with --dist-serve; --listen waits for a "
            "coordinator configured with --dist-connect to dial in."
        ),
    )
    worker.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="coordinator queue address to pull shards from",
    )
    worker.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="bind here and serve coordinators that dial in (--dist-connect)",
    )
    worker.add_argument(
        "--once",
        action="store_true",
        help="with --listen: exit after serving one coordinator",
    )
    worker.add_argument(
        "--max-units",
        type=int,
        default=None,
        metavar="N",
        help="exit abruptly after receiving N shards (failure-injection "
        "hook used by the recovery tests)",
    )
    args = parser.parse_args(argv)
    if args.command == "worker":
        return _run_worker(args)
    return 2

