"""Entry point for ``python -m repro.runtime.distributed``."""

import sys

from . import main

sys.exit(main())
