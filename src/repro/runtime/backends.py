"""Pluggable execution backends and the backend registry.

A :class:`Backend` turns a list of :class:`~repro.runtime.task.Task`
objects into :class:`~repro.runtime.task.TaskResult` objects. Two
implementations ship with the library:

* ``"trajectory"`` — the Monte-Carlo trajectory executor
  (:class:`repro.sim.Executor`); statistical errors shrink with ``shots``.
* ``"vectorized"`` — the batched trajectory engine
  (:class:`repro.sim.VectorizedExecutor`): all shots evolve together along
  the leading axis of one ``(shots, 2**n)`` array, sharded into
  bounded-memory chunks across ``workers``; bit-for-bit equal to
  ``"trajectory"`` for any seed and any worker/chunk configuration.
* ``"density"`` — the exact density-matrix simulator
  (:class:`repro.sim.DensityExecutor`); zero-variance values for small
  systems (``shots`` is ignored and reported as 0).
* ``"distributed"`` — shards compiled plans across worker processes (and,
  over the socket transport, other hosts) and merges the partial results
  (:class:`repro.runtime.distributed.DistributedBackend`); bit-for-bit
  identical to its inner backend (``"trajectory"`` by default) for every
  shard size, worker count, and transport.

Select one by name (``backend="trajectory"``) or register your own
(GPU, hardware-facing, ...) with :func:`register_backend`.

Since the plan/execute split, backends no longer compile anything: the
shared :func:`~repro.runtime.plan.compile_tasks` stage produces frozen
:class:`~repro.runtime.plan.ExecutionPlan` artifacts (scheduled circuits,
normalized payloads, derived seeds) and :meth:`Backend.execute_plans` turns
plans into results — :meth:`Backend.run` is just the two stages glued
together. Simulations are independently seeded, so fanning them out across
``workers`` threads never changes a value. Units that share a scheduled
circuit (a deterministic pipeline's realizations — possibly across tasks,
via the plan cache) share one engine, and with it the trajectory engines'
cached static coherent accumulation.
"""

from __future__ import annotations

import inspect
import math
import time
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.schedule import ScheduledCircuit
from ..device.calibration import Device
from ..sim.density import DensityExecutor
from ..sim.executor import Executor, SimOptions, SimResult
from ..sim.vectorized import VectorizedExecutor
from ..utils.rng import SeedLike
from .plan import USE_DEFAULT_CACHE, ExecutionPlan, PlanCache, PlanUnit, compile_tasks, plan_options
from .task import Task, TaskResult


class Backend(ABC):
    """Common interface: ``run(tasks, ...) -> list[TaskResult]``.

    A backend owns only the *execute* side of the plan/execute split: it
    turns frozen :class:`~repro.runtime.plan.ExecutionPlan` artifacts into
    :class:`~repro.runtime.task.TaskResult` objects
    (:meth:`execute_plans`), while :meth:`run` is the compile + execute
    stages glued together. Implementations provide two hooks —
    :meth:`_make_engine` (build a simulator for one scheduled circuit) and
    :meth:`_execute` (run one seeded simulation) — and inherit batching,
    worker fan-out, engine sharing, and realization aggregation.

    Register new backends (GPU, distributed, hardware-facing, ...) with
    :func:`register_backend`; select them by name in
    :func:`~repro.runtime.run.run`.
    """

    name: str = ""
    #: False for exact backends whose results ignore the unit seed; the
    #: executor then collapses a deterministic pipeline's realizations into
    #: one simulation instead of repeating identical exact evolutions.
    seed_sensitive: bool = True

    def run(
        self,
        tasks: Sequence[Task],
        device: Optional[Device] = None,
        options: Optional[SimOptions] = None,
        workers: int = 1,
        compile_workers: Optional[int] = None,
        cache: Optional[PlanCache] = USE_DEFAULT_CACHE,
        compile_mode: Optional[str] = None,
    ) -> List[TaskResult]:
        """Compile every task, then execute the plans; results keep order.

        Args:
            tasks: the tasks to compile and execute.
            device: default device for tasks without their own.
            workers: simulation thread-pool bound.
            compile_workers: compilation fan-out (default: ``workers``).
            cache: plan cache override; defaults to the configured
                process-wide cache (pass ``None`` to bypass caching).
            compile_mode: ``"thread"``/``"process"`` compile fan-out;
                ``None`` uses the configured default.

        Returns:
            One :class:`~repro.runtime.task.TaskResult` per task, in
            order. Tasks compile on their own RNG streams and simulate
            from derived seeds, so results are invariant under both worker
            counts and the compile mode.
        """
        options = options or SimOptions()
        plans = compile_tasks(
            tasks,
            device=device,
            options=options,
            workers=compile_workers if compile_workers is not None else workers,
            cache=cache,
            mode=compile_mode,
        )
        return self.execute_plans(plans, options=options, workers=workers)

    # -- execution -------------------------------------------------------------

    def execute_plans(
        self,
        plans: Sequence[ExecutionPlan],
        options: Optional[SimOptions] = None,
        workers: int = 1,
    ) -> List[TaskResult]:
        """Execute pre-built plans and return results in plan order.

        Exact backends (``seed_sensitive = False``) run only the first unit
        of a collapsible plan — repeating identical exact evolutions is pure
        waste. Engines are shared between units that share a scheduled
        circuit: a deterministic pipeline's realizations, and any plans the
        content-addressed cache resolved to the same artifact.
        ``options=None`` reuses the options the plans were compiled under.
        """
        if options is None:
            options = plan_options(plans)
        options = options or SimOptions()
        jobs: List[Tuple[int, PlanUnit]] = []
        for index, plan in enumerate(plans):
            units = plan.units
            if plan.collapsible and not self.seed_sensitive:
                units = units[:1]
            jobs.extend((index, unit) for unit in units)

        # Shared engines (same scheduled-circuit object) are built once,
        # sequentially, before the fan-out; per-unit engines are built
        # inside the job so that work parallelizes with the simulations.
        counts: Dict[Tuple[int, int], int] = {}
        for _index, unit in jobs:
            key = (id(unit.scheduled), id(unit.device))
            counts[key] = counts.get(key, 0) + 1
        engines: Dict[Tuple[int, int], Any] = {}
        for _index, unit in jobs:
            key = (id(unit.scheduled), id(unit.device))
            if counts[key] > 1 and key not in engines:
                engines[key] = self._make_engine(unit.scheduled, unit.device, options)

        # One job: backends that can shard *within* a simulation (the
        # vectorized engine's chunked shot axis) get the whole budget.
        # Backends written against the pre-1.2 _execute signature (no
        # ``workers``) keep working: the keyword is only passed when the
        # implementation accepts it.
        unit_workers = workers if len(jobs) == 1 else 1
        takes_workers = "workers" in inspect.signature(self._execute).parameters

        def job(entry: Tuple[int, PlanUnit]) -> Tuple[SimResult, float]:
            index, unit = entry
            start = time.perf_counter()
            engine = engines.get((id(unit.scheduled), id(unit.device)))
            if engine is None:
                engine = self._make_engine(unit.scheduled, unit.device, options)
            plan = plans[index]
            shots = plan.task.shots
            if takes_workers:
                result = self._execute(
                    engine, plan.kind, plan.payload, shots, unit.seed,
                    workers=unit_workers,
                )
            else:
                result = self._execute(engine, plan.kind, plan.payload, shots, unit.seed)
            return result, time.perf_counter() - start

        if workers > 1 and len(jobs) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(job, jobs))
        else:
            outcomes = [job(entry) for entry in jobs]

        per_plan: List[List[Tuple[SimResult, float]]] = [[] for _ in plans]
        for (index, _unit), outcome in zip(jobs, outcomes):
            per_plan[index].append(outcome)
        return [
            self._aggregate(plan.task, results, plan.direct)
            for plan, results in zip(plans, per_plan)
        ]

    # -- aggregation -----------------------------------------------------------

    def _aggregate(
        self, task: Task, results: List[Tuple[SimResult, float]], is_direct: bool
    ) -> TaskResult:
        elapsed = sum(t for _r, t in results)
        if is_direct:
            result = results[0][0]
            return TaskResult(
                values=result.values,
                errors=result.errors,
                shots=result.shots,
                name=task.name,
                backend=self.name,
                realizations=1,
                wall_time=elapsed,
            )
        # Pool realization means exactly like average_over_realizations.
        pooled: Dict[str, List[float]] = {}
        total = 0
        for result, _t in results:
            for key, value in result.values.items():
                pooled.setdefault(key, []).append(value)
            total += result.shots
        values = {k: float(np.mean(v)) for k, v in pooled.items()}
        errors = {
            k: float(np.std(v, ddof=1) / math.sqrt(len(v))) if len(v) > 1 else 0.0
            for k, v in pooled.items()
        }
        return TaskResult(
            values=values,
            errors=errors,
            shots=total,
            name=task.name,
            backend=self.name,
            realizations=len(results),
            wall_time=elapsed,
        )

    # -- backend-specific hooks ------------------------------------------------

    @abstractmethod
    def _make_engine(
        self, scheduled: ScheduledCircuit, device: Device, options: SimOptions
    ) -> Any:
        """Build the simulation engine for one scheduled circuit."""

    @abstractmethod
    def _execute(
        self,
        engine: Any,
        kind: str,
        payload: Dict,
        shots: Optional[int],
        seed: SeedLike,
        workers: int = 1,
    ) -> SimResult:
        """Run one seeded simulation and return a ``SimResult``.

        ``workers`` is the thread budget a backend may use to shard the
        simulation internally (results must not depend on it).
        """


class TrajectoryBackend(Backend):
    """Monte-Carlo trajectories via :class:`repro.sim.Executor`."""

    name = "trajectory"

    def _make_engine(self, scheduled, device, options) -> Executor:
        return Executor(scheduled, device, options)

    def _execute(self, engine, kind, payload, shots, seed, workers=1) -> SimResult:
        if kind == "expectations":
            return engine.expectations(payload, shots=shots, seed=seed)
        return engine.probabilities(payload, shots=shots, seed=seed)


class VectorizedBackend(Backend):
    """Batched trajectories via :class:`repro.sim.VectorizedExecutor`.

    Seed-for-seed bit-identical to :class:`TrajectoryBackend`: the same
    noise draws are consumed from the same streams in the same order, and
    every batched floating-point operation reproduces the scalar bits.
    ``chunk_shots`` bounds the states resident per chunk; ``None`` defers
    to the process-wide ``configure(chunk_shots=...)`` default — read at
    engine-construction time, so a long-lived backend instance tracks
    reconfiguration — which is itself auto-sizing when unset. Any
    chunk/worker configuration yields the same values.
    """

    name = "vectorized"

    def __init__(self, chunk_shots: Optional[int] = None):
        self.chunk_shots = chunk_shots

    def _make_engine(self, scheduled, device, options) -> VectorizedExecutor:
        chunk_shots = self.chunk_shots
        if chunk_shots is None:
            from .run import default_chunk_shots  # local: run.py imports us

            chunk_shots = default_chunk_shots()
        return VectorizedExecutor(
            scheduled, device, options, chunk_shots=chunk_shots
        )

    def _execute(self, engine, kind, payload, shots, seed, workers=1) -> SimResult:
        if kind == "expectations":
            return engine.expectations(
                payload, shots=shots, seed=seed, workers=workers
            )
        return engine.probabilities(payload, shots=shots, seed=seed, workers=workers)


class DensityBackend(Backend):
    """Exact density-matrix evolution via :class:`repro.sim.DensityExecutor`.

    Values are exact under the averaged noise model (zero variance), so
    per-unit errors are 0 and ``shots`` is reported as 0. Twirl sampling
    still follows the task's realization stream, so realization averages
    use the same twirls as the trajectory backend.
    """

    name = "density"
    seed_sensitive = False

    def _make_engine(self, scheduled, device, options) -> DensityExecutor:
        return DensityExecutor(scheduled, device, options)

    def _execute(self, engine, kind, payload, shots, seed, workers=1) -> SimResult:
        if kind == "expectations":
            values = engine.expectations(payload)
        else:
            values = engine.probabilities(payload)
        return SimResult(
            values={k: float(v) for k, v in values.items()},
            errors={k: 0.0 for k in values},
            shots=0,
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

BackendLike = Union[str, Backend]

BACKENDS: Dict[str, Callable[[], Backend]] = {}


def register_backend(
    name: str, factory: Callable[[], Backend], overwrite: bool = False
) -> None:
    """Register a backend factory under ``name`` for use by ``run()``.

    Args:
        name: the identifier users pass as ``run(..., backend=name)`` (or
            ``--backend name`` on the CLI).
        factory: zero-argument callable returning a fresh
            :class:`Backend` instance (typically the class itself).
        overwrite: allow replacing an existing registration; without it a
            name collision raises ``ValueError``.

    Example:
        >>> register_backend("my-engine", MyBackend)  # doctest: +SKIP
        >>> run(tasks, device, backend="my-engine")   # doctest: +SKIP
    """
    if name in BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    BACKENDS[name] = factory


def get_backend(spec: BackendLike) -> Backend:
    """Resolve a backend instance from a name or pass one through."""
    if isinstance(spec, Backend):
        return spec
    try:
        factory = BACKENDS[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {spec!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return factory()


def _distributed_backend() -> Backend:
    # Imported lazily: distributed.py builds on this module.
    from .distributed import DistributedBackend

    return DistributedBackend()


register_backend("trajectory", TrajectoryBackend)
register_backend("vectorized", VectorizedBackend)
register_backend("density", DensityBackend)
register_backend("distributed", _distributed_backend)
