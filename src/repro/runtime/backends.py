"""Pluggable execution backends and the backend registry.

A :class:`Backend` turns a list of :class:`~repro.runtime.task.Task`
objects into :class:`~repro.runtime.task.TaskResult` objects. Two
implementations ship with the library:

* ``"trajectory"`` — the Monte-Carlo trajectory executor
  (:class:`repro.sim.Executor`); statistical errors shrink with ``shots``.
* ``"vectorized"`` — the batched trajectory engine
  (:class:`repro.sim.VectorizedExecutor`): all shots evolve together along
  the leading axis of one ``(shots, 2**n)`` array, sharded into
  bounded-memory chunks across ``workers``; bit-for-bit equal to
  ``"trajectory"`` for any seed and any worker/chunk configuration.
* ``"density"`` — the exact density-matrix simulator
  (:class:`repro.sim.DensityExecutor`); zero-variance values for small
  systems (``shots`` is ignored and reported as 0).

Select one by name (``backend="trajectory"``) or register your own
(GPU, distributed, hardware-facing, ...) with :func:`register_backend`.

The shared batching machinery compiles every realization *sequentially* on
the caller's thread — preserving the exact RNG draw order of the legacy
single-task loops — and only fans the (independently seeded) simulations
out across workers, so results are identical for any ``workers`` value.
Tasks whose pipeline is deterministic are compiled and scheduled once, and
the trajectory executor's cached static coherent accumulation is shared
across all their realizations.
"""

from __future__ import annotations

import inspect
import math
import time
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.schedule import ScheduledCircuit, schedule
from ..device.calibration import Device
from ..pauli.pauli import Pauli
from ..sim.density import DensityExecutor
from ..sim.executor import Executor, SimOptions, SimResult
from ..sim.vectorized import VectorizedExecutor
from ..utils.rng import SeedLike, as_generator
from .pipeline import as_pipeline
from .task import CircuitLike, Task, TaskResult


@dataclass
class _Unit:
    """One simulation job: a compiled circuit with its own seed."""

    task_index: int
    circuit: CircuitLike
    device: Device
    seed: SeedLike
    engine: Any = None  # pre-built engine shared across a task's realizations


def _as_scheduled(circuit: CircuitLike, device: Device) -> ScheduledCircuit:
    if isinstance(circuit, ScheduledCircuit):
        return circuit
    return schedule(circuit, device.durations)


def _normalize_payload(task: Task) -> Tuple[str, Dict]:
    if task.observables is not None:
        paulis = {
            k: (Pauli.from_label(v) if isinstance(v, str) else v)
            for k, v in task.observables.items()
        }
        return "expectations", paulis
    return "probabilities", dict(task.bit_targets)


class Backend(ABC):
    """Common interface: ``run(tasks, ...) -> list[TaskResult]``."""

    name: str = ""
    #: False for exact backends whose results ignore the unit seed; the
    #: batcher then collapses a deterministic pipeline's realizations into
    #: one simulation instead of repeating identical exact evolutions.
    seed_sensitive: bool = True

    def run(
        self,
        tasks: Sequence[Task],
        device: Optional[Device] = None,
        options: Optional[SimOptions] = None,
        workers: int = 1,
    ) -> List[TaskResult]:
        """Execute every task and return results in task order.

        ``device`` is the default for tasks without their own; ``workers``
        bounds the simulation thread pool (compilation stays sequential so
        RNG streams — and therefore results — are worker-count invariant).
        """
        options = options or SimOptions()
        payloads = [_normalize_payload(task) for task in tasks]
        units: List[_Unit] = []
        direct: List[bool] = []
        for index, task in enumerate(tasks):
            task_device = task.device or device
            if task_device is None:
                raise ValueError(f"task {index} has no device and no default given")
            task_units, is_direct = self._prepare(index, task, task_device, options)
            units.extend(task_units)
            direct.append(is_direct)

        outcomes = self._execute_units(units, tasks, payloads, options, workers)

        per_task: List[List[Tuple[SimResult, float]]] = [[] for _ in tasks]
        for unit, outcome in zip(units, outcomes):
            per_task[unit.task_index].append(outcome)
        return [
            self._aggregate(task, results, direct[i])
            for i, (task, results) in enumerate(zip(tasks, per_task))
        ]

    # -- preparation (sequential: preserves RNG draw order) -------------------

    def _prepare(
        self, index: int, task: Task, device: Device, options: SimOptions
    ) -> Tuple[List[_Unit], bool]:
        """Compile a task's realizations into seeded simulation units."""
        if task.factory is None and task.pipeline is None and task.realizations == 1:
            # Raw execution: the circuit runs as-is, seeded directly
            # (matching expectation_values / bit_probabilities).
            return [_Unit(index, task.circuit, device, task.seed)], True

        rng = as_generator(task.seed if task.seed is not None else options.seed)
        units: List[_Unit] = []
        if task.factory is not None:
            for _ in range(task.realizations):
                compiled = task.factory(rng)
                sub_seed = int(rng.integers(0, 2**63 - 1))
                units.append(_Unit(index, compiled, device, sub_seed))
            return units, False

        pipeline = as_pipeline(task.pipeline)
        if pipeline.is_deterministic:
            # One compile + one schedule; the engine (and, for the
            # trajectory backend, its cached static coherent accumulation)
            # is shared by every realization.
            compiled = pipeline.compile(task.circuit, device, seed=rng)
            engine = self._make_engine(_as_scheduled(compiled, device), device, options)
            count = task.realizations if self.seed_sensitive else 1
            for _ in range(count):
                sub_seed = int(rng.integers(0, 2**63 - 1))
                units.append(_Unit(index, compiled, device, sub_seed, engine=engine))
        else:
            for _ in range(task.realizations):
                compiled = pipeline.compile(task.circuit, device, seed=rng)
                sub_seed = int(rng.integers(0, 2**63 - 1))
                units.append(_Unit(index, compiled, device, sub_seed))
        return units, False

    # -- execution -------------------------------------------------------------

    def _execute_units(
        self,
        units: List[_Unit],
        tasks: Sequence[Task],
        payloads: List[Tuple[str, Dict]],
        options: SimOptions,
        workers: int,
    ) -> List[Tuple[SimResult, float]]:
        # One unit: backends that can shard *within* a simulation (the
        # vectorized engine's chunked shot axis) get the whole budget.
        # Backends written against the pre-1.2 _execute signature (no
        # ``workers``) keep working: the keyword is only passed when the
        # implementation accepts it.
        unit_workers = workers if len(units) == 1 else 1
        takes_workers = "workers" in inspect.signature(self._execute).parameters

        def job(unit: _Unit) -> Tuple[SimResult, float]:
            start = time.perf_counter()
            engine = unit.engine
            if engine is None:
                engine = self._make_engine(
                    _as_scheduled(unit.circuit, unit.device), unit.device, options
                )
            kind, payload = payloads[unit.task_index]
            shots = tasks[unit.task_index].shots
            if takes_workers:
                result = self._execute(
                    engine, kind, payload, shots, unit.seed, workers=unit_workers
                )
            else:
                result = self._execute(engine, kind, payload, shots, unit.seed)
            return result, time.perf_counter() - start

        if workers > 1 and len(units) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(job, units))
        return [job(unit) for unit in units]

    # -- aggregation -----------------------------------------------------------

    def _aggregate(
        self, task: Task, results: List[Tuple[SimResult, float]], is_direct: bool
    ) -> TaskResult:
        elapsed = sum(t for _r, t in results)
        if is_direct:
            result = results[0][0]
            return TaskResult(
                values=result.values,
                errors=result.errors,
                shots=result.shots,
                name=task.name,
                backend=self.name,
                realizations=1,
                wall_time=elapsed,
            )
        # Pool realization means exactly like average_over_realizations.
        pooled: Dict[str, List[float]] = {}
        total = 0
        for result, _t in results:
            for key, value in result.values.items():
                pooled.setdefault(key, []).append(value)
            total += result.shots
        values = {k: float(np.mean(v)) for k, v in pooled.items()}
        errors = {
            k: float(np.std(v, ddof=1) / math.sqrt(len(v))) if len(v) > 1 else 0.0
            for k, v in pooled.items()
        }
        return TaskResult(
            values=values,
            errors=errors,
            shots=total,
            name=task.name,
            backend=self.name,
            realizations=len(results),
            wall_time=elapsed,
        )

    # -- backend-specific hooks ------------------------------------------------

    @abstractmethod
    def _make_engine(
        self, scheduled: ScheduledCircuit, device: Device, options: SimOptions
    ) -> Any:
        """Build the simulation engine for one scheduled circuit."""

    @abstractmethod
    def _execute(
        self,
        engine: Any,
        kind: str,
        payload: Dict,
        shots: Optional[int],
        seed: SeedLike,
        workers: int = 1,
    ) -> SimResult:
        """Run one seeded simulation and return a ``SimResult``.

        ``workers`` is the thread budget a backend may use to shard the
        simulation internally (results must not depend on it).
        """


class TrajectoryBackend(Backend):
    """Monte-Carlo trajectories via :class:`repro.sim.Executor`."""

    name = "trajectory"

    def _make_engine(self, scheduled, device, options) -> Executor:
        return Executor(scheduled, device, options)

    def _execute(self, engine, kind, payload, shots, seed, workers=1) -> SimResult:
        if kind == "expectations":
            return engine.expectations(payload, shots=shots, seed=seed)
        return engine.probabilities(payload, shots=shots, seed=seed)


class VectorizedBackend(Backend):
    """Batched trajectories via :class:`repro.sim.VectorizedExecutor`.

    Seed-for-seed bit-identical to :class:`TrajectoryBackend`: the same
    noise draws are consumed from the same streams in the same order, and
    every batched floating-point operation reproduces the scalar bits.
    ``chunk_shots`` bounds the states resident per chunk (``None``
    auto-sizes); any chunk/worker configuration yields the same values.
    """

    name = "vectorized"

    def __init__(self, chunk_shots: Optional[int] = None):
        self.chunk_shots = chunk_shots

    def _make_engine(self, scheduled, device, options) -> VectorizedExecutor:
        return VectorizedExecutor(
            scheduled, device, options, chunk_shots=self.chunk_shots
        )

    def _execute(self, engine, kind, payload, shots, seed, workers=1) -> SimResult:
        if kind == "expectations":
            return engine.expectations(
                payload, shots=shots, seed=seed, workers=workers
            )
        return engine.probabilities(payload, shots=shots, seed=seed, workers=workers)


class DensityBackend(Backend):
    """Exact density-matrix evolution via :class:`repro.sim.DensityExecutor`.

    Values are exact under the averaged noise model (zero variance), so
    per-unit errors are 0 and ``shots`` is reported as 0. Twirl sampling
    still follows the task's realization stream, so realization averages
    use the same twirls as the trajectory backend.
    """

    name = "density"
    seed_sensitive = False

    def _make_engine(self, scheduled, device, options) -> DensityExecutor:
        return DensityExecutor(scheduled, device, options)

    def _execute(self, engine, kind, payload, shots, seed, workers=1) -> SimResult:
        if kind == "expectations":
            values = engine.expectations(payload)
        else:
            values = engine.probabilities(payload)
        return SimResult(
            values={k: float(v) for k, v in values.items()},
            errors={k: 0.0 for k in values},
            shots=0,
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

BackendLike = Union[str, Backend]

BACKENDS: Dict[str, Callable[[], Backend]] = {}


def register_backend(
    name: str, factory: Callable[[], Backend], overwrite: bool = False
) -> None:
    """Register a backend factory under ``name`` for use by ``run()``."""
    if name in BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    BACKENDS[name] = factory


def get_backend(spec: BackendLike) -> Backend:
    """Resolve a backend instance from a name or pass one through."""
    if isinstance(spec, Backend):
        return spec
    try:
        factory = BACKENDS[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {spec!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return factory()


register_backend("trajectory", TrajectoryBackend)
register_backend("vectorized", VectorizedBackend)
register_backend("density", DensityBackend)
