"""Frozen execution plans: the compile side of the plan/execute split.

Compilation and execution used to be interleaved inside each
:class:`~repro.runtime.backends.Backend`. This module lifts the compile
stage out into a shared, backend-agnostic artifact:

* :func:`compile_tasks` turns a list of :class:`~repro.runtime.task.Task`
  objects into :class:`ExecutionPlan` artifacts — the scheduled circuit of
  every realization, the normalized measurement payload, and the derived
  per-realization seeds. Every backend (``trajectory``, ``vectorized``,
  ``density``) consumes the same plans.
* Because each task owns its RNG stream (seeded from ``task.seed``),
  compilation is embarrassingly parallel **across** tasks: ``workers > 1``
  fans tasks out over a thread pool while each task's in-order realization
  loop stays sequential, so plans are bit-for-bit identical for any worker
  count.
* :class:`PlanCache` is a content-addressed cache keyed on (circuit
  fingerprint, pipeline fingerprint, device fingerprint). Deterministic
  pipelines compile and schedule once per distinct content key — across
  tasks and across ``run()`` calls, not just within one task — and because
  cache hits return the *same* scheduled-circuit object, backends also share
  one engine (and, for the trajectory engines, the cached static coherent
  accumulation) for every realization that hits the same key. Simulation
  options never enter the key: they do not affect compilation or
  scheduling; they are applied at engine-construction time.

Caching never changes results: only pipelines whose passes consume no
randomness are cacheable, and the per-realization sub-seeds are always
drawn fresh from the task's own stream, so a warm cache changes nothing
but wall time.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.schedule import ScheduledCircuit, schedule
from ..device.calibration import Device
from ..pauli.pauli import Pauli
from ..sim.executor import SimOptions
from ..utils.rng import SeedLike, as_generator
from .pipeline import Pipeline, as_pipeline
from .task import CircuitLike, Task


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def _hasher() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=16)


def circuit_fingerprint(circuit: CircuitLike) -> str:
    """Content hash of a circuit (or scheduled circuit).

    Covers everything that determines compilation and simulation: gate
    identities (name, params, matrix bytes for custom gates), qubit/clbit
    wiring, classical conditions, tags, and moment structure. Two circuits
    with equal fingerprints compile and schedule identically on the same
    device.
    """
    h = _hasher()
    if isinstance(circuit, ScheduledCircuit):
        h.update(repr(circuit.durations).encode())
        circuit = circuit.circuit
    h.update(f"{circuit.num_qubits}/{circuit.num_clbits}".encode())
    for moment in circuit.moments:
        h.update(b"|")
        for inst in moment:
            gate = inst.gate
            h.update(
                repr(
                    (
                        gate.name,
                        gate.num_qubits,
                        gate.params,
                        gate.is_measurement,
                        gate.is_delay,
                        gate.dd_fractions,
                        gate.flip_fractions,
                        gate.duration_override,
                        gate.error_scale,
                        inst.qubits,
                        inst.clbits,
                        inst.condition,
                        inst.tag,
                    )
                ).encode()
            )
            if gate.matrix is not None:
                h.update(gate.matrix.tobytes())
    return h.hexdigest()


def device_fingerprint(device: Device) -> str:
    """Content hash of a device's calibration, topology, and timing."""
    h = _hasher()
    h.update(
        repr(
            (
                device.name,
                device.topology.num_qubits,
                device.topology.edges,
                device.qubits,
                sorted(device.pairs.items()),
                sorted(device.nnn_zz.items()),
                device.durations,
            )
        ).encode()
    )
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Plan artifacts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanUnit:
    """One seeded simulation job inside a plan.

    Units of a deterministic-pipeline task share one ``scheduled`` object
    (possibly shared further across tasks via the plan cache); backends key
    engine reuse on that identity.
    """

    circuit: CircuitLike
    scheduled: ScheduledCircuit
    device: Device
    seed: SeedLike


@dataclass(frozen=True)
class ExecutionPlan:
    """A frozen, backend-agnostic compilation of one task.

    Attributes:
        task: the originating task (name/shots/realizations metadata).
        kind: ``"expectations"`` or ``"probabilities"``.
        payload: normalized observables (``Pauli`` objects) or bit targets.
        units: the seeded simulation jobs, in realization order.
        direct: raw single-circuit execution — the unit seed (which may be
            ``None``) goes straight to the simulator, like the legacy
            ``expectation_values`` path.
        collapsible: the task's pipeline is deterministic, so backends whose
            results ignore the unit seed (exact backends) may execute only
            the first unit instead of repeating identical evolutions.
        options: the simulation options the plan was compiled under. The
            realization sub-seeds of tasks without their own ``seed`` were
            drawn from ``options.seed`` at compile time, so executing the
            plan under these options reproduces ``run(tasks, options=...)``
            exactly — ``run(plans)`` defaults to them.
        compile_seconds: wall time spent compiling + scheduling this plan.
        cache_hits / cache_misses: plan-cache activity while compiling.
    """

    task: Task
    kind: str
    payload: Dict
    units: Tuple[PlanUnit, ...]
    direct: bool = False
    collapsible: bool = False
    options: Optional[SimOptions] = None
    compile_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0


def plan_options(plans: Sequence["ExecutionPlan"]) -> Optional[SimOptions]:
    """The single set of options a batch of plans was compiled under.

    ``None`` when no plan recorded options. Raises if the plans disagree —
    executing them under any one plan's options would silently change the
    other plans' noise model (run them separately, or pass options
    explicitly).
    """
    recorded = {p.options for p in plans if p.options is not None}
    if len(recorded) > 1:
        raise ValueError(
            "plans were compiled under different options; execute them "
            "separately or pass options= explicitly"
        )
    return next(iter(recorded)) if recorded else None


def _normalize_payload(task: Task) -> Tuple[str, Dict]:
    if task.observables is not None:
        paulis = {
            k: (Pauli.from_label(v) if isinstance(v, str) else v)
            for k, v in task.observables.items()
        }
        return "expectations", paulis
    return "probabilities", dict(task.bit_targets)


def _as_scheduled(circuit: CircuitLike, device: Device) -> ScheduledCircuit:
    if isinstance(circuit, ScheduledCircuit):
        return circuit
    return schedule(circuit, device.durations)


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


class PlanCache:
    """Content-addressed LRU cache of compiled + scheduled circuits.

    Keys are ``(circuit fingerprint, pipeline fingerprint, device
    fingerprint)`` strings; values are the ``(compiled, scheduled)`` pair a
    deterministic pipeline produced for that content. Thread-safe: lookups
    take a lock, compilation happens outside it, and on a race the first
    stored value wins so every caller shares one scheduled object.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, Tuple[CircuitLike, ScheduledCircuit]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}

    def get_or_compile(
        self, key: str, build: Callable[[], Tuple[CircuitLike, ScheduledCircuit]]
    ) -> Tuple[Tuple[CircuitLike, ScheduledCircuit], bool]:
        """Return ``((compiled, scheduled), hit)`` for ``key``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry, True
            self.misses += 1
        built = build()
        with self._lock:
            entry = self._entries.setdefault(key, built)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return entry, False


#: Process-wide default cache used by :func:`compile_tasks` (and therefore
#: by ``run()``). Cleared with ``PLAN_CACHE.clear()``.
PLAN_CACHE = PlanCache()


# ---------------------------------------------------------------------------
# The shared compile stage
# ---------------------------------------------------------------------------


def _compile_one(
    task: Task,
    device: Optional[Device],
    options: SimOptions,
    cache: Optional[PlanCache],
    device_fp: Callable[[Device], Optional[str]],
    index: int,
) -> ExecutionPlan:
    start = time.perf_counter()
    task_device = task.device or device
    if task_device is None:
        raise ValueError(f"task {index} has no device and no default given")
    kind, payload = _normalize_payload(task)
    hits = misses = 0

    def finish(units, direct=False, collapsible=False):
        return ExecutionPlan(
            task=task,
            kind=kind,
            payload=payload,
            units=tuple(units),
            direct=direct,
            collapsible=collapsible,
            options=options,
            compile_seconds=time.perf_counter() - start,
            cache_hits=hits,
            cache_misses=misses,
        )

    if task.factory is None and task.pipeline is None and task.realizations == 1:
        # Raw execution: the circuit runs as-is, seeded directly (matching
        # expectation_values / bit_probabilities). Deliberately uncached:
        # raw circuits are essentially never content-repeated, so hashing
        # them would only pollute the LRU.
        scheduled = _as_scheduled(task.circuit, task_device)
        return finish(
            [PlanUnit(task.circuit, scheduled, task_device, task.seed)],
            direct=True,
        )

    rng = as_generator(task.seed if task.seed is not None else options.seed)
    units: List[PlanUnit] = []
    if task.factory is not None:
        for _ in range(task.realizations):
            compiled = task.factory(rng)
            sub_seed = int(rng.integers(0, 2**63 - 1))
            units.append(
                PlanUnit(
                    compiled, _as_scheduled(compiled, task_device), task_device, sub_seed
                )
            )
        return finish(units)

    pipeline = as_pipeline(task.pipeline)
    if pipeline.is_deterministic:
        # One compile + one schedule, shared by every realization. The
        # deterministic pipeline draws nothing from ``rng``, so a cache hit
        # (skipping the compile entirely) leaves the seed stream — and
        # therefore every simulated value — untouched.
        def build() -> Tuple[CircuitLike, ScheduledCircuit]:
            out = pipeline.compile(task.circuit, task_device, seed=rng)
            return out, _as_scheduled(out, task_device)

        dev_fp = device_fp(task_device) if cache is not None else None
        pipe_fp = pipeline.fingerprint if cache is not None else None
        if cache is not None and pipe_fp is not None and dev_fp is not None:
            key = f"{circuit_fingerprint(task.circuit)}:{pipe_fp}:{dev_fp}"
            (compiled, scheduled), hit = cache.get_or_compile(key, build)
            if hit:
                hits += 1
            else:
                misses += 1
        else:
            compiled, scheduled = build()
        for _ in range(task.realizations):
            sub_seed = int(rng.integers(0, 2**63 - 1))
            units.append(PlanUnit(compiled, scheduled, task_device, sub_seed))
        return finish(units, collapsible=True)

    for _ in range(task.realizations):
        compiled = pipeline.compile(task.circuit, task_device, seed=rng)
        sub_seed = int(rng.integers(0, 2**63 - 1))
        units.append(
            PlanUnit(
                compiled, _as_scheduled(compiled, task_device), task_device, sub_seed
            )
        )
    return finish(units)


def compile_tasks(
    tasks: Sequence[Task],
    device: Optional[Device] = None,
    options: Optional[SimOptions] = None,
    workers: int = 1,
    cache: Optional[PlanCache] = PLAN_CACHE,
) -> List[ExecutionPlan]:
    """Compile every task into a frozen :class:`ExecutionPlan`.

    ``device`` is the default for tasks without their own. ``workers``
    bounds the compilation thread pool — tasks compile independently on
    their own RNG streams, so plans (and therefore results) are identical
    for any worker count; within a task, realizations always compile
    sequentially in stream order. Tasks without their own ``seed`` derive
    their realization stream from ``options.seed`` *now*, at compile time —
    the plans record ``options`` so that executing them (``run(plans)``)
    defaults to the matching configuration. Pass ``cache=None`` to disable
    the content-addressed plan cache for this call.
    """
    if isinstance(tasks, Task):
        tasks = [tasks]
    options = options or SimOptions()
    if workers < 1:
        raise ValueError("workers must be >= 1")

    # Device fingerprints are content hashes of calibration data; memoize
    # per distinct object so a 100-point sweep hashes its device once.
    fp_memo: Dict[int, str] = {}
    fp_lock = threading.Lock()

    def device_fp(dev: Device) -> str:
        key = id(dev)
        with fp_lock:
            fp = fp_memo.get(key)
        if fp is None:
            fp = device_fingerprint(dev)
            with fp_lock:
                fp_memo[key] = fp
        return fp

    def job(pair: Tuple[int, Task]) -> ExecutionPlan:
        index, task = pair
        return _compile_one(task, device, options, cache, device_fp, index)

    if workers > 1 and len(tasks) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(job, enumerate(tasks)))
    return [job(pair) for pair in enumerate(tasks)]
