"""Frozen execution plans: the compile side of the plan/execute split.

Compilation and execution used to be interleaved inside each
:class:`~repro.runtime.backends.Backend`. This module lifts the compile
stage out into a shared, backend-agnostic artifact:

* :func:`compile_tasks` turns a list of :class:`~repro.runtime.task.Task`
  objects into :class:`ExecutionPlan` artifacts — the scheduled circuit of
  every realization, the normalized measurement payload, and the derived
  per-realization seeds. Every backend (``trajectory``, ``vectorized``,
  ``density``) consumes the same plans.
* Because each task owns its RNG stream (seeded from ``task.seed``),
  compilation is embarrassingly parallel **across** tasks: ``workers > 1``
  fans tasks out over a thread pool while each task's in-order realization
  loop stays sequential, so plans are bit-for-bit identical for any worker
  count.
* :class:`PlanCache` is a content-addressed cache keyed on (circuit
  fingerprint, pipeline fingerprint, device fingerprint). Deterministic
  pipelines compile and schedule once per distinct content key — across
  tasks and across ``run()`` calls, not just within one task — and because
  cache hits return the *same* scheduled-circuit object, backends also share
  one engine (and, for the trajectory engines, the cached static coherent
  accumulation) for every realization that hits the same key. Simulation
  options never enter the key: they do not affect compilation or
  scheduling; they are applied at engine-construction time.
* The cache optionally persists through a disk-backed
  :class:`~repro.runtime.store.PlanStore`, so the warm start survives
  process boundaries: a second CLI invocation of the same figure loads its
  schedules instead of recompiling them. Select with
  ``configure(plan_cache="off" | "memory" | "disk")`` (or
  :func:`configure_plan_cache` directly); ``plan_cache_dir`` overrides the
  default ``~/.cache/repro-plans`` location.
* ``compile_tasks(..., mode="process")`` fans the compile stage out over a
  ``ProcessPoolExecutor`` instead of threads — plans are frozen and
  picklable by design, so pure-Python pass pipelines scale with cores
  instead of fighting the GIL. Results stay bit-for-bit identical for
  every (mode × workers) combination.

Caching never changes results: only pipelines whose passes consume no
randomness are cacheable, and the per-realization sub-seeds are always
drawn fresh from the task's own stream, so a warm cache changes nothing
but wall time.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.schedule import ScheduledCircuit, schedule
from ..device.calibration import Device
from ..pauli.pauli import Pauli
from ..sim.executor import SimOptions
from ..utils.rng import SeedLike, as_generator
from .pipeline import as_pipeline
from .store import DEFAULT_MAX_BYTES, PlanStore
from .task import CircuitLike, Task


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def _hasher() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=16)


def circuit_fingerprint(circuit: CircuitLike) -> str:
    """Content hash of a circuit (or scheduled circuit).

    Covers everything that determines compilation and simulation: gate
    identities (name, params, matrix bytes for custom gates), qubit/clbit
    wiring, classical conditions, tags, and moment structure. Two circuits
    with equal fingerprints compile and schedule identically on the same
    device.
    """
    h = _hasher()
    if isinstance(circuit, ScheduledCircuit):
        h.update(repr(circuit.durations).encode())
        circuit = circuit.circuit
    h.update(f"{circuit.num_qubits}/{circuit.num_clbits}".encode())
    for moment in circuit.moments:
        h.update(b"|")
        for inst in moment:
            gate = inst.gate
            h.update(
                repr(
                    (
                        gate.name,
                        gate.num_qubits,
                        gate.params,
                        gate.is_measurement,
                        gate.is_delay,
                        gate.dd_fractions,
                        gate.flip_fractions,
                        gate.duration_override,
                        gate.error_scale,
                        inst.qubits,
                        inst.clbits,
                        inst.condition,
                        inst.tag,
                    )
                ).encode()
            )
            if gate.matrix is not None:
                h.update(gate.matrix.tobytes())
    return h.hexdigest()


def device_fingerprint(device: Device) -> str:
    """Content hash of a device's calibration, topology, and timing."""
    h = _hasher()
    h.update(
        repr(
            (
                device.name,
                device.topology.num_qubits,
                device.topology.edges,
                device.qubits,
                sorted(device.pairs.items()),
                sorted(device.nnn_zz.items()),
                device.durations,
            )
        ).encode()
    )
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Plan artifacts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanUnit:
    """One seeded simulation job inside a plan.

    Units of a deterministic-pipeline task share one ``scheduled`` object
    (possibly shared further across tasks via the plan cache); backends key
    engine reuse on that identity. ``cache_key`` records the plan-cache
    content key the unit's artifact lives under (``None`` when uncached) —
    process-parallel compilation uses it to re-intern units produced in
    worker processes so engine sharing survives the pickle round-trip.
    """

    circuit: CircuitLike
    scheduled: ScheduledCircuit
    device: Device
    seed: SeedLike
    cache_key: Optional[str] = None


@dataclass(frozen=True)
class ExecutionPlan:
    """A frozen, backend-agnostic compilation of one task.

    Attributes:
        task: the originating task (name/shots/realizations metadata).
        kind: ``"expectations"`` or ``"probabilities"``.
        payload: normalized observables (``Pauli`` objects) or bit targets.
        units: the seeded simulation jobs, in realization order.
        direct: raw single-circuit execution — the unit seed (which may be
            ``None``) goes straight to the simulator, like the legacy
            ``expectation_values`` path.
        collapsible: the task's pipeline is deterministic, so backends whose
            results ignore the unit seed (exact backends) may execute only
            the first unit instead of repeating identical evolutions.
        options: the simulation options the plan was compiled under. The
            realization sub-seeds of tasks without their own ``seed`` were
            drawn from ``options.seed`` at compile time, so executing the
            plan under these options reproduces ``run(tasks, options=...)``
            exactly — ``run(plans)`` defaults to them.
        compile_seconds: wall time spent compiling + scheduling this plan.
        cache_hits / cache_misses: plan-cache activity while compiling.
    """

    task: Task
    kind: str
    payload: Dict
    units: Tuple[PlanUnit, ...]
    direct: bool = False
    collapsible: bool = False
    options: Optional[SimOptions] = None
    compile_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(frozen=True)
class PlanShard:
    """A self-contained slice of one plan's simulation units.

    Shards are the shipping unit of distributed execution
    (:mod:`repro.runtime.distributed`): everything a worker needs to run a
    contiguous block of realizations — scheduled circuits, devices, derived
    seeds, the normalized payload — and nothing it doesn't. In particular a
    shard carries no :class:`~repro.runtime.task.Task`, so it pickles even
    when the originating task holds an unpicklable realization factory;
    aggregation happens coordinator-side against the full plan. Because the
    per-unit seeds were derived from the plan at compile time, *where* a
    shard executes (which worker, which host, which transport) can never
    change a value.

    Attributes:
        plan_index: position of the originating plan in the batch.
        shard_index: position of this shard within its plan.
        start: offset of ``units[0]`` in the plan's unit tuple.
        kind: ``"expectations"`` or ``"probabilities"``.
        payload: the plan's normalized measurement payload.
        shots: the originating task's shot override (``None`` defers to the
            simulation options, exactly as in local execution).
        direct: the plan was a raw single-circuit execution.
        units: the seeded simulation jobs, in realization order.
        options: the options the plan was compiled under (``None`` when the
            plan recorded none); workers execute under these by default.
    """

    plan_index: int
    shard_index: int
    start: int
    kind: str
    payload: Dict
    shots: Optional[int]
    direct: bool
    units: Tuple[PlanUnit, ...]
    options: Optional[SimOptions] = None


def shard_plans(
    plans: Sequence["ExecutionPlan"],
    shard_size: int,
    seed_sensitive: bool = True,
) -> List[PlanShard]:
    """Split plans into self-contained :class:`PlanShard` work units.

    Every plan's units are cut into contiguous blocks of at most
    ``shard_size`` realizations, in order. Reassembling shard results in
    ``(plan_index, shard_index)`` order therefore reproduces the exact
    realization order local execution uses, which is what makes the merged
    aggregation bit-for-bit identical for every shard size.

    Args:
        plans: compiled :class:`ExecutionPlan` artifacts.
        shard_size: maximum realizations per shard (>= 1).
        seed_sensitive: mirror of
            :attr:`~repro.runtime.backends.Backend.seed_sensitive` for the
            executing backend — exact backends collapse a deterministic
            plan to its first unit, so only that unit is sharded.

    Returns:
        Shards for all plans, ordered by ``(plan_index, shard_index)``.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    shards: List[PlanShard] = []
    for plan_index, plan in enumerate(plans):
        units = plan.units
        if plan.collapsible and not seed_sensitive:
            units = units[:1]
        for shard_index, start in enumerate(range(0, len(units), shard_size)):
            shards.append(
                PlanShard(
                    plan_index=plan_index,
                    shard_index=shard_index,
                    start=start,
                    kind=plan.kind,
                    payload=plan.payload,
                    shots=plan.task.shots,
                    direct=plan.direct,
                    units=tuple(units[start : start + shard_size]),
                    options=plan.options,
                )
            )
    return shards


def plan_options(plans: Sequence["ExecutionPlan"]) -> Optional[SimOptions]:
    """The single set of options a batch of plans was compiled under.

    ``None`` when no plan recorded options. Raises if the plans disagree —
    executing them under any one plan's options would silently change the
    other plans' noise model (run them separately, or pass options
    explicitly).
    """
    recorded = {p.options for p in plans if p.options is not None}
    if len(recorded) > 1:
        raise ValueError(
            "plans were compiled under different options; execute them "
            "separately or pass options= explicitly"
        )
    return next(iter(recorded)) if recorded else None


def _normalize_payload(task: Task) -> Tuple[str, Dict]:
    if task.observables is not None:
        paulis = {
            k: (Pauli.from_label(v) if isinstance(v, str) else v)
            for k, v in task.observables.items()
        }
        return "expectations", paulis
    return "probabilities", dict(task.bit_targets)


def _as_scheduled(circuit: CircuitLike, device: Device) -> ScheduledCircuit:
    if isinstance(circuit, ScheduledCircuit):
        return circuit
    return schedule(circuit, device.durations)


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


class PlanCache:
    """Content-addressed LRU cache of compiled + scheduled circuits.

    Keys are ``(circuit fingerprint, pipeline fingerprint, device
    fingerprint)`` strings; values are the ``(compiled, scheduled)`` pair a
    deterministic pipeline produced for that content. Thread-safe: lookups
    take a lock, compilation happens outside it, and on a race the first
    stored value wins so every caller shares one scheduled object.

    Args:
        maxsize: in-memory entry bound (LRU eviction beyond it).
        store: optional :class:`~repro.runtime.store.PlanStore` persisting
            entries across processes. A memory miss falls through to the
            store before compiling; compiled entries are written back. The
            store only ever changes wall time: corrupt or stale files are
            treated as misses and recompiled.

    Example:
        >>> cache = PlanCache(maxsize=64)
        >>> entry, hit = cache.get_or_compile("key", lambda: ("c", "s"))
        >>> hit
        False
        >>> cache.get_or_compile("key", lambda: ("c", "s"))[1]
        True
        >>> cache.stats
        {'hits': 1, 'misses': 1, 'entries': 1}
    """

    def __init__(self, maxsize: int = 256, store: Optional[PlanStore] = None):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._store = store
        self._entries: "OrderedDict[str, Tuple[CircuitLike, ScheduledCircuit]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        # Keys known to live in (or have been offered to) the current
        # store, so memory hits don't re-probe the disk on every lookup.
        self._persisted: set = set()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    @property
    def store(self) -> Optional[PlanStore]:
        """The disk layer (``None`` when memory-only).

        Assigning a new store resets the persisted-key bookkeeping so
        memory-cache hits write through to the *new* store: a long-lived
        process that enables disk mode mid-flight (``configure(
        plan_cache="disk")``) persists its already-hot plans on their next
        hit, not only newly compiled ones.
        """
        return self._store

    @store.setter
    def store(self, store: Optional[PlanStore]) -> None:
        with self._lock:
            self._store = store
            self._persisted = set()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Empty the in-memory layer and reset counters.

        The disk layer (if any) is left untouched — clear it explicitly
        with ``cache.store.clear()``; a persistent store outliving process
        state is its entire point.
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters; disk-layer counters when a store is set."""
        base = {"hits": self.hits, "misses": self.misses, "entries": len(self)}
        if self.store is not None:
            base["disk_hits"] = self.disk_hits
            base["store"] = self.store.stats
        return base

    def _insert(self, key: str, built: Tuple[CircuitLike, ScheduledCircuit]):
        """Store ``built`` under ``key`` unless a racer beat us (it wins)."""
        entry = self._entries.setdefault(key, built)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def intern(
        self, key: str, entry: Tuple[CircuitLike, ScheduledCircuit]
    ) -> Tuple[CircuitLike, ScheduledCircuit]:
        """Adopt an externally compiled entry; returns the canonical one.

        Used by process-parallel compilation: artifacts built in worker
        processes come back as pickled copies, and re-interning them makes
        every unit with the same content key share one object again (and
        therefore one engine at execution time). Does not touch hit/miss
        counters or the disk layer.
        """
        with self._lock:
            return self._insert(key, entry)

    def _write_through(
        self, key: str, entry: Tuple[CircuitLike, ScheduledCircuit]
    ) -> None:
        """Persist a memory hit to a store that missed its compilation.

        This closes the warm-start gap for long-lived processes: plans
        compiled while the cache was memory-only reach a store attached
        *later* (``configure(plan_cache="disk")``) on their next hit, so
        the disk ends up as warm as memory. Best-effort like every store
        write; each (key, store) pair is offered at most once.
        """
        with self._lock:
            store = self._store
            if store is None or key in self._persisted:
                return
            self._persisted.add(key)  # claim before the I/O so racers skip
        if not store.contains(key):
            store.put(key, entry)

    def get_or_compile(
        self, key: str, build: Callable[[], Tuple[CircuitLike, ScheduledCircuit]]
    ) -> Tuple[Tuple[CircuitLike, ScheduledCircuit], bool]:
        """Return ``((compiled, scheduled), hit)`` for ``key``.

        Lookup order: memory, then the disk store (a disk hit populates
        memory so later lookups share the same object), then ``build()``.
        Freshly built entries are persisted when a store is attached, and
        memory hits write through to a store attached after they were
        compiled.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is not None:
            self._write_through(key, entry)
            return entry, True
        store = self.store
        if store is not None:
            loaded = store.get(key)
            if loaded is not None:
                with self._lock:
                    entry = self._insert(key, loaded)
                    self.hits += 1
                    self.disk_hits += 1
                    self._persisted.add(key)
                return entry, True
        with self._lock:
            self.misses += 1
        built = build()
        if store is not None:
            store.put(key, built)
            with self._lock:
                self._persisted.add(key)
        with self._lock:
            entry = self._insert(key, built)
        return entry, False


#: Process-wide default cache used by :func:`compile_tasks` (and therefore
#: by ``run()``). Cleared with ``PLAN_CACHE.clear()``; its disk layer is
#: controlled by :func:`configure_plan_cache` /
#: ``repro.runtime.configure(plan_cache=...)``.
PLAN_CACHE = PlanCache()


# ---------------------------------------------------------------------------
# Cache-mode configuration (off / memory / disk)
# ---------------------------------------------------------------------------

_UNSET = object()

#: ``compile_tasks``/``Backend.run`` default sentinel: "use the configured
#: process-wide cache" (which ``plan_cache="off"`` resolves to ``None``).
USE_DEFAULT_CACHE = _USE_DEFAULT = object()

PLAN_CACHE_MODES = ("off", "memory", "disk")

_CACHE_CONFIG: Dict[str, Any] = {
    "mode": "memory",
    "dir": None,  # None -> repro.utils.paths.default_plan_cache_dir()
    "max_bytes": DEFAULT_MAX_BYTES,
}


def configure_plan_cache(
    mode: Optional[str] = None,
    directory: Union[str, Path, None] = _UNSET,
    max_bytes: Optional[int] = _UNSET,
) -> None:
    """Configure the process-wide plan cache (mode, location, size bound).

    Args:
        mode: ``"off"`` disables plan caching entirely, ``"memory"`` (the
            initial default) caches within this process only, ``"disk"``
            additionally persists entries through a
            :class:`~repro.runtime.store.PlanStore` so later processes
            warm-start. ``None`` leaves the mode unchanged.
        directory: root of the disk store; ``None`` restores the default
            (``$REPRO_PLAN_CACHE_DIR``, ``$XDG_CACHE_HOME/repro-plans``, or
            ``~/.cache/repro-plans``). Takes effect when mode is (or
            becomes) ``"disk"``.
        max_bytes: disk-store size bound; least-recently-used entries are
            evicted beyond it. ``None`` restores the default bound,
            mirroring ``directory=None``.

    Example:
        >>> configure_plan_cache("disk", directory="/tmp/my-plans")
        >>> plan_cache_mode()
        'disk'
        >>> configure_plan_cache("memory")
    """
    if mode is not None and mode not in PLAN_CACHE_MODES:
        raise ValueError(
            f"plan cache mode must be one of {PLAN_CACHE_MODES}, got {mode!r}"
        )
    if max_bytes is not _UNSET and max_bytes is not None and max_bytes < 1:
        raise ValueError("max_bytes must be >= 1")
    if directory is not _UNSET:
        _CACHE_CONFIG["dir"] = None if directory is None else str(directory)
    if max_bytes is not _UNSET:
        _CACHE_CONFIG["max_bytes"] = (
            DEFAULT_MAX_BYTES if max_bytes is None else int(max_bytes)
        )
    if mode is not None:
        _CACHE_CONFIG["mode"] = mode
    if _CACHE_CONFIG["mode"] == "disk":
        PLAN_CACHE.store = PlanStore(
            _CACHE_CONFIG["dir"], max_bytes=_CACHE_CONFIG["max_bytes"]
        )
    else:
        PLAN_CACHE.store = None


def plan_cache_mode() -> str:
    """The configured plan-cache mode: ``"off"``, ``"memory"``, or ``"disk"``."""
    return _CACHE_CONFIG["mode"]


def default_plan_cache() -> Optional[PlanCache]:
    """The cache ``compile_tasks`` uses by default (``None`` when off)."""
    return None if _CACHE_CONFIG["mode"] == "off" else PLAN_CACHE


def _resolve_cache(cache) -> Optional[PlanCache]:
    return default_plan_cache() if cache is _USE_DEFAULT else cache


# ---------------------------------------------------------------------------
# The shared compile stage
# ---------------------------------------------------------------------------


def _compile_one(
    task: Task,
    device: Optional[Device],
    options: SimOptions,
    cache: Optional[PlanCache],
    device_fp: Callable[[Device], Optional[str]],
    index: int,
) -> ExecutionPlan:
    start = time.perf_counter()
    task_device = task.device or device
    if task_device is None:
        raise ValueError(f"task {index} has no device and no default given")
    kind, payload = _normalize_payload(task)
    hits = misses = 0

    def finish(units, direct=False, collapsible=False):
        return ExecutionPlan(
            task=task,
            kind=kind,
            payload=payload,
            units=tuple(units),
            direct=direct,
            collapsible=collapsible,
            options=options,
            compile_seconds=time.perf_counter() - start,
            cache_hits=hits,
            cache_misses=misses,
        )

    if task.factory is None and task.pipeline is None and task.realizations == 1:
        # Raw execution: the circuit runs as-is, seeded directly (matching
        # expectation_values / bit_probabilities). Deliberately uncached:
        # raw circuits are essentially never content-repeated, so hashing
        # them would only pollute the LRU.
        scheduled = _as_scheduled(task.circuit, task_device)
        return finish(
            [PlanUnit(task.circuit, scheduled, task_device, task.seed)],
            direct=True,
        )

    rng = as_generator(task.seed if task.seed is not None else options.seed)
    units: List[PlanUnit] = []
    if task.factory is not None:
        for _ in range(task.realizations):
            compiled = task.factory(rng)
            sub_seed = int(rng.integers(0, 2**63 - 1))
            units.append(
                PlanUnit(
                    compiled, _as_scheduled(compiled, task_device), task_device, sub_seed
                )
            )
        return finish(units)

    pipeline = as_pipeline(task.pipeline)
    if pipeline.is_deterministic:
        # One compile + one schedule, shared by every realization. The
        # deterministic pipeline draws nothing from ``rng``, so a cache hit
        # (skipping the compile entirely) leaves the seed stream — and
        # therefore every simulated value — untouched.
        def build() -> Tuple[CircuitLike, ScheduledCircuit]:
            out = pipeline.compile(task.circuit, task_device, seed=rng)
            return out, _as_scheduled(out, task_device)

        dev_fp = device_fp(task_device) if cache is not None else None
        pipe_fp = pipeline.fingerprint if cache is not None else None
        key = None
        if cache is not None and pipe_fp is not None and dev_fp is not None:
            key = f"{circuit_fingerprint(task.circuit)}:{pipe_fp}:{dev_fp}"
            (compiled, scheduled), hit = cache.get_or_compile(key, build)
            if hit:
                hits += 1
            else:
                misses += 1
        else:
            compiled, scheduled = build()
        for _ in range(task.realizations):
            sub_seed = int(rng.integers(0, 2**63 - 1))
            units.append(
                PlanUnit(compiled, scheduled, task_device, sub_seed, cache_key=key)
            )
        return finish(units, collapsible=True)

    for _ in range(task.realizations):
        compiled = pipeline.compile(task.circuit, task_device, seed=rng)
        sub_seed = int(rng.integers(0, 2**63 - 1))
        units.append(
            PlanUnit(
                compiled, _as_scheduled(compiled, task_device), task_device, sub_seed
            )
        )
    return finish(units)


COMPILE_MODES = ("thread", "process")

# -- process-pool worker state ----------------------------------------------
#
# Each worker process owns a private PlanCache (re-created by the pool
# initializer from a picklable spec). A memory-only worker cache dedupes
# within that worker; a disk-backed one shares the persistent store with
# the parent and every sibling, which is what makes warm disk starts work
# in process mode too.

_WORKER_CACHE: Optional[PlanCache] = None


def _cache_spec(cache: Optional[PlanCache]):
    """A picklable description of ``cache`` for worker processes."""
    if cache is None:
        return None
    if cache.store is not None:
        return ("disk", str(cache.store.root), cache.store.max_bytes)
    return ("memory", None, None)


def _worker_init(spec) -> None:
    global _WORKER_CACHE
    if spec is None:
        _WORKER_CACHE = None
    elif spec[0] == "disk":
        _WORKER_CACHE = PlanCache(store=PlanStore(spec[1], max_bytes=spec[2]))
    else:
        _WORKER_CACHE = PlanCache()


def _worker_compile(payload) -> ExecutionPlan:
    task, device, options, index = payload
    # No cross-task fingerprint memo here: jobs arrive one task at a time,
    # and an id()-keyed memo could alias a recycled address to a stale hash.
    return _compile_one(
        task, device, options, _WORKER_CACHE, device_fingerprint, index
    )


def _portable(task: Task, options: SimOptions, device: Optional[Device]) -> bool:
    """Can this task compile in a worker process bit-identically?

    Generator seeds are shared mutable streams — compiling remotely would
    leave the parent's stream unadvanced and desynchronize later tasks —
    so they must stay in-parent. Unpicklable payloads (e.g. lambda
    realization factories) are not pre-checked: serializing every task
    twice just to probe would cost more than the fallback; their pool
    submission fails instead and they fall back per-task.
    """
    return not (
        isinstance(task.seed, np.random.Generator)
        or isinstance(options.seed, np.random.Generator)
    )


def _rehome(
    plan: ExecutionPlan,
    task: Task,
    device: Optional[Device],
    cache: Optional[PlanCache],
) -> ExecutionPlan:
    """Re-attach a worker-compiled plan to the parent's objects.

    The pickle round-trip gave the plan its own copies of the task, the
    device, and every compiled artifact. Restoring the parent's task/device
    objects and re-interning cached artifacts through ``cache`` restores
    the identity-based engine sharing that thread-mode compilation gets for
    free — values are unaffected either way.
    """
    canonical_device = task.device or device
    interned: Dict[str, Tuple[CircuitLike, ScheduledCircuit]] = {}
    units = []
    for unit in plan.units:
        circuit, scheduled = unit.circuit, unit.scheduled
        if cache is not None and unit.cache_key is not None:
            entry = interned.get(unit.cache_key)
            if entry is None:
                entry = cache.intern(unit.cache_key, (circuit, scheduled))
                interned[unit.cache_key] = entry
            circuit, scheduled = entry
        units.append(
            dataclasses.replace(
                unit, circuit=circuit, scheduled=scheduled, device=canonical_device
            )
        )
    return dataclasses.replace(plan, task=task, units=tuple(units))


def compile_tasks(
    tasks: Sequence[Task],
    device: Optional[Device] = None,
    options: Optional[SimOptions] = None,
    workers: int = 1,
    cache: Optional[PlanCache] = _USE_DEFAULT,
    mode: Optional[str] = None,
    processes: Optional[bool] = None,
) -> List[ExecutionPlan]:
    """Compile every task into a frozen :class:`ExecutionPlan`.

    Tasks compile independently on their own RNG streams, so plans (and
    therefore results) are bit-for-bit identical for any ``workers`` count
    and either ``mode``; within a task, realizations always compile
    sequentially in stream order.

    Args:
        tasks: the :class:`~repro.runtime.task.Task` objects to compile (a
            single task is accepted and treated as a batch of one).
        device: default :class:`~repro.device.calibration.Device` for tasks
            that don't carry their own.
        options: simulation options the plans are compiled under. Tasks
            without their own ``seed`` derive their realization stream from
            ``options.seed`` *now*, at compile time — the plans record
            ``options`` so that executing them (``run(plans)``) defaults to
            the matching configuration.
        workers: parallelism of the compile stage (tasks fan out; ``1``
            compiles serially).
        cache: the content-addressed :class:`PlanCache` to use. Defaults to
            the configured process-wide cache — :data:`PLAN_CACHE`, with
            its disk layer when ``configure(plan_cache="disk")`` is active,
            or nothing when ``"off"``. Pass ``cache=None`` to disable
            caching for this call only.
        mode: ``"thread"`` (default) fans out over a thread pool;
            ``"process"`` uses a ``ProcessPoolExecutor`` so pure-Python
            compilation scales with cores. Tasks that cannot cross the
            process boundary (unpicklable factories, shared Generator
            seeds) transparently compile in-parent. ``None`` defers to
            ``configure(compile_mode=...)``.
        processes: boolean shorthand for ``mode`` (``True`` →
            ``"process"``); raises if both are given and disagree.

    Returns:
        One :class:`ExecutionPlan` per task, in task order.

    Example:
        >>> plans = compile_tasks(tasks, device, workers=4, mode="process")
        >>> run(plans, backend="vectorized")  # doctest: +SKIP
    """
    if isinstance(tasks, Task):
        tasks = [tasks]
    options = options or SimOptions()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if processes is not None:
        implied = "process" if processes else "thread"
        if mode is not None and mode != implied:
            raise ValueError(f"processes={processes} contradicts mode={mode!r}")
        mode = implied
    if mode is None:
        from .run import default_compile_mode  # local: run.py imports us

        mode = default_compile_mode()
    if mode not in COMPILE_MODES:
        raise ValueError(f"mode must be one of {COMPILE_MODES}, got {mode!r}")
    cache = _resolve_cache(cache)

    # Device fingerprints are content hashes of calibration data; memoize
    # per distinct object so a 100-point sweep hashes its device once.
    fp_memo: Dict[int, str] = {}
    fp_lock = threading.Lock()

    def device_fp(dev: Device) -> str:
        key = id(dev)
        with fp_lock:
            fp = fp_memo.get(key)
        if fp is None:
            fp = device_fingerprint(dev)
            with fp_lock:
                fp_memo[key] = fp
        return fp

    def job(pair: Tuple[int, Task]) -> ExecutionPlan:
        index, task = pair
        return _compile_one(task, device, options, cache, device_fp, index)

    if mode == "process" and workers > 1 and len(tasks) > 1:
        return _compile_with_processes(tasks, device, options, workers, cache, job)
    if workers > 1 and len(tasks) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(job, enumerate(tasks)))
    return [job(pair) for pair in enumerate(tasks)]


def _compile_with_processes(
    tasks: Sequence[Task],
    device: Optional[Device],
    options: SimOptions,
    workers: int,
    cache: Optional[PlanCache],
    local_job: Callable[[Tuple[int, Task]], ExecutionPlan],
) -> List[ExecutionPlan]:
    """Fan the compile stage out over a process pool; order is preserved.

    Portable tasks ship to the pool; the rest compile in-parent (both sides
    draw from per-task streams, so the split never changes a bit). A task
    whose pool job fails — unpicklable payload, broken pool — also falls
    back to in-parent compilation, where a genuine compile error then
    reproduces with a clean traceback. Remote plans are re-homed onto the
    parent's task/device objects and the parent cache so engine sharing
    works exactly as in thread mode.
    """
    remote = [
        (index, task)
        for index, task in enumerate(tasks)
        if _portable(task, options, device)
    ]
    if len(remote) < 2:
        # Nothing (or one task) would parallelize: skip the pool entirely.
        return [local_job(pair) for pair in enumerate(tasks)]
    plans: List[Optional[ExecutionPlan]] = [None] * len(tasks)
    spec = _cache_spec(cache)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(remote)),
        initializer=_worker_init,
        initargs=(spec,),
    ) as pool:
        futures = [
            (index, task, pool.submit(_worker_compile, (task, device, options, index)))
            for index, task in remote
        ]
        for index, task, future in futures:
            try:
                plans[index] = _rehome(future.result(), task, device, cache)
            except Exception:
                pass  # fall through to the in-parent path below
    for index, task in enumerate(tasks):
        if plans[index] is None:
            plans[index] = local_job((index, task))
    return plans
