"""Declarative parameter sweeps over the batched runtime.

Every figure of the paper is a grid of (context, strategy, depth, ...)
points pushed through the same compile-then-simulate path. A
:class:`Sweep` names the axes once and builds the task grid declaratively,
replacing the hand-rolled ``tasks``/``keys``/``zip`` bookkeeping the
experiment drivers used to duplicate::

    from repro.runtime import Sweep, Task

    sweep = Sweep(
        {"strategy": ("none", "ca_ec"), "depth": (0, 4, 8)},
        lambda strategy, depth: Task(
            build(depth), observables={"z": "IZ"}, pipeline=strategy,
            realizations=8, seed=100 + depth,
        ),
        name="my-experiment",
    )
    result = sweep.run(device, backend="vectorized", workers=4)
    result[("ca_ec", 4)].values["z"]       # one grid point
    result.curve("z", strategy="ca_ec")    # series along the free axis
    result.to_json()                       # full keyed serialization

The builder is invoked in row-major axis order (last axis fastest), one
point at a time, which two kinds of builders rely on:

* stateful builders that consume a shared RNG (the layer-fidelity protocol
  compiles its sample circuits in stream order);
* sparse grids — returning ``None`` skips a point (e.g. a strategy that
  does not apply to a case).

``Sweep.run`` is a thin wrapper over :func:`repro.runtime.run`, so points
compile through the shared plan stage (parallel + content-cached) and the
result carries the compile/exec wall-time split.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..device.calibration import Device
from ..sim.executor import SimOptions
from .backends import BackendLike
from .run import run
from .task import BatchResult, Task, TaskResult

Coord = Tuple[Any, ...]


def _json_value(value: Any) -> Any:
    """Coerce an axis value to something ``json.dump`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return str(value)


class Sweep:
    """A named-axis task grid: ``axes`` × ``build`` → one batched run.

    ``axes`` maps axis names to their value sequences (insertion order is
    the grid order). ``build`` receives one keyword argument per axis and
    returns the :class:`~repro.runtime.task.Task` for that point, or
    ``None`` to skip it.
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence],
        build: Callable[..., Optional[Task]],
        name: Optional[str] = None,
    ):
        if not axes:
            raise ValueError("need at least one axis")
        self.axes: Dict[str, List] = {k: list(v) for k, v in axes.items()}
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {axis!r} has no values")
            # Coordinates key the results; a repeated value would make two
            # grid points indistinguishable (and silently shadow one).
            if len(set(values)) != len(values):
                raise ValueError(f"axis {axis!r} has duplicate values")
        self.build = build
        self.name = name

    def points(self) -> List[Coord]:
        """Every grid coordinate, in row-major order (last axis fastest)."""
        return list(itertools.product(*self.axes.values()))

    def tasks(self) -> Tuple[List[Coord], List[Task]]:
        """Build the task grid; skipped (``None``) points are dropped."""
        coords: List[Coord] = []
        tasks: List[Task] = []
        names = list(self.axes)
        for point in self.points():
            task = self.build(**dict(zip(names, point)))
            if task is None:
                continue
            coords.append(point)
            tasks.append(task)
        if not tasks:
            raise ValueError("sweep built no tasks (every point returned None)")
        return coords, tasks

    def run(
        self,
        device: Optional[Device] = None,
        options: Optional[SimOptions] = None,
        backend: Optional[BackendLike] = None,
        workers: Optional[int] = None,
        compile_workers: Optional[int] = None,
        compile_mode: Optional[str] = None,
    ) -> "SweepResult":
        """Execute the grid as one batched run and key the results.

        Args:
            device: default device for tasks without their own.
            options: simulation options shared by every grid point.
            backend: backend name or instance (``None`` = configured
                default). ``"distributed"`` shards every grid point's
                realizations across worker processes (and, with
                ``configure(dist_serve=...)``, across hosts) —
                bit-identical to ``"trajectory"`` either way.
            workers: simulation fan-out (the ``"distributed"`` backend
                reads it as its worker-process count unless
                ``configure(dist_workers=...)`` overrides); similarly
                ``compile_workers`` and ``compile_mode`` shape the compile
                stage (see :func:`repro.runtime.run`). None of them
                changes a value.

        Returns:
            A :class:`SweepResult` keying each grid point's
            :class:`~repro.runtime.task.TaskResult` by its coordinates.

        Example:
            >>> result = sweep.run(device, backend="vectorized",
            ...                    workers=4)  # doctest: +SKIP
            >>> result.curve("z", strategy="ca_ec")  # doctest: +SKIP
        """
        coords, tasks = self.tasks()
        batch = run(
            tasks,
            device=device,
            options=options,
            backend=backend,
            workers=workers,
            compile_workers=compile_workers,
            compile_mode=compile_mode,
        )
        return SweepResult(
            axes=self.axes, coords=coords, batch=batch, name=self.name
        )


@dataclass
class SweepResult:
    """Keyed, reshaped results of one sweep run."""

    axes: Dict[str, List]
    coords: List[Coord]
    batch: BatchResult
    name: Optional[str] = None
    _index: Dict[Coord, TaskResult] = field(init=False, repr=False)

    def __post_init__(self):
        self._index = dict(zip(self.coords, self.batch.results))

    # -- lookup --------------------------------------------------------------

    def __getitem__(self, coord: Union[Coord, Any]) -> TaskResult:
        if not isinstance(coord, tuple):
            coord = (coord,)
        return self._index[coord]

    def __contains__(self, coord: Union[Coord, Any]) -> bool:
        if not isinstance(coord, tuple):
            coord = (coord,)
        return coord in self._index

    def get(self, **coords) -> TaskResult:
        """Look up one point by axis name: ``result.get(strategy="ca_ec", depth=4)``."""
        missing = set(self.axes) - set(coords)
        if missing or set(coords) - set(self.axes):
            raise KeyError(
                f"get() needs exactly the axes {list(self.axes)}, got {list(coords)}"
            )
        return self[tuple(coords[a] for a in self.axes)]

    def value(self, key: str, **coords) -> float:
        return self.get(**coords).values[key]

    def curve(self, key: str, **fixed) -> List[float]:
        """The series of ``key`` along the single axis left unfixed.

        Fix all axes but one by name; values follow the free axis's declared
        order. Looking up a point that was skipped at build time raises
        ``KeyError``.
        """
        unknown = set(fixed) - set(self.axes)
        if unknown:
            raise KeyError(f"unknown axes: {sorted(unknown)}")
        free = [a for a in self.axes if a not in fixed]
        if len(free) != 1:
            raise ValueError(
                f"curve() needs exactly one free axis, got {free or 'none'}"
            )
        axis = free[0]
        out = []
        for v in self.axes[axis]:
            coord = tuple(fixed[a] if a != axis else v for a in self.axes)
            out.append(self._index[coord].values[key])
        return out

    def __iter__(self):
        return iter(zip(self.coords, self.batch.results))

    def __len__(self) -> int:
        return len(self.coords)

    # -- batch metadata ------------------------------------------------------

    @property
    def backend(self) -> str:
        return self.batch.backend

    @property
    def workers(self) -> int:
        return self.batch.workers

    @property
    def wall_time(self) -> float:
        return self.batch.wall_time

    @property
    def compile_time(self) -> float:
        return self.batch.compile_time

    @property
    def exec_time(self) -> float:
        return self.batch.exec_time

    # -- serialization -------------------------------------------------------

    def to_json(self) -> Dict:
        """A JSON-safe dict: axes, per-point results, and run metadata."""
        return {
            "sweep": self.name,
            "axes": {k: [_json_value(v) for v in vs] for k, vs in self.axes.items()},
            "backend": self.batch.backend,
            "workers": self.batch.workers,
            "wall_time": self.batch.wall_time,
            "compile_time": self.batch.compile_time,
            "exec_time": self.batch.exec_time,
            "shots": self.batch.shots,
            "points": [
                {
                    "coords": {
                        axis: _json_value(v) for axis, v in zip(self.axes, coord)
                    },
                    "name": result.name,
                    "values": dict(result.values),
                    "errors": dict(result.errors),
                    "shots": result.shots,
                    "realizations": result.realizations,
                }
                for coord, result in zip(self.coords, self.batch.results)
            ],
        }

    def save_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2)
            handle.write("\n")

    def __repr__(self) -> str:
        label = f"{self.name!r}, " if self.name else ""
        dims = "×".join(str(len(v)) for v in self.axes.values())
        return (
            f"SweepResult({label}axes={list(self.axes)}, grid={dims}, "
            f"{len(self.coords)} points, backend={self.batch.backend!r})"
        )
