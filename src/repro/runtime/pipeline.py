"""Composable compilation pipelines.

A :class:`Pipeline` is an ordered list of :class:`~repro.runtime.passes.Pass`
objects. The named strategies of the paper are pipeline *recipes*
(:func:`pipeline_for` builds them from a :class:`~repro.compiler.Strategy`),
and users can compose their own::

    from repro.runtime import CADD, CAEC, Orient, Pipeline, Twirl

    pipeline = Pipeline([Orient(), Twirl(), CADD(), CAEC()])
    compiled = pipeline.compile(circuit, device, seed=0)

Pipelines built from a named strategy are seed-for-seed equivalent to the
legacy ``compile_circuit`` (which now delegates here).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..circuits.circuit import Circuit
from ..circuits.schedule import Durations
from ..compiler.dd import DEFAULT_MIN_DURATION
from ..compiler.strategies import Strategy, get_strategy
from ..device.calibration import Device
from ..utils.rng import SeedLike
from .passes import CADD, CAEC, AlignedDD, Orient, Pass, PassContext, StaggeredDD, Twirl

#: Anything the runtime accepts as a compilation recipe.
PipelineLike = Union[None, str, Strategy, "Pipeline", Sequence[Pass]]


class Pipeline:
    """An ordered, immutable sequence of compiler passes."""

    def __init__(self, passes: Iterable[Pass], name: Optional[str] = None):
        self.passes: Tuple[Pass, ...] = tuple(passes)
        for p in self.passes:
            if not isinstance(p, Pass):
                raise TypeError(f"not a Pass: {p!r}")
        self.name = name or "+".join(p.name for p in self.passes) or "identity"

    @property
    def is_deterministic(self) -> bool:
        """True when no pass consumes randomness (realizations coincide)."""
        return not any(p.stochastic for p in self.passes)

    @property
    def fingerprint(self) -> Optional[str]:
        """Content key of the recipe, or ``None`` if not addressable.

        Joins every pass's :meth:`~repro.runtime.passes.Pass.fingerprint`
        (name + output-affecting parameters). ``None`` — any pass without a
        fingerprint — opts the pipeline out of the plan cache. The pipeline
        *name* deliberately does not participate: two differently named
        recipes with the same passes produce the same circuits.
        """
        parts = []
        for p in self.passes:
            fp = p.fingerprint()
            if fp is None:
                return None
            parts.append(fp)
        return "+".join(parts) if parts else "identity"

    def then(self, *passes: Pass) -> "Pipeline":
        """A new pipeline with ``passes`` appended."""
        return Pipeline(self.passes + passes)

    def compile(
        self,
        circuit: Circuit,
        device: Device,
        seed: SeedLike = None,
        context: Optional[PassContext] = None,
    ) -> Circuit:
        """Run every pass in order; returns the compiled circuit.

        Pass ``seed`` (or a shared generator) to make stochastic passes
        reproducible; pass an explicit ``context`` to collect pass reports.
        """
        ctx = context if context is not None else PassContext.from_seed(seed)
        out = circuit
        for p in self.passes:
            out = p.run(out, device, ctx)
        return out

    def __iter__(self) -> Iterator[Pass]:
        return iter(self.passes)

    def __len__(self) -> int:
        return len(self.passes)

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self.passes)
        return f"Pipeline([{inner}], name={self.name!r})"


#: The empty pipeline: run the circuit exactly as given.
IDENTITY = Pipeline((), name="as-is")


def pipeline_for(
    strategy: Union[str, Strategy],
    planner_durations: Optional[Durations] = None,
    min_dd_duration: float = DEFAULT_MIN_DURATION,
    orient: bool = False,
) -> Pipeline:
    """Build the pass pipeline for a named strategy.

    The pass order matches the legacy ``compile_circuit`` chain exactly
    (orientation, twirl, DD, EC), so compiling through the returned
    pipeline with the same seed yields the identical circuit.
    """
    strategy = get_strategy(strategy)
    passes: List[Pass] = []
    if orient:
        passes.append(Orient())
    if strategy.twirl:
        passes.append(Twirl())
    if strategy.dd == "aligned":
        passes.append(AlignedDD(min_dd_duration))
    elif strategy.dd == "staggered":
        passes.append(StaggeredDD(min_dd_duration))
    elif strategy.dd == "ca":
        passes.append(CADD(min_dd_duration))
    if strategy.ec:
        passes.append(CAEC(planner_durations))
    return Pipeline(passes, name=strategy.name)


def as_pipeline(spec: PipelineLike) -> Pipeline:
    """Normalize a pipeline spec: name, Strategy, Pipeline, or pass list.

    ``None`` maps to the identity pipeline (run the circuit as-is).
    """
    if spec is None:
        return IDENTITY
    if isinstance(spec, Pipeline):
        return spec
    if isinstance(spec, (str, Strategy)):
        return pipeline_for(spec)
    if isinstance(spec, Sequence):
        return Pipeline(spec)
    raise TypeError(f"cannot interpret {spec!r} as a pipeline")
