"""The batched ``run()`` entry point.

One call schedules, compiles, and simulates any number of tasks::

    from repro.runtime import Task, run

    batch = run(
        [
            Task(circ_a, observables={"z0": "IIIZ"}, pipeline="ca_ec+dd",
                 realizations=8, seed=1),
            Task(circ_b, bit_targets={"f": {0: 0, 1: 0}}, pipeline="ca_dd",
                 realizations=8, seed=2),
        ],
        device,
        backend="trajectory",
        workers=4,
    )
    batch[0].values, batch[0].errors, batch.compile_time, batch.exec_time

``run()`` is two stages glued together: the shared
:func:`~repro.runtime.plan.compile_tasks` stage turns tasks into frozen
:class:`~repro.runtime.plan.ExecutionPlan` artifacts (parallel across tasks,
content-cached for deterministic pipelines), and the backend executes the
plans across ``workers`` threads. Both stages preserve each task's private
RNG stream, so results are bit-for-bit identical for every
``compile_workers``/``workers`` combination — the knobs only change wall
time. Pre-built plans can be passed in place of tasks to skip the compile
stage entirely.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

from ..device.calibration import Device
from ..sim.executor import SimOptions
from .backends import BackendLike, get_backend
from .plan import ExecutionPlan, compile_tasks, plan_options
from .task import BatchResult, Task

_AUTO = object()  # configure() sentinel: "leave this default unchanged"

_DEFAULTS = {"workers": 1, "backend": "trajectory", "chunk_shots": None}


def configure(
    workers: Optional[int] = None,
    backend: Optional[BackendLike] = None,
    chunk_shots=_AUTO,
) -> None:
    """Set process-wide runtime defaults (used when ``run(...=None)``).

    The CLI's ``--workers`` / ``--backend`` / ``--chunk-shots`` flags call
    this so every experiment driver inherits the parallelism, engine choice,
    and memory bound without plumbing parameters through. ``chunk_shots``
    bounds the vectorized backend's resident states per chunk; pass ``None``
    to restore auto-sizing (~32 MiB of amplitudes).
    """
    # Validate everything before mutating anything, so a failed configure()
    # never leaves partially-updated defaults behind.
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if backend is not None:
        get_backend(backend)  # fail at configure time, not first run()
    if chunk_shots is not _AUTO and chunk_shots is not None:
        chunk_shots = int(chunk_shots)
        if chunk_shots < 1:
            raise ValueError("chunk_shots must be >= 1 (or None for auto)")
    if workers is not None:
        _DEFAULTS["workers"] = int(workers)
    if backend is not None:
        _DEFAULTS["backend"] = backend
    if chunk_shots is not _AUTO:
        _DEFAULTS["chunk_shots"] = chunk_shots


def default_workers() -> int:
    return _DEFAULTS["workers"]


def default_backend() -> BackendLike:
    return _DEFAULTS["backend"]


def default_chunk_shots() -> Optional[int]:
    return _DEFAULTS["chunk_shots"]


RunInput = Union[Task, ExecutionPlan, Sequence[Task], Sequence[ExecutionPlan]]


def run(
    tasks: RunInput,
    device: Optional[Device] = None,
    backend: Optional[BackendLike] = None,
    options: Optional[SimOptions] = None,
    workers: Optional[int] = None,
    compile_workers: Optional[int] = None,
) -> BatchResult:
    """Execute tasks (or pre-built plans) on a backend; results keep order.

    ``device`` is the default for tasks that don't carry their own.
    ``backend`` is a registered name (``"trajectory"``, ``"vectorized"``,
    ``"density"``) or a :class:`~repro.runtime.backends.Backend` instance;
    ``None`` uses the configured default. ``workers=N`` fans the simulations
    out over N threads and ``compile_workers`` (default: ``workers``) the
    task compilations; results are identical for every combination. Passing
    :class:`~repro.runtime.plan.ExecutionPlan` objects (from
    :func:`~repro.runtime.plan.compile_tasks`) skips the compile stage, so
    one set of plans can be executed on several backends; with
    ``options=None`` the plans' compile-time options are reused, which is
    what makes the two-stage path reproduce the one-stage one exactly
    (realization sub-seeds were already derived at compile time).
    """
    if isinstance(tasks, (Task, ExecutionPlan)):
        tasks = [tasks]
    items = list(tasks)
    engine = get_backend(backend if backend is not None else default_backend())
    count = default_workers() if workers is None else int(workers)
    if count < 1:
        raise ValueError("workers must be >= 1")
    compile_count = count if compile_workers is None else int(compile_workers)
    if compile_count < 1:
        raise ValueError("compile_workers must be >= 1")

    start = time.perf_counter()
    if items and all(isinstance(item, ExecutionPlan) for item in items):
        # Pre-built plans: report the compile seconds recorded at build
        # time; wall_time covers only the work done in this call.
        plans: List[ExecutionPlan] = items
        if options is None:
            options = plan_options(plans)
        compile_time = sum(p.compile_seconds for p in plans)
    else:
        if any(isinstance(item, ExecutionPlan) for item in items):
            raise TypeError(
                "cannot mix Task and ExecutionPlan objects in one run(); "
                "compile the tasks first and concatenate the plans"
            )
        options = options or SimOptions()
        plans = compile_tasks(
            items, device=device, options=options, workers=compile_count
        )
        compile_time = time.perf_counter() - start
    exec_start = time.perf_counter()
    results = engine.execute_plans(plans, options=options, workers=count)
    exec_time = time.perf_counter() - exec_start
    return BatchResult(
        results=results,
        backend=engine.name,
        workers=count,
        wall_time=time.perf_counter() - start,
        compile_time=compile_time,
        exec_time=exec_time,
    )
