"""The batched ``run()`` entry point.

One call schedules, compiles, and simulates any number of tasks::

    from repro.runtime import Task, run

    batch = run(
        [
            Task(circ_a, observables={"z0": "IIIZ"}, pipeline="ca_ec+dd",
                 realizations=8, seed=1),
            Task(circ_b, bit_targets={"f": {0: 0, 1: 0}}, pipeline="ca_dd",
                 realizations=8, seed=2),
        ],
        device,
        backend="trajectory",
        workers=4,
    )
    batch[0].values, batch[0].errors, batch.wall_time

Compilation runs sequentially (preserving each task's RNG stream) and the
independently seeded simulations fan out across ``workers`` threads, so
results are identical for every worker count — ``workers`` only changes
wall time.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

from ..device.calibration import Device
from ..sim.executor import SimOptions
from .backends import BackendLike, get_backend
from .task import BatchResult, Task

_DEFAULTS = {"workers": 1, "backend": "trajectory"}


def configure(
    workers: Optional[int] = None, backend: Optional[BackendLike] = None
) -> None:
    """Set process-wide runtime defaults (used when ``run(...=None)``).

    The CLI's ``--workers`` / ``--backend`` flags call this so every
    experiment driver inherits the parallelism and engine choice without
    plumbing parameters through.
    """
    # Validate everything before mutating anything, so a failed configure()
    # never leaves partially-updated defaults behind.
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if backend is not None:
        get_backend(backend)  # fail at configure time, not first run()
    if workers is not None:
        _DEFAULTS["workers"] = int(workers)
    if backend is not None:
        _DEFAULTS["backend"] = backend


def default_workers() -> int:
    return _DEFAULTS["workers"]


def default_backend() -> BackendLike:
    return _DEFAULTS["backend"]


def run(
    tasks: Union[Task, Sequence[Task]],
    device: Optional[Device] = None,
    backend: Optional[BackendLike] = None,
    options: Optional[SimOptions] = None,
    workers: Optional[int] = None,
) -> BatchResult:
    """Execute one or more tasks on a backend; results keep task order.

    ``device`` is the default for tasks that don't carry their own.
    ``backend`` is a registered name (``"trajectory"``, ``"vectorized"``,
    ``"density"``) or a :class:`~repro.runtime.backends.Backend` instance;
    ``None`` uses the configured default (``"trajectory"`` unless
    :func:`configure` changed it). ``workers=N`` fans the simulations out
    over N threads (``None`` uses the configured default).
    """
    if isinstance(tasks, Task):
        tasks = [tasks]
    task_list: List[Task] = list(tasks)
    engine = get_backend(backend if backend is not None else default_backend())
    count = default_workers() if workers is None else int(workers)
    if count < 1:
        raise ValueError("workers must be >= 1")
    start = time.perf_counter()
    results = engine.run(task_list, device=device, options=options, workers=count)
    return BatchResult(
        results=results,
        backend=engine.name,
        workers=count,
        wall_time=time.perf_counter() - start,
    )
