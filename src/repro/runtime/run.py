"""The batched ``run()`` entry point.

One call schedules, compiles, and simulates any number of tasks::

    from repro.runtime import Task, run

    batch = run(
        [
            Task(circ_a, observables={"z0": "IIIZ"}, pipeline="ca_ec+dd",
                 realizations=8, seed=1),
            Task(circ_b, bit_targets={"f": {0: 0, 1: 0}}, pipeline="ca_dd",
                 realizations=8, seed=2),
        ],
        device,
        backend="trajectory",
        workers=4,
    )
    batch[0].values, batch[0].errors, batch.compile_time, batch.exec_time

``run()`` is two stages glued together: the shared
:func:`~repro.runtime.plan.compile_tasks` stage turns tasks into frozen
:class:`~repro.runtime.plan.ExecutionPlan` artifacts (parallel across tasks
— threads or processes via ``compile_mode`` — and content-cached for
deterministic pipelines, optionally persisting to disk so later processes
warm-start), and the backend executes the plans across ``workers``
threads. Both stages preserve each task's private RNG stream, so results
are bit-for-bit identical for every ``compile_workers`` / ``workers`` /
``compile_mode`` / cache-temperature combination — the knobs only change
wall time. Pre-built plans can be passed in place of tasks to skip the
compile stage entirely. :func:`configure` sets process-wide defaults for
all of these knobs (the CLI flags map onto it one-to-one).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..device.calibration import Device
from ..sim.executor import SimOptions
from .backends import BackendLike, get_backend
from .plan import (
    COMPILE_MODES,
    ExecutionPlan,
    compile_tasks,
    configure_plan_cache,
    plan_options,
)
from .task import BatchResult, Task

_AUTO = object()  # configure() sentinel: "leave this default unchanged"

_DEFAULTS = {
    "workers": 1,
    "backend": "trajectory",
    "chunk_shots": None,
    "compile_mode": "thread",
    "compile_workers": None,  # None -> follow the run's ``workers``
    "dist_workers": None,  # None -> follow the run's ``workers``
    "dist_shard_size": None,  # None -> auto-size per worker count
    "dist_serve": None,  # None -> local (process pool) transport
    "dist_connect": (),  # () -> don't dial out to listening workers
    "dist_inner": "trajectory",
}


def configure(
    workers: Optional[int] = None,
    backend: Optional[BackendLike] = None,
    chunk_shots=_AUTO,
    compile_mode: Optional[str] = None,
    compile_workers=_AUTO,
    plan_cache: Optional[str] = None,
    plan_cache_dir: Union[str, Path, None] = _AUTO,
    plan_cache_bytes: Optional[int] = _AUTO,
    dist_workers=_AUTO,
    dist_shard_size=_AUTO,
    dist_serve: Optional[str] = _AUTO,
    dist_connect: Union[str, Sequence[str], None] = _AUTO,
    dist_inner: Optional[str] = None,
) -> None:
    """Set process-wide runtime defaults (used when ``run(...=None)``).

    The CLI's flags (``--workers``, ``--backend``, ``--chunk-shots``,
    ``--compile-mode``, ``--compile-workers``, ``--plan-cache``,
    ``--dist-workers``, ``--dist-serve``, ``--dist-connect``) call this
    so every experiment driver inherits the parallelism, engine choice,
    memory bound, and cache policy without plumbing parameters through.

    Args:
        workers: default simulation-thread count for ``run()``.
        backend: default backend name or instance (validated immediately).
        chunk_shots: vectorized backend's resident states per chunk;
            ``None`` restores auto-sizing (~32 MiB of amplitudes).
        compile_mode: ``"thread"`` (default) or ``"process"`` — how
            ``compile_tasks`` fans out. Process mode sidesteps the GIL for
            pure-Python pass pipelines; results are identical either way.
        compile_workers: default compile-stage parallelism; ``None`` makes
            each run reuse its ``workers`` value.
        plan_cache: plan-cache mode — ``"off"``, ``"memory"`` (default), or
            ``"disk"`` (persist compiled schedules so a second process
            warm-starts). See
            :func:`repro.runtime.plan.configure_plan_cache`.
        plan_cache_dir: disk-store root; ``None`` restores the default
            (``~/.cache/repro-plans``, overridable via
            ``REPRO_PLAN_CACHE_DIR`` / ``XDG_CACHE_HOME``).
        plan_cache_bytes: disk-store size bound (LRU eviction beyond it).
        dist_workers: worker-process count for the ``"distributed"``
            backend; ``None`` makes each run reuse its ``workers`` value.
        dist_shard_size: realizations per distributed shard; ``None``
            restores auto-sizing (a few shards per worker). Results never
            depend on it.
        dist_serve: ``"host:port"`` to serve the distributed shard queue
            at (other hosts join with ``python -m
            repro.runtime.distributed worker --connect host:port``);
            ``None`` restores the local process-pool transport.
        dist_connect: address(es) of listening workers (``worker
            --listen``) the coordinator should dial out to; ``None`` or
            ``()`` restores not dialing.
        dist_inner: backend that executes shards inside distributed
            workers (default ``"trajectory"``; ``"vectorized"`` is
            bit-identical).

    Example:
        >>> configure(backend="vectorized", workers=4)
        >>> configure(plan_cache="disk", compile_mode="process")
        >>> configure(plan_cache="memory", compile_mode="thread")  # undo
    """
    # Validate everything before mutating anything, so a failed configure()
    # never leaves partially-updated defaults behind.
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if backend is not None:
        get_backend(backend)  # fail at configure time, not first run()
    if chunk_shots is not _AUTO and chunk_shots is not None:
        chunk_shots = int(chunk_shots)
        if chunk_shots < 1:
            raise ValueError("chunk_shots must be >= 1 (or None for auto)")
    if compile_mode is not None and compile_mode not in COMPILE_MODES:
        raise ValueError(
            f"compile_mode must be one of {COMPILE_MODES}, got {compile_mode!r}"
        )
    if compile_workers is not _AUTO and compile_workers is not None:
        compile_workers = int(compile_workers)
        if compile_workers < 1:
            raise ValueError("compile_workers must be >= 1 (or None for auto)")
    if dist_workers is not _AUTO and dist_workers is not None:
        dist_workers = int(dist_workers)
        if dist_workers < 1:
            raise ValueError("dist_workers must be >= 1 (or None for auto)")
    if dist_shard_size is not _AUTO and dist_shard_size is not None:
        dist_shard_size = int(dist_shard_size)
        if dist_shard_size < 1:
            raise ValueError("dist_shard_size must be >= 1 (or None for auto)")
    if dist_serve is not _AUTO and dist_serve is not None:
        from .distributed import parse_address

        parse_address(dist_serve)  # fail at configure time, not first run()
    if dist_connect is not _AUTO and dist_connect is not None:
        from .distributed import parse_address

        if isinstance(dist_connect, str):
            dist_connect = (dist_connect,)
        dist_connect = tuple(dist_connect)
        for address in dist_connect:
            parse_address(address)
    if dist_inner is not None:
        if dist_inner == "distributed":
            raise ValueError("dist_inner cannot itself be 'distributed'")
        get_backend(dist_inner)
    if plan_cache is not None or plan_cache_dir is not _AUTO or (
        plan_cache_bytes is not _AUTO
    ):
        # Delegated validation happens first, so a bad cache spec leaves
        # the other defaults untouched too.
        cache_kwargs = {}
        if plan_cache_dir is not _AUTO:
            cache_kwargs["directory"] = plan_cache_dir
        if plan_cache_bytes is not _AUTO:
            cache_kwargs["max_bytes"] = plan_cache_bytes
        configure_plan_cache(plan_cache, **cache_kwargs)
    if workers is not None:
        _DEFAULTS["workers"] = int(workers)
    if backend is not None:
        _DEFAULTS["backend"] = backend
    if chunk_shots is not _AUTO:
        _DEFAULTS["chunk_shots"] = chunk_shots
    if compile_mode is not None:
        _DEFAULTS["compile_mode"] = compile_mode
    if compile_workers is not _AUTO:
        _DEFAULTS["compile_workers"] = compile_workers
    if dist_workers is not _AUTO:
        _DEFAULTS["dist_workers"] = dist_workers
    if dist_shard_size is not _AUTO:
        _DEFAULTS["dist_shard_size"] = dist_shard_size
    if dist_serve is not _AUTO:
        _DEFAULTS["dist_serve"] = dist_serve
    if dist_connect is not _AUTO:
        _DEFAULTS["dist_connect"] = () if dist_connect is None else dist_connect
    if dist_inner is not None:
        _DEFAULTS["dist_inner"] = dist_inner


def default_workers() -> int:
    """The configured default simulation-worker count."""
    return _DEFAULTS["workers"]


def default_backend() -> BackendLike:
    """The configured default backend (name or instance)."""
    return _DEFAULTS["backend"]


def default_chunk_shots() -> Optional[int]:
    """The configured vectorized chunk bound (``None`` = auto-size)."""
    return _DEFAULTS["chunk_shots"]


def default_compile_mode() -> str:
    """The configured compile fan-out mode: ``"thread"`` or ``"process"``."""
    return _DEFAULTS["compile_mode"]


def default_compile_workers() -> Optional[int]:
    """The configured compile-worker count (``None`` = follow ``workers``)."""
    return _DEFAULTS["compile_workers"]


def default_dist_workers() -> Optional[int]:
    """The configured distributed worker count (``None`` = follow ``workers``)."""
    return _DEFAULTS["dist_workers"]


def default_dist_shard_size() -> Optional[int]:
    """The configured distributed shard size (``None`` = auto-size)."""
    return _DEFAULTS["dist_shard_size"]


def default_dist_serve() -> Optional[str]:
    """The configured shard-queue serve address (``None`` = local transport)."""
    return _DEFAULTS["dist_serve"]


def default_dist_connect() -> Sequence[str]:
    """The configured listening-worker addresses to dial (may be empty)."""
    return _DEFAULTS["dist_connect"]


def default_dist_inner() -> str:
    """The configured inner backend distributed workers execute with."""
    return _DEFAULTS["dist_inner"]


RunInput = Union[Task, ExecutionPlan, Sequence[Task], Sequence[ExecutionPlan]]


def run(
    tasks: RunInput,
    device: Optional[Device] = None,
    backend: Optional[BackendLike] = None,
    options: Optional[SimOptions] = None,
    workers: Optional[int] = None,
    compile_workers: Optional[int] = None,
    compile_mode: Optional[str] = None,
) -> BatchResult:
    """Execute tasks (or pre-built plans) on a backend; results keep order.

    Args:
        tasks: a :class:`~repro.runtime.task.Task`, a list of tasks, or
            pre-built :class:`~repro.runtime.plan.ExecutionPlan` objects
            (from :func:`~repro.runtime.plan.compile_tasks`). Plans skip
            the compile stage, so one set of plans can be executed on
            several backends; with ``options=None`` the plans'
            compile-time options are reused, which is what makes the
            two-stage path reproduce the one-stage one exactly
            (realization sub-seeds were already derived at compile time).
        device: default device for tasks that don't carry their own.
        backend: a registered name (``"trajectory"``, ``"vectorized"``,
            ``"density"``) or a :class:`~repro.runtime.backends.Backend`
            instance; ``None`` uses the configured default.
        options: :class:`~repro.sim.SimOptions` noise/sampling
            configuration (``None`` = defaults, or the plans' recorded
            options when executing plans).
        workers: simulation fan-out (threads). ``None`` uses the
            configured default.
        compile_workers: compile-stage fan-out; ``None`` uses the
            configured default, which itself defaults to ``workers``.
        compile_mode: ``"thread"`` or ``"process"`` compile fan-out;
            ``None`` uses the configured default (``"thread"``).

    Returns:
        A :class:`~repro.runtime.task.BatchResult` with one
        :class:`~repro.runtime.task.TaskResult` per task, in task order,
        plus the compile/execute wall-time split.

    Results are bit-for-bit identical for every (backend × workers ×
    compile_workers × compile_mode × cache temperature) combination — the
    knobs only change wall time.

    Example:
        >>> batch = run(
        ...     [Task(circ, observables={"z": "IZ"}, pipeline="ca_ec+dd",
        ...           realizations=8, seed=1)],
        ...     device, backend="vectorized", workers=4,
        ... )  # doctest: +SKIP
        >>> batch[0].values  # doctest: +SKIP
    """
    if isinstance(tasks, (Task, ExecutionPlan)):
        tasks = [tasks]
    items = list(tasks)
    engine = get_backend(backend if backend is not None else default_backend())
    count = default_workers() if workers is None else int(workers)
    if count < 1:
        raise ValueError("workers must be >= 1")
    if compile_workers is None:
        compile_workers = default_compile_workers()
    compile_count = count if compile_workers is None else int(compile_workers)
    if compile_count < 1:
        raise ValueError("compile_workers must be >= 1")

    start = time.perf_counter()
    if items and all(isinstance(item, ExecutionPlan) for item in items):
        # Pre-built plans: report the compile seconds recorded at build
        # time; wall_time covers only the work done in this call.
        plans: List[ExecutionPlan] = items
        if options is None:
            options = plan_options(plans)
        compile_time = sum(p.compile_seconds for p in plans)
    else:
        if any(isinstance(item, ExecutionPlan) for item in items):
            raise TypeError(
                "cannot mix Task and ExecutionPlan objects in one run(); "
                "compile the tasks first and concatenate the plans"
            )
        options = options or SimOptions()
        plans = compile_tasks(
            items,
            device=device,
            options=options,
            workers=compile_count,
            mode=compile_mode,
        )
        compile_time = time.perf_counter() - start
    exec_start = time.perf_counter()
    results = engine.execute_plans(plans, options=options, workers=count)
    exec_time = time.perf_counter() - exec_start
    return BatchResult(
        results=results,
        backend=engine.name,
        workers=count,
        wall_time=time.perf_counter() - start,
        compile_time=compile_time,
        exec_time=exec_time,
    )
