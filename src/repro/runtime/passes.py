"""Composable compiler passes.

A :class:`Pass` transforms one circuit into another against a device, with
shared mutable state carried in a :class:`PassContext` (the RNG stream for
stochastic passes, and a report sink for passes that emit diagnostics).
The concrete passes wrap the compiler-stage functions one-to-one, so a
:class:`~repro.runtime.pipeline.Pipeline` built from them reproduces
``compile_circuit`` seed-for-seed.

Custom passes only need ``run(circuit, device, ctx) -> Circuit``; set
``stochastic = True`` when the pass consumes randomness from ``ctx.rng`` so
the runtime knows realizations differ (and must be recompiled each time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.schedule import Durations
from ..compiler.ca_dd import apply_ca_dd
from ..compiler.ca_ec import apply_ca_ec
from ..compiler.dd import DEFAULT_MIN_DURATION, apply_aligned_dd, apply_staggered_dd
from ..compiler.orientation import apply_orientation
from ..device.calibration import Device
from ..pauli.twirling import apply_twirl
from ..utils.rng import SeedLike, as_generator


@dataclass
class PassContext:
    """Shared state threaded through a pipeline run.

    ``rng`` feeds stochastic passes (twirl sampling); ``reports`` collects
    the diagnostic objects emitted by passes, keyed by pass name (a list,
    since a pass may appear more than once in a pipeline).
    """

    rng: np.random.Generator
    reports: Dict[str, List[Any]] = field(default_factory=dict)

    @classmethod
    def from_seed(cls, seed: SeedLike = None) -> "PassContext":
        return cls(rng=as_generator(seed))

    def record(self, name: str, report: Any) -> None:
        self.reports.setdefault(name, []).append(report)


class Pass:
    """Base class / protocol for compiler passes.

    Subclasses implement :meth:`run`. ``stochastic`` marks passes that draw
    from ``ctx.rng``; pipelines containing none are deterministic, which
    lets backends compile and schedule a task's circuit once and share the
    cached static coherent accumulation across realizations.
    """

    name: str = "pass"
    stochastic: bool = False

    def run(self, circuit: Circuit, device: Device, ctx: PassContext) -> Circuit:
        raise NotImplementedError

    def fingerprint(self) -> Optional[str]:
        """Content key for plan caching, or ``None`` if not addressable.

        The built-in passes return their name plus every parameter that
        affects the output circuit. Custom passes inherit ``None`` — a safe
        default that makes any pipeline containing them uncacheable — and
        should override this once their output is a pure function of the
        returned key (and the circuit/device).
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Orient(Pass):
    """Re-orient ECR/CX gates to avoid same-role adjacencies."""

    name = "orient"

    def run(self, circuit: Circuit, device: Device, ctx: PassContext) -> Circuit:
        out, report = apply_orientation(circuit, device)
        ctx.record(self.name, report)
        return out

    def fingerprint(self) -> Optional[str]:
        return self.name


class Twirl(Pass):
    """Sample a fresh Pauli twirl from ``ctx.rng``."""

    name = "twirl"
    stochastic = True

    def run(self, circuit: Circuit, device: Device, ctx: PassContext) -> Circuit:
        out, record = apply_twirl(circuit, ctx.rng)
        ctx.record(self.name, record)
        return out

    def fingerprint(self) -> Optional[str]:
        # Addressable, but never actually cached: stochastic passes make
        # their pipeline non-deterministic, which disables plan caching.
        return self.name


class AlignedDD(Pass):
    """Context-unaware aligned X2 sequences on all idle windows."""

    name = "aligned_dd"

    def __init__(self, min_duration: float = DEFAULT_MIN_DURATION):
        self.min_duration = min_duration

    def run(self, circuit: Circuit, device: Device, ctx: PassContext) -> Circuit:
        return apply_aligned_dd(circuit, device, self.min_duration)

    def fingerprint(self) -> Optional[str]:
        return f"{self.name}({self.min_duration!r})"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(min_duration={self.min_duration!r})"


class StaggeredDD(Pass):
    """Context-unaware staggered DD via a 2-coloring."""

    name = "staggered_dd"

    def __init__(self, min_duration: float = DEFAULT_MIN_DURATION):
        self.min_duration = min_duration

    def run(self, circuit: Circuit, device: Device, ctx: PassContext) -> Circuit:
        return apply_staggered_dd(circuit, device, self.min_duration)

    def fingerprint(self) -> Optional[str]:
        return f"{self.name}({self.min_duration!r})"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(min_duration={self.min_duration!r})"


class CADD(Pass):
    """Context-aware DD: Walsh sequences assigned by coloring (Algorithm 1)."""

    name = "ca_dd"

    def __init__(self, min_duration: float = DEFAULT_MIN_DURATION):
        self.min_duration = min_duration

    def run(self, circuit: Circuit, device: Device, ctx: PassContext) -> Circuit:
        out, report = apply_ca_dd(circuit, device, self.min_duration)
        ctx.record(self.name, report)
        return out

    def fingerprint(self) -> Optional[str]:
        return f"{self.name}({self.min_duration!r})"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(min_duration={self.min_duration!r})"


class CAEC(Pass):
    """Context-aware error compensation (Algorithm 2).

    ``durations`` is the planner's timing belief; ``None`` uses the
    device's true duration table (see paper Fig. 9c for why they differ).
    """

    name = "ca_ec"

    def __init__(self, durations: Optional[Durations] = None):
        self.durations = durations

    def run(self, circuit: Circuit, device: Device, ctx: PassContext) -> Circuit:
        out, report = apply_ca_ec(circuit, device, durations=self.durations)
        ctx.record(self.name, report)
        return out

    def fingerprint(self) -> Optional[str]:
        # Durations is a frozen dataclass of floats: its repr is exactly
        # the planner's timing belief, which changes the output circuit.
        return f"{self.name}({self.durations!r})"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(durations={self.durations!r})"
