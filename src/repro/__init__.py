"""repro: context-aware compiling for correlated-noise suppression.

A from-scratch reproduction of "Suppressing Correlated Noise in Quantum
Computers via Context-Aware Compiling" (Seif et al., ISCA 2024,
arXiv:2403.06852): circuit IR, device models, a sign-trajectory noise
simulator, the CA-DD and CA-EC compiler passes, benchmarking protocols, and
the paper's application studies.

Quickstart::

    from repro import Circuit, fake_nazca, compile_circuit, expectation_values

    device = fake_nazca().subdevice(range(4))
    circuit = Circuit(4)
    ...
    compiled = compile_circuit(circuit, device, "ca_ec", seed=0)
    result = expectation_values(compiled, device, {"z0": "IIIZ"})
"""

from .circuits import (
    Circuit,
    Durations,
    Instruction,
    Moment,
    draw,
    gates,
    schedule,
    stratify,
    summary,
)
from .compiler import (
    STRATEGIES,
    Strategy,
    apply_aligned_dd,
    apply_ca_dd,
    apply_ca_ec,
    apply_orientation,
    apply_staggered_dd,
    compile_circuit,
    realization_factory,
)
from .device import (
    Device,
    Topology,
    fake_brisbane,
    fake_nazca,
    fake_penguino,
    fake_sherbrooke,
    heavy_hex,
    linear_chain,
    ring,
    synthetic_device,
)
from .pauli import Pauli, apply_twirl
from .sim import (
    SimOptions,
    SimResult,
    average_over_realizations,
    bit_probabilities,
    density_expectations,
    density_probabilities,
    expectation_values,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Durations",
    "Instruction",
    "Moment",
    "draw",
    "summary",
    "gates",
    "schedule",
    "stratify",
    "STRATEGIES",
    "Strategy",
    "apply_aligned_dd",
    "apply_ca_dd",
    "apply_ca_ec",
    "apply_orientation",
    "apply_staggered_dd",
    "compile_circuit",
    "realization_factory",
    "Device",
    "Topology",
    "fake_brisbane",
    "fake_nazca",
    "fake_penguino",
    "fake_sherbrooke",
    "heavy_hex",
    "linear_chain",
    "ring",
    "synthetic_device",
    "Pauli",
    "apply_twirl",
    "SimOptions",
    "SimResult",
    "average_over_realizations",
    "bit_probabilities",
    "density_expectations",
    "density_probabilities",
    "expectation_values",
    "__version__",
]
