"""repro: context-aware compiling for correlated-noise suppression.

A from-scratch reproduction of "Suppressing Correlated Noise in Quantum
Computers via Context-Aware Compiling" (Seif et al., ISCA 2024,
arXiv:2403.06852): circuit IR, device models, a sign-trajectory noise
simulator, the CA-DD and CA-EC compiler passes, benchmarking protocols, and
the paper's application studies — all driven through a unified runtime with
composable pass pipelines, pluggable backends, and a batched ``run()``
entry point.

Quickstart::

    from repro import Circuit, Task, fake_nazca, run

    device = fake_nazca().subdevice(range(4))
    circuit = Circuit(4)
    ...
    batch = run(
        [
            Task(circuit, observables={"z0": "IIIZ"}, pipeline="ca_ec+dd",
                 realizations=8, seed=0),
            Task(circuit, observables={"z0": "IIIZ"}, pipeline="none",
                 realizations=8, seed=0),
        ],
        device,
        backend="trajectory",   # or "density" for exact small systems
        workers=4,              # parallel, but seed-for-seed deterministic
    )
    suppressed, baseline = batch[0]["z0"], batch[1]["z0"]

Custom pipelines compose passes directly::

    from repro import CADD, CAEC, Orient, Pipeline, Twirl

    pipeline = Pipeline([Orient(), Twirl(), CADD(), CAEC()])
    compiled = pipeline.compile(circuit, device, seed=0)

The pre-1.1 helpers (``compile_circuit``, ``expectation_values``,
``bit_probabilities``, ``average_over_realizations``) remain as thin
deprecated wrappers over the runtime.
"""

from .circuits import (
    Circuit,
    Durations,
    Instruction,
    Moment,
    draw,
    gates,
    schedule,
    stratify,
    summary,
)
from .compiler import (
    STRATEGIES,
    Strategy,
    apply_aligned_dd,
    apply_ca_dd,
    apply_ca_ec,
    apply_orientation,
    apply_staggered_dd,
    compile_circuit,
    realization_factory,
)
from .device import (
    Device,
    Topology,
    fake_brisbane,
    fake_nazca,
    fake_penguino,
    fake_sherbrooke,
    heavy_hex,
    linear_chain,
    ring,
    synthetic_device,
)
from .pauli import Pauli, apply_twirl
from .runtime import (
    BACKENDS,
    CADD,
    CAEC,
    AlignedDD,
    Backend,
    BatchResult,
    ExecutionPlan,
    Orient,
    Pass,
    PassContext,
    Pipeline,
    PlanCache,
    PlanStore,
    StaggeredDD,
    Sweep,
    SweepResult,
    Task,
    TaskResult,
    Twirl,
    VectorizedBackend,
    compile_tasks,
    configure,
    get_backend,
    pipeline_for,
    register_backend,
    run,
)
from .sim import (
    SimOptions,
    SimResult,
    average_over_realizations,
    bit_probabilities,
    density_expectations,
    density_probabilities,
    expectation_values,
)

__version__ = "1.5.0"

__all__ = [
    "Circuit",
    "Durations",
    "Instruction",
    "Moment",
    "draw",
    "summary",
    "gates",
    "schedule",
    "stratify",
    "STRATEGIES",
    "Strategy",
    "apply_aligned_dd",
    "apply_ca_dd",
    "apply_ca_ec",
    "apply_orientation",
    "apply_staggered_dd",
    "compile_circuit",
    "realization_factory",
    "Device",
    "Topology",
    "fake_brisbane",
    "fake_nazca",
    "fake_penguino",
    "fake_sherbrooke",
    "heavy_hex",
    "linear_chain",
    "ring",
    "synthetic_device",
    "Pauli",
    "apply_twirl",
    "BACKENDS",
    "Backend",
    "BatchResult",
    "ExecutionPlan",
    "Pass",
    "PassContext",
    "Pipeline",
    "PlanCache",
    "PlanStore",
    "Sweep",
    "SweepResult",
    "Task",
    "TaskResult",
    "compile_tasks",
    "configure",
    "Orient",
    "Twirl",
    "AlignedDD",
    "StaggeredDD",
    "CADD",
    "CAEC",
    "VectorizedBackend",
    "get_backend",
    "pipeline_for",
    "register_backend",
    "run",
    "SimOptions",
    "SimResult",
    "average_over_realizations",
    "bit_probabilities",
    "density_expectations",
    "density_probabilities",
    "expectation_values",
    "__version__",
]
