"""Shared stochastic-noise sampling, factored out of the trajectory executor.

The Monte-Carlo executor consumes its RNG stream in a fixed, state-independent
order: which draws happen (and how many) depends only on the device, the
schedule, and the noise toggles — never on the quantum state. The state only
enters through *comparisons* against already-drawn uniforms (measurement
collapse, amplitude-damping jumps), each of which consumes exactly one draw.

That property is what makes a vectorized batch engine bit-for-bit
reproducible: the draws of every shot can be materialized up front, in the
exact stream order of the scalar per-shot loop, and the state evolution can
then be applied to all shots at once.

This module is the single source of truth for that stream order:

* :func:`build_noise_plan` precomputes, per moment, every draw site and its
  static probability (dephasing flips, damping windows, gate-error sites,
  measurement collapses, per-shot detuning sources);
* :func:`sample_shot` walks one plan with one generator and records every
  draw of one trajectory, consuming the stream exactly like the legacy
  in-line sampling did.

Both the scalar :class:`~repro.sim.executor.Executor` and the batched
:class:`~repro.sim.vectorized.VectorizedExecutor` sample through here, so
``trajectory`` and ``vectorized`` results coincide seed for seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..circuits.schedule import ScheduledCircuit
from ..device.calibration import Device

_VIRTUAL = {"rz", "z", "s", "sdg", "t", "id"}
_PAULI_1Q = ("X", "Y", "Z")
_PAULI_2Q = [
    (a, b) for a in ("I", "X", "Y", "Z") for b in ("I", "X", "Y", "Z")
][1:]


def _dephasing_prob(t2: float, t1: float, duration: float) -> float:
    """Z-flip probability over ``duration`` from pure dephasing."""
    if duration <= 0.0 or not math.isfinite(t2):
        return 0.0
    inv_tphi = 1.0 / t2 - 1.0 / (2.0 * t1) if math.isfinite(t1) else 1.0 / t2
    inv_tphi = max(inv_tphi, 0.0)
    return 0.5 * (1.0 - math.exp(-duration * inv_tphi))


@dataclass(frozen=True)
class GateErrorSite:
    """One gate-error draw site: ``repeats`` (uniform, maybe Pauli) draws."""

    qubits: Tuple[int, ...]
    prob: float
    two_qubit: bool
    repeats: int = 1


@dataclass(frozen=True)
class MomentNoisePlan:
    """Every draw of one moment, in stream order.

    Attributes:
        measured: ``(qubit, clbit)`` per measurement instruction, in moment
            order; each consumes one uniform (the collapse draw).
        idles: ``(qubit, p_z, gamma)`` per qubit with any idle noise, in
            qubit order. ``p_z > 0`` consumes one uniform (dephasing flip),
            then ``gamma > 0`` consumes one uniform (damping jump), exactly
            interleaved like the scalar per-qubit loop.
        gate_errors: draw sites for step 5, in instruction order.
    """

    measured: Tuple[Tuple[int, int], ...]
    idles: Tuple[Tuple[int, float, float], ...]
    gate_errors: Tuple[GateErrorSite, ...]


@dataclass(frozen=True)
class NoisePlan:
    """All draw sites of one scheduled circuit under one set of options."""

    num_qubits: int
    #: per-qubit ``(quasistatic_sigma, parity_delta)``, or ``None`` when
    #: per-shot detunings are not sampled (stochastic/coherent off).
    detunings: Optional[Tuple[Tuple[float, float], ...]]
    moments: Tuple[MomentNoisePlan, ...]


@dataclass
class ShotNoise:
    """Every draw of one trajectory, recorded in stream order.

    ``gate_paulis[m][s]`` holds, for gate-error site ``s`` of moment ``m``,
    one entry per repeat: ``None`` (no error) or the sampled Pauli index
    (into ``_PAULI_2Q`` for two-qubit sites, ``_PAULI_1Q`` otherwise).
    """

    detunings: Optional[np.ndarray]
    measure_u: List[List[float]]
    idle_flips: List[List[bool]]
    idle_u: List[List[float]]
    gate_paulis: List[List[Tuple[Optional[int], ...]]]


def build_noise_plan(
    scheduled: ScheduledCircuit, device: Device, options
) -> NoisePlan:
    """Precompute every draw site of ``scheduled`` under ``options``.

    The plan is state-free and shot-independent, so one plan serves every
    trajectory of an executor (and every chunk of a batched engine).
    """
    n = scheduled.num_qubits
    detunings = None
    if options.stochastic and options.coherent:
        detunings = tuple(
            (device.qubit(q).quasistatic_sigma, device.qubit(q).parity_delta)
            for q in range(n)
        )
    moments = []
    for sm in scheduled:
        moment = sm.moment
        measured = tuple(
            (inst.qubits[0], inst.clbits[0])
            for inst in moment
            if inst.gate.is_measurement
        )
        idles: List[Tuple[int, float, float]] = []
        if sm.duration > 0.0:
            for q in range(n):
                params = device.qubit(q)
                p_z = (
                    _dephasing_prob(params.t2, params.t1, sm.duration)
                    if options.dephasing
                    else 0.0
                )
                gamma = 0.0
                if options.amplitude_damping and math.isfinite(params.t1):
                    gamma = 1.0 - math.exp(-sm.duration / params.t1)
                if p_z > 0.0 or gamma > 0.0:
                    idles.append((q, p_z, gamma))
        sites: List[GateErrorSite] = []
        if options.gate_errors:
            for inst in moment:
                gate = inst.gate
                if gate.is_measurement or gate.is_delay:
                    continue
                if gate.num_qubits == 2:
                    p2 = device.pair_error(*inst.qubits) * gate.error_scale
                    if p2 > 0.0:
                        sites.append(GateErrorSite(tuple(inst.qubits), p2, True))
                elif gate.name == "dd":
                    p1 = device.qubit(inst.qubits[0]).p1
                    if p1 > 0.0 and gate.dd_fractions:
                        sites.append(
                            GateErrorSite(
                                (inst.qubits[0],),
                                p1,
                                False,
                                repeats=len(gate.dd_fractions),
                            )
                        )
                elif gate.name not in _VIRTUAL:
                    p1 = device.qubit(inst.qubits[0]).p1
                    if p1 > 0.0:
                        sites.append(GateErrorSite((inst.qubits[0],), p1, False))
        moments.append(MomentNoisePlan(measured, tuple(idles), tuple(sites)))
    return NoisePlan(n, detunings, tuple(moments))


def sample_shot(plan: NoisePlan, rng: np.random.Generator) -> ShotNoise:
    """Draw one trajectory's noise record, in the scalar stream order.

    Stream order per trajectory: detunings first, then per moment the
    measurement collapses, the per-qubit dephasing/damping interleave, and
    the gate-error sites (one uniform per repeat, plus one integer draw
    immediately after each triggered uniform).
    """
    detunings = None
    if plan.detunings is not None:
        detunings = np.zeros(plan.num_qubits)
        for q, (sigma, delta) in enumerate(plan.detunings):
            if sigma > 0.0:
                detunings[q] += rng.normal(0.0, sigma)
            if delta > 0.0:
                detunings[q] += delta * (1 if rng.random() < 0.5 else -1)
    measure_u: List[List[float]] = []
    idle_flips: List[List[bool]] = []
    idle_u: List[List[float]] = []
    gate_paulis: List[List[Tuple[Optional[int], ...]]] = []
    for mp in plan.moments:
        measure_u.append([rng.random() for _ in mp.measured])
        flips: List[bool] = []
        uniforms: List[float] = []
        for _q, p_z, gamma in mp.idles:
            if p_z > 0.0:
                flips.append(rng.random() < p_z)
            if gamma > 0.0:
                uniforms.append(rng.random())
        idle_flips.append(flips)
        idle_u.append(uniforms)
        sites: List[Tuple[Optional[int], ...]] = []
        for site in mp.gate_errors:
            high = len(_PAULI_2Q) if site.two_qubit else len(_PAULI_1Q)
            sites.append(
                tuple(
                    int(rng.integers(high)) if rng.random() < site.prob else None
                    for _ in range(site.repeats)
                )
            )
        gate_paulis.append(sites)
    return ShotNoise(detunings, measure_u, idle_flips, idle_u, gate_paulis)
