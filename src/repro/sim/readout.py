"""Readout twirling and assignment-error mitigation (paper Sec. V C, Ref. [64]).

Real readout errors are asymmetric (``p(1|0) != p(0|1)``). Twirling the
readout — applying a recorded random X immediately before measurement and
un-flipping the classical bit — averages the two error rates, turning the
assignment channel into a symmetric depolarizing-like attenuation that a
single scale factor inverts. The paper incorporates "a twirling layer
before readouts, which diagonalizes the readout errors through averaging
over systematic errors".

This module provides:

* :func:`sample_counts` — sampled measurement outcomes with asymmetric
  assignment errors, optionally readout-twirled;
* :func:`estimate_confusion` — per-qubit confusion matrices from the
  standard all-0 / all-1 calibration circuits;
* :func:`invert_confusion` / :func:`corrected_expectation` — tensored
  confusion-matrix inversion of measured distributions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.schedule import ScheduledCircuit, schedule
from ..device.calibration import Device, QubitParams
from ..utils.rng import SeedLike, as_generator
from .executor import Executor, SimOptions


def assignment_probabilities(params: QubitParams) -> Tuple[float, float]:
    """``(p(read 1 | true 0), p(read 0 | true 1))`` for a qubit.

    The asymmetry splits the calibrated mean error ``r`` into
    ``p01 = r (1 - a)`` and ``p10 = r (1 + a)`` — excited-state readout is
    typically worse (relaxation during the readout pulse), so ``a > 0``.
    """
    r = params.readout_error
    a = params.readout_asymmetry
    return r * (1.0 - a), r * (1.0 + a)


def sample_counts(
    circuit: Circuit,
    device: Device,
    qubits: Sequence[int],
    shots: int = 256,
    options: Optional[SimOptions] = None,
    twirl: bool = False,
    seed: SeedLike = None,
) -> Counter:
    """Sampled outcomes on ``qubits`` with asymmetric assignment errors.

    With ``twirl=True`` each shot applies a recorded random X frame before
    readout and un-flips the classical outcome, symmetrizing the channel.
    Returns a :class:`collections.Counter` of bit tuples (ordered like
    ``qubits``).
    """
    options = options or SimOptions(shots=shots)
    scheduled = (
        circuit
        if isinstance(circuit, ScheduledCircuit)
        else schedule(circuit, device.durations)
    )
    executor = Executor(scheduled, device, options)
    rng = as_generator(seed if seed is not None else options.seed)
    counts: Counter = Counter()
    for _ in range(shots):
        state, _clbits = executor._run_trajectory(rng)
        outcome = []
        for q in qubits:
            # Sequential projective collapse keeps multi-qubit correlations.
            frame = bool(twirl and rng.random() < 0.5)
            if frame:
                state.apply_pauli("X", q)
            bit = state.measure(q, rng)
            p01, p10 = assignment_probabilities(device.qubit(q))
            if bit == 0 and rng.random() < p01:
                bit = 1
            elif bit == 1 and rng.random() < p10:
                bit = 0
            if frame:
                bit ^= 1
            outcome.append(bit)
        counts[tuple(outcome)] += 1
    return counts


def expectation_from_counts(counts: Counter, qubit_index: int) -> float:
    """``<Z>`` of one measured qubit from a counts dictionary."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("empty counts")
    value = 0.0
    for bits, n in counts.items():
        value += n * (1.0 - 2.0 * bits[qubit_index])
    return value / total


@dataclass
class ConfusionMatrices:
    """Per-qubit 2x2 confusion matrices: ``M[read, true]``."""

    matrices: Dict[int, np.ndarray]

    def attenuation(self, qubit: int) -> float:
        """Z-polarization attenuation ``1 - p01 - p10``."""
        m = self.matrices[qubit]
        return float(m[0, 0] - m[1, 0] + m[1, 1] - m[0, 1]) / 2.0


def estimate_confusion(
    device: Device,
    qubits: Sequence[int],
    shots: int = 512,
    seed: SeedLike = 0,
    options: Optional[SimOptions] = None,
) -> ConfusionMatrices:
    """Measure confusion matrices with all-0 / all-1 calibration circuits."""
    options = options or SimOptions(
        shots=shots, coherent=False, stochastic=False, dephasing=False,
        amplitude_damping=False, gate_errors=False,
    )
    matrices: Dict[int, np.ndarray] = {}
    results = {}
    for prep in (0, 1):
        circ = Circuit(device.num_qubits)
        if prep == 1:
            for q in qubits:
                circ.x(q, new_moment=(q == qubits[0]))
        else:
            circ.append_moment([])
        results[prep] = sample_counts(
            circ, device, qubits, shots=shots, options=options, seed=seed + prep
        )
    for index, q in enumerate(qubits):
        m = np.zeros((2, 2))
        for prep in (0, 1):
            total = sum(results[prep].values())
            ones = sum(
                n for bits, n in results[prep].items() if bits[index] == 1
            )
            m[1, prep] = ones / total
            m[0, prep] = 1.0 - ones / total
        matrices[q] = m
    return ConfusionMatrices(matrices)


def invert_confusion(
    counts: Counter, qubits: Sequence[int], confusion: ConfusionMatrices
) -> Dict[Tuple[int, ...], float]:
    """Tensored confusion-matrix inversion of a measured distribution.

    Returns quasi-probabilities (may be slightly negative from sampling
    noise); they sum to 1.
    """
    total = sum(counts.values())
    k = len(qubits)
    measured = np.zeros(2**k)
    for bits, n in counts.items():
        index = 0
        for i, b in enumerate(bits):
            index |= b << i
        measured[index] = n / total
    full = np.array([[1.0]])
    for q in reversed(qubits):
        full = np.kron(confusion.matrices[q], full)
    corrected = np.linalg.solve(full, measured)
    out = {}
    for index in range(2**k):
        bits = tuple((index >> i) & 1 for i in range(k))
        out[bits] = float(corrected[index])
    return out


def corrected_expectation(
    counts: Counter,
    qubits: Sequence[int],
    qubit: int,
    confusion: ConfusionMatrices,
) -> float:
    """Readout-corrected ``<Z_qubit>`` from measured counts."""
    quasi = invert_confusion(counts, qubits, confusion)
    index = list(qubits).index(qubit)
    return sum(p * (1.0 - 2.0 * bits[index]) for bits, p in quasi.items())
