"""Monte-Carlo trajectory executor.

Each trajectory samples one realization of the stochastic noise (per-shot
quasi-static detuning, charge-parity sign, dephasing/damping jumps, gate
depolarizing events) and evolves a pure state through the scheduled circuit:

1. measurements collapse at the start of their moment;
2. the moment's coherent Z/ZZ phases (static crosstalk + this shot's
   detunings, modulated by sign trajectories) are applied as one diagonal;
3. stochastic dephasing / amplitude-damping jumps are sampled per qubit;
4. the moment's ideal unitaries (including DD nets and conditioned gates)
   are applied;
5. gate-depolarizing events are sampled per physical gate.

Expectation values are computed exactly on each trajectory (emulating the
readout-corrected results the paper reports); sampled readout with
assignment errors is available for probability-type experiments.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.schedule import ScheduledCircuit, schedule
from ..device.calibration import Device
from ..pauli.pauli import Pauli
from ..utils.rng import SeedLike, as_generator
from .coherent import CoherentAccumulation, accumulate_coherent
from .sampling import (
    _PAULI_1Q,
    _PAULI_2Q,
    NoisePlan,
    ShotNoise,
    build_noise_plan,
    sample_shot,
)
from .statevector import StateVector, vector_norm
from .timeline import MomentTimeline, build_timeline


@dataclass(frozen=True)
class SimOptions:
    """Noise-model toggles and sampling configuration."""

    shots: int = 128
    seed: SeedLike = None
    coherent: bool = True
    stochastic: bool = True
    dephasing: bool = True
    amplitude_damping: bool = True
    gate_errors: bool = True
    readout_errors: bool = False
    stark_from_1q: bool = False

    def with_seed(self, seed: SeedLike) -> "SimOptions":
        from dataclasses import replace

        return replace(self, seed=seed)


@dataclass
class SimResult:
    """Mean and standard error per requested quantity."""

    values: Dict[str, float]
    errors: Dict[str, float]
    shots: int

    def __getitem__(self, key: str) -> float:
        return self.values[key]

    def error(self, key: str) -> float:
        """Standard error of the mean for ``key``."""
        return self.errors[key]

    def items(self):
        """Iterate over ``(key, value)`` pairs, like a dict."""
        return self.values.items()

    def keys(self):
        return self.values.keys()

    def __contains__(self, key: str) -> bool:
        return key in self.values

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        body = ", ".join(
            f"{k}={v:+.6f}±{self.errors.get(k, 0.0):.6f}"
            for k, v in self.values.items()
        )
        return f"{type(self).__name__}({body}, shots={self.shots})"


class Executor:
    """Runs one scheduled circuit many times under sampled noise."""

    def __init__(
        self,
        scheduled: ScheduledCircuit,
        device: Device,
        options: Optional[SimOptions] = None,
    ):
        if scheduled.num_qubits != device.num_qubits:
            raise ValueError(
                f"circuit has {scheduled.num_qubits} qubits, device has "
                f"{device.num_qubits}"
            )
        self.scheduled = scheduled
        self.device = device
        self.options = options or SimOptions()
        self._timelines: List[MomentTimeline] = [
            build_timeline(sm.moment, scheduled.num_qubits, sm.duration)
            for sm in scheduled
        ]
        # Static coherent accumulation is shot-independent; per-shot detuning
        # contributions are added on top of a cached copy.
        self._static_acc: List[CoherentAccumulation] = [
            accumulate_coherent(
                tl, device, detunings=None, stark_from_1q=self.options.stark_from_1q
            )
            if self.options.coherent
            else CoherentAccumulation()
            for tl in self._timelines
        ]
        # Every draw site, in stream order — shared with the vectorized
        # engine, which is what keeps the two backends seed-for-seed equal.
        self._plan: NoisePlan = build_noise_plan(scheduled, device, self.options)

    # -- single trajectory ---------------------------------------------------

    def _run_trajectory(
        self, rng: np.random.Generator
    ) -> Tuple[StateVector, List[int]]:
        return self._evolve(sample_shot(self._plan, rng))

    def _evolve(self, noise: ShotNoise) -> Tuple[StateVector, List[int]]:
        """Evolve one trajectory from its pre-sampled noise record."""
        opts = self.options
        n = self.scheduled.num_qubits
        state = StateVector(n)
        clbits = [0] * self.scheduled.circuit.num_clbits
        detunings = noise.detunings

        for m, (sm, timeline, static_acc) in enumerate(
            zip(self.scheduled, self._timelines, self._static_acc)
        ):
            moment = sm.moment
            plan = self._plan.moments[m]
            # 1. measurements collapse first; idle neighbors then accumulate
            # (conditional) phase with the collapsed qubit for the rest of
            # the readout window.
            for j, (qubit, clbit) in enumerate(plan.measured):
                clbits[clbit] = state.measure(qubit, u=noise.measure_u[m][j])

            # 2. coherent phases
            if opts.coherent:
                acc = static_acc
                if detunings is not None and sm.duration > 0.0:
                    acc = CoherentAccumulation(dict(static_acc.z), dict(static_acc.zz))
                    for q in range(n):
                        rate = detunings[q]
                        if rate != 0.0:
                            acc.add_z(
                                q,
                                2.0 * math.pi * rate * sm.duration
                                * timeline.sign_integral(q),
                            )
                state.apply_phases(acc)

            # 3. stochastic dephasing / damping (per-qubit interleave)
            flip_at = damp_at = 0
            for q, p_z, gamma in plan.idles:
                if p_z > 0.0:
                    if noise.idle_flips[m][flip_at]:
                        state.apply_pauli("Z", q)
                    flip_at += 1
                if gamma > 0.0:
                    p_jump = gamma * state.probability_one(q)
                    if noise.idle_u[m][damp_at] < p_jump:
                        _apply_decay_jump(state, q)
                    else:
                        _apply_no_jump(state, q, gamma)
                    damp_at += 1

            # 4. ideal unitaries
            for inst in moment:
                gate = inst.gate
                if gate.is_measurement or gate.is_delay:
                    continue
                if inst.condition is not None:
                    clbit, value = inst.condition
                    if clbits[clbit] != value:
                        continue
                if gate.matrix is not None:
                    state.apply_gate(gate.matrix, inst.qubits)

            # 5. gate errors
            for site, draws in zip(plan.gate_errors, noise.gate_paulis[m]):
                for code in draws:
                    if code is None:
                        continue
                    if site.two_qubit:
                        pa, pb = _PAULI_2Q[code]
                        state.apply_pauli(pa, site.qubits[0])
                        state.apply_pauli(pb, site.qubits[1])
                    else:
                        state.apply_pauli(_PAULI_1Q[code], site.qubits[0])

        return state, clbits

    # -- aggregated runs -------------------------------------------------------

    def expectations(
        self,
        observables: Dict[str, Pauli],
        shots: Optional[int] = None,
        seed: SeedLike = None,
    ) -> SimResult:
        """Average ``<P>`` over trajectories for each named observable.

        ``seed`` overrides ``options.seed`` for this call, so one executor
        (with its cached static coherent accumulation) can serve many
        independently seeded runs — the batched runtime relies on this.
        """
        rng = as_generator(seed if seed is not None else self.options.seed)
        count = shots or self.options.shots
        samples: Dict[str, List[float]] = {k: [] for k in observables}
        for _ in range(count):
            state, _clbits = self._run_trajectory(rng)
            for key, pauli in observables.items():
                value = state.expectation_pauli(pauli)
                if self.options.readout_errors:
                    value *= self._readout_attenuation(pauli)
                samples[key].append(value)
        return _aggregate(samples, count)

    def probabilities(
        self,
        targets: Dict[str, Dict[int, int]],
        shots: Optional[int] = None,
        seed: SeedLike = None,
    ) -> SimResult:
        """Average probability of each named qubit->bit assignment."""
        rng = as_generator(seed if seed is not None else self.options.seed)
        count = shots or self.options.shots
        samples: Dict[str, List[float]] = {k: [] for k in targets}
        for _ in range(count):
            state, _clbits = self._run_trajectory(rng)
            for key, bits in targets.items():
                if self.options.readout_errors:
                    samples[key].append(self._noisy_bit_probability(state, bits))
                else:
                    samples[key].append(state.probability_of_bitstring(bits))
        return _aggregate(samples, count)

    def _readout_attenuation(self, pauli: Pauli) -> float:
        factor = 1.0
        for q in range(pauli.num_qubits):
            if pauli.factor(q) != "I":
                factor *= 1.0 - 2.0 * self.device.qubit(q).readout_error
        return factor

    def _noisy_bit_probability(self, state: StateVector, bits: Dict[int, int]) -> float:
        """Exact probability including independent assignment flips."""
        qubits = sorted(bits)
        total = 0.0
        for outcome in range(1 << len(qubits)):
            actual = {q: (outcome >> i) & 1 for i, q in enumerate(qubits)}
            p = state.probability_of_bitstring(actual)
            if p == 0.0:
                continue
            weight = 1.0
            for q in qubits:
                r = self.device.qubit(q).readout_error
                weight *= (1.0 - r) if actual[q] == bits[q] else r
            total += p * weight
        return total


def _apply_decay_jump(state: StateVector, qubit: int) -> None:
    """Amplitude-damping jump: project onto |1>, then lower to |0>."""
    idx = np.arange(state.vector.size)
    one = ((idx >> qubit) & 1) == 1
    amp = np.where(one, state.vector, 0.0)
    norm = vector_norm(amp)
    if norm <= 0.0:
        # The |1> amplitude underflowed: the jump branch has vanishing
        # probability, so renormalize the un-jumped state instead of
        # dividing by zero.
        total = vector_norm(state.vector)
        if total > 0.0:
            state.vector = state.vector / total
        return
    lowered = np.zeros_like(state.vector)
    lowered[idx[one] ^ (1 << qubit)] = amp[one]
    state.vector = lowered / norm


def _apply_no_jump(state: StateVector, qubit: int, gamma: float) -> None:
    """No-jump Kraus ``diag(1, sqrt(1-gamma))`` with renormalization."""
    idx = np.arange(state.vector.size)
    one = ((idx >> qubit) & 1) == 1
    scaled = np.where(one, state.vector * math.sqrt(1.0 - gamma), state.vector)
    norm = vector_norm(scaled)
    if norm <= 0.0:
        # gamma ~ 1 with all population in |1>: the no-jump branch carries
        # zero weight, so the trajectory decays deterministically.
        _apply_decay_jump(state, qubit)
        return
    state.vector = scaled / norm


def _aggregate(samples: Dict[str, List[float]], count: int) -> SimResult:
    values = {}
    errors = {}
    for key, data in samples.items():
        arr = np.asarray(data)
        values[key] = float(arr.mean())
        errors[key] = float(arr.std(ddof=1) / math.sqrt(len(arr))) if len(arr) > 1 else 0.0
    return SimResult(values=values, errors=errors, shots=count)


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


CircuitLike = Union[Circuit, ScheduledCircuit]


def _warn_deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"{name} is deprecated since repro 1.1; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _as_scheduled(circuit: CircuitLike, device: Device) -> ScheduledCircuit:
    if isinstance(circuit, ScheduledCircuit):
        return circuit
    return schedule(circuit, device.durations)


def expectation_values(
    circuit: CircuitLike,
    device: Device,
    observables: Dict[str, Union[str, Pauli]],
    options: Optional[SimOptions] = None,
) -> SimResult:
    """Run ``circuit`` on ``device`` and return Pauli expectation values.

    ``observables`` may use label strings (leftmost char = highest qubit).

    .. deprecated:: 1.1
        Thin wrapper over the batched runtime; prefer
        ``repro.runtime.run(Task(circuit, observables=...), device)``.
    """
    from ..runtime import Task, run  # local: the runtime imports this module

    _warn_deprecated(
        "expectation_values", "repro.runtime.run(Task(circuit, observables=...))"
    )
    return run(
        Task(circuit, observables=observables), device, options=options
    ).results[0]


def bit_probabilities(
    circuit: CircuitLike,
    device: Device,
    targets: Dict[str, Dict[int, int]],
    options: Optional[SimOptions] = None,
) -> SimResult:
    """Run ``circuit`` and return probabilities of qubit->bit assignments.

    .. deprecated:: 1.1
        Thin wrapper over the batched runtime; prefer
        ``repro.runtime.run(Task(circuit, bit_targets=...), device)``.
    """
    from ..runtime import Task, run  # local: the runtime imports this module

    _warn_deprecated(
        "bit_probabilities", "repro.runtime.run(Task(circuit, bit_targets=...))"
    )
    return run(Task(circuit, bit_targets=targets), device, options=options).results[0]


def average_over_realizations(
    factory: Callable[[np.random.Generator], CircuitLike],
    device: Device,
    observables: Dict[str, Union[str, Pauli]],
    realizations: int = 8,
    options: Optional[SimOptions] = None,
    seed: SeedLike = None,
) -> SimResult:
    """Average expectations over circuit realizations (e.g. twirl samples).

    ``factory(rng)`` must return a fresh realization; each runs with
    ``options.shots`` trajectories, and results are pooled.

    .. deprecated:: 1.1
        Thin wrapper over the batched runtime; prefer
        ``repro.runtime.run(Task(circuit, pipeline=..., realizations=N),
        device)``.
    """
    from ..runtime import Task, run  # local: the runtime imports this module

    _warn_deprecated(
        "average_over_realizations",
        "repro.runtime.run(Task(..., pipeline=..., realizations=N))",
    )
    task = Task(
        factory=factory,
        observables=observables,
        realizations=realizations,
        seed=seed,
    )
    return run(task, device, options=options).results[0]
