"""Exact density-matrix simulator.

For small systems (<= ~7 qubits) this evolves the full density matrix with
the *averaged* noise channels instead of Monte-Carlo trajectories:

* coherent Z/ZZ phases apply as unitaries (same accumulation model as the
  trajectory executor);
* pure dephasing and amplitude damping apply as exact Kraus channels;
* gate depolarizing applies as the exact mixing channel;
* quasi-static detuning and charge parity average to an exact per-moment
  dephasing factor: a Gaussian detuning of width ``sigma`` over an interval
  with sign integral ``F`` multiplies coherences by
  ``exp(-(2 pi sigma T F)^2 / 2)``, and a random-sign parity ``delta``
  multiplies them by ``cos(2 pi delta T F)``.

This gives zero-variance expectation values and serves as ground truth for
the trajectory executor (see ``tests/test_density.py``). Mid-circuit
measurement and feedforward are supported by branching on the measurement
outcome.

Caveat: the slow-noise average is applied per moment (Markovian), while the
trajectory executor draws one detuning per shot for the whole circuit
(temporally correlated). The two agree exactly on single-window circuits
and whenever quasi-static noise is disabled; on deep circuits the density
model slightly *underestimates* the correlated dephasing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.schedule import ScheduledCircuit, schedule
from ..device.calibration import Device
from ..pauli.pauli import Pauli
from .coherent import CoherentAccumulation, accumulate_coherent
from .executor import SimOptions
from .sampling import _dephasing_prob
from .statevector import _sz_arrays
from .timeline import MomentTimeline, build_timeline

_VIRTUAL = {"rz", "z", "s", "sdg", "t", "id"}


class DensityMatrix:
    """A mutable density matrix over ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int):
        if num_qubits > 10:
            raise ValueError("density-matrix simulation limited to 10 qubits")
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        self.matrix = np.zeros((dim, dim), dtype=complex)
        self.matrix[0, 0] = 1.0

    @property
    def dim(self) -> int:
        return self.matrix.shape[0]

    def copy(self) -> "DensityMatrix":
        out = DensityMatrix.__new__(DensityMatrix)
        out.num_qubits = self.num_qubits
        out.matrix = self.matrix.copy()
        return out

    # -- unitaries -----------------------------------------------------------

    def _full_matrix(self, small: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        from ..circuits.circuit import _embed

        return _embed(small, tuple(qubits), self.num_qubits)

    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        u = self._full_matrix(np.asarray(matrix), qubits)
        self.matrix = u @ self.matrix @ u.conj().T

    def apply_phases(self, acc: CoherentAccumulation) -> None:
        if not acc.z and not acc.zz:
            return
        sz = _sz_arrays(self.num_qubits)
        exponent = np.zeros(self.dim)
        for q, theta in acc.z.items():
            exponent += (theta / 2.0) * sz[q]
        for (a, b), theta in acc.zz.items():
            exponent += (theta / 2.0) * sz[a] * sz[b]
        phases = np.exp(-1j * exponent)
        self.matrix = (phases[:, None] * self.matrix) * phases[None, :].conj()

    # -- channels --------------------------------------------------------------

    def apply_kraus(self, operators: Sequence[np.ndarray], qubits: Sequence[int]) -> None:
        total = np.zeros_like(self.matrix)
        for k in operators:
            full = self._full_matrix(np.asarray(k), qubits)
            total += full @ self.matrix @ full.conj().T
        self.matrix = total

    def apply_dephasing(self, qubit: int, probability: float) -> None:
        """Phase-flip channel: ``rho -> (1-p) rho + p Z rho Z``."""
        if probability <= 0.0:
            return
        z = np.diag([1.0, -1.0]).astype(complex)
        self.apply_kraus(
            [math.sqrt(1 - probability) * np.eye(2), math.sqrt(probability) * z],
            [qubit],
        )

    def apply_amplitude_damping(self, qubit: int, gamma: float) -> None:
        if gamma <= 0.0:
            return
        k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
        k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
        self.apply_kraus([k0, k1], [qubit])

    def apply_depolarizing(self, qubits: Sequence[int], probability: float) -> None:
        """With probability ``p`` replace by a uniformly random non-identity
        Pauli on the listed qubits (matches the trajectory executor)."""
        if probability <= 0.0:
            return
        from ..circuits.gates import PAULI_MATRICES

        labels = ["I", "X", "Y", "Z"]
        paulis = []
        k = len(qubits)
        for index in range(1, 4**k):
            ops = []
            rest = index
            for _ in range(k):
                ops.append(labels[rest % 4])
                rest //= 4
            small = np.array([[1.0 + 0j]])
            for ch in ops:
                small = np.kron(small, PAULI_MATRICES[ch])
            paulis.append(small)
        original = self.matrix.copy()
        mixed = np.zeros_like(original)
        for small in paulis:
            full = self._full_matrix(small, qubits)
            mixed += full @ original @ full.conj().T
        count = len(paulis)
        self.matrix = (1 - probability) * original + (probability / count) * mixed

    def apply_coherence_factor(self, qubit: int, factor: float) -> None:
        """Scale the qubit's off-diagonal coherences by ``factor``.

        Equivalent to the averaged effect of a random Z rotation whose
        characteristic function evaluates to ``factor``.
        """
        if factor >= 1.0:
            return
        sz = _sz_arrays(self.num_qubits)[qubit]
        differs = sz[:, None] != sz[None, :]
        self.matrix = np.where(differs, self.matrix * factor, self.matrix)

    # -- measurement ------------------------------------------------------------

    def measure_branches(self, qubit: int) -> List[Tuple[float, "DensityMatrix", int]]:
        """Project onto both outcomes; returns ``(prob, state, outcome)``."""
        sz = _sz_arrays(self.num_qubits)[qubit]
        branches = []
        for outcome in (0, 1):
            mask = (sz == (1.0 if outcome == 0 else -1.0)).astype(float)
            projected = (mask[:, None] * self.matrix) * mask[None, :]
            prob = float(np.trace(projected).real)
            if prob > 1e-12:
                out = self.copy()
                out.matrix = projected / prob
                branches.append((prob, out, outcome))
        return branches

    # -- observables -------------------------------------------------------------

    def expectation_pauli(self, pauli: Pauli) -> float:
        full = pauli.matrix()
        return float(np.trace(full @ self.matrix).real)

    def probability_of_bitstring(self, bits: Dict[int, int]) -> float:
        idx = np.arange(self.dim)
        mask = np.ones(self.dim, dtype=bool)
        for qubit, value in bits.items():
            mask &= ((idx >> qubit) & 1) == value
        return float(np.sum(np.diag(self.matrix).real[mask]))

    @property
    def purity(self) -> float:
        return float(np.trace(self.matrix @ self.matrix).real)

    @property
    def trace(self) -> float:
        return float(np.trace(self.matrix).real)


@dataclass
class _Branch:
    weight: float
    state: DensityMatrix
    clbits: Tuple[int, ...]


class DensityExecutor:
    """Evolve a scheduled circuit exactly under the averaged noise model."""

    def __init__(
        self,
        scheduled: ScheduledCircuit,
        device: Device,
        options: Optional[SimOptions] = None,
    ):
        if scheduled.num_qubits != device.num_qubits:
            raise ValueError("circuit/device size mismatch")
        self.scheduled = scheduled
        self.device = device
        self.options = options or SimOptions()
        self._timelines = [
            build_timeline(sm.moment, scheduled.num_qubits, sm.duration)
            for sm in scheduled
        ]

    def run(self) -> List[_Branch]:
        opts = self.options
        n = self.scheduled.num_qubits
        branches = [
            _Branch(
                1.0,
                DensityMatrix(n),
                (0,) * self.scheduled.circuit.num_clbits,
            )
        ]

        for sm, timeline in zip(self.scheduled, self._timelines):
            moment = sm.moment
            # 1. measurements: branch on outcomes.
            for inst in moment:
                if not inst.gate.is_measurement:
                    continue
                new_branches = []
                for branch in branches:
                    for prob, state, outcome in branch.state.measure_branches(
                        inst.qubits[0]
                    ):
                        clbits = list(branch.clbits)
                        clbits[inst.clbits[0]] = outcome
                        new_branches.append(
                            _Branch(branch.weight * prob, state, tuple(clbits))
                        )
                branches = new_branches

            for branch in branches:
                state = branch.state
                # 2. coherent phases + averaged slow-noise decoherence.
                if opts.coherent:
                    acc = accumulate_coherent(
                        timeline,
                        self.device,
                        detunings=None,
                        stark_from_1q=opts.stark_from_1q,
                    )
                    state.apply_phases(acc)
                if opts.coherent and opts.stochastic and sm.duration > 0.0:
                    self._apply_slow_noise(state, timeline, sm.duration)
                # 3. dephasing / damping.
                if sm.duration > 0.0:
                    for q in range(n):
                        params = self.device.qubit(q)
                        if opts.dephasing:
                            p_z = _dephasing_prob(params.t2, params.t1, sm.duration)
                            state.apply_dephasing(q, p_z)
                        if opts.amplitude_damping and math.isfinite(params.t1):
                            gamma = 1.0 - math.exp(-sm.duration / params.t1)
                            state.apply_amplitude_damping(q, gamma)
                # 4. unitaries.
                for inst in moment:
                    gate = inst.gate
                    if gate.is_measurement or gate.is_delay:
                        continue
                    if inst.condition is not None:
                        clbit, value = inst.condition
                        if branch.clbits[clbit] != value:
                            continue
                    if gate.matrix is not None:
                        state.apply_unitary(gate.matrix, inst.qubits)
                # 5. gate errors.
                if opts.gate_errors:
                    self._apply_gate_errors(state, moment)
        return branches

    def _apply_slow_noise(self, state, timeline: MomentTimeline, duration: float) -> None:
        """Average the quasi-static detuning and parity over their priors."""
        for q in range(self.device.num_qubits):
            f = timeline.sign_integral(q)
            if f == 0.0:
                continue
            params = self.device.qubit(q)
            factor = 1.0
            if params.quasistatic_sigma > 0.0:
                phase_sigma = 2 * math.pi * params.quasistatic_sigma * duration * abs(f)
                factor *= math.exp(-0.5 * phase_sigma**2)
            if params.parity_delta > 0.0:
                # E[exp(+-i phi)] = cos(phi); a negative factor is a genuine
                # averaged coherence sign flip, not a bug.
                factor *= math.cos(2 * math.pi * params.parity_delta * duration * f)
            state.apply_coherence_factor(q, factor)

    def _apply_gate_errors(self, state, moment) -> None:
        for inst in moment:
            gate = inst.gate
            if gate.is_measurement or gate.is_delay:
                continue
            if gate.num_qubits == 2:
                p2 = self.device.pair_error(*inst.qubits) * gate.error_scale
                state.apply_depolarizing(inst.qubits, p2)
            elif gate.name == "dd":
                p1 = self.device.qubit(inst.qubits[0]).p1
                for _ in gate.dd_fractions:
                    state.apply_depolarizing(inst.qubits, p1)
            elif gate.name not in _VIRTUAL:
                p1 = self.device.qubit(inst.qubits[0]).p1
                state.apply_depolarizing(inst.qubits, p1)

    # -- aggregated observables -------------------------------------------------

    def expectations(self, observables: Dict[str, Pauli]) -> Dict[str, float]:
        branches = self.run()
        out = {}
        for key, pauli in observables.items():
            out[key] = sum(
                b.weight * b.state.expectation_pauli(pauli) for b in branches
            )
        return out

    def probabilities(self, targets: Dict[str, Dict[int, int]]) -> Dict[str, float]:
        branches = self.run()
        out = {}
        for key, bits in targets.items():
            out[key] = sum(
                b.weight * b.state.probability_of_bitstring(bits) for b in branches
            )
        return out


CircuitLike = Union[Circuit, ScheduledCircuit]


def density_expectations(
    circuit: CircuitLike,
    device: Device,
    observables: Dict[str, Union[str, Pauli]],
    options: Optional[SimOptions] = None,
) -> Dict[str, float]:
    """Exact expectation values under the averaged noise model."""
    scheduled = (
        circuit
        if isinstance(circuit, ScheduledCircuit)
        else schedule(circuit, device.durations)
    )
    paulis = {
        k: (Pauli.from_label(v) if isinstance(v, str) else v)
        for k, v in observables.items()
    }
    return DensityExecutor(scheduled, device, options).expectations(paulis)


def density_probabilities(
    circuit: CircuitLike,
    device: Device,
    targets: Dict[str, Dict[int, int]],
    options: Optional[SimOptions] = None,
) -> Dict[str, float]:
    """Exact bitstring probabilities under the averaged noise model."""
    scheduled = (
        circuit
        if isinstance(circuit, ScheduledCircuit)
        else schedule(circuit, device.durations)
    )
    return DensityExecutor(scheduled, device, options).probabilities(targets)
