"""Noise simulator: sign-trajectory coherent model + Monte-Carlo trajectories."""

from .coherent import CoherentAccumulation, accumulate_coherent
from .density import (
    DensityExecutor,
    DensityMatrix,
    density_expectations,
    density_probabilities,
)
from .executor import (
    Executor,
    SimOptions,
    SimResult,
    average_over_realizations,
    bit_probabilities,
    expectation_values,
)
from .readout import (
    ConfusionMatrices,
    assignment_probabilities,
    corrected_expectation,
    estimate_confusion,
    expectation_from_counts,
    invert_confusion,
    sample_counts,
)
from .sampling import NoisePlan, ShotNoise, build_noise_plan, sample_shot
from .statevector import StateVector, vector_norm
from .timeline import MomentTimeline, build_timeline, pair_sign_integral, sign_integral
from .vectorized import VectorizedExecutor

__all__ = [
    "DensityExecutor",
    "DensityMatrix",
    "density_expectations",
    "density_probabilities",
    "ConfusionMatrices",
    "assignment_probabilities",
    "corrected_expectation",
    "estimate_confusion",
    "expectation_from_counts",
    "invert_confusion",
    "sample_counts",
    "CoherentAccumulation",
    "accumulate_coherent",
    "Executor",
    "SimOptions",
    "SimResult",
    "average_over_realizations",
    "bit_probabilities",
    "expectation_values",
    "StateVector",
    "vector_norm",
    "NoisePlan",
    "ShotNoise",
    "build_noise_plan",
    "sample_shot",
    "VectorizedExecutor",
    "MomentTimeline",
    "build_timeline",
    "pair_sign_integral",
    "sign_integral",
]
