"""Coherent Z/ZZ phase accumulation per moment (paper eq. 1-3).

Between every crosstalk pair the always-on interaction

    ``H11 = nu/2 (-Z(x)I - I(x)Z + Z(x)Z)``

acts whenever the pair is not engaged in a common (calibrated) two-qubit
gate, producing the error ``U11 = Rzz(theta) [Rz(-theta) (x) Rz(-theta)]``
with ``theta = 2 pi nu tau`` (eq. 2). Gate drives add AC Stark Z shifts on
neighbors, and per-shot detunings (quasi-static + charge parity) add further
Z phase. Every term is modulated by the qubits' sign trajectories, so echo
pulses and DD sequences refocus exactly the right contributions.

The same function serves the simulator (full noise) and CA-EC (static part
only, by passing zero detunings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence


from ..device.calibration import Device
from ..utils.units import TWO_PI
from .timeline import Edge, MomentTimeline, _key


@dataclass
class CoherentAccumulation:
    """Rotation angles accumulated in one moment.

    ``z[q]`` is the ``Rz`` angle on qubit ``q``; ``zz[(a, b)]`` the ``Rzz``
    angle on the sorted pair. Both use the ``exp(-i theta Z/2)`` convention
    of the gate library, so applying ``Rz(-theta)`` cancels ``z = theta``.
    """

    z: Dict[int, float] = field(default_factory=dict)
    zz: Dict[Edge, float] = field(default_factory=dict)

    def add_z(self, qubit: int, angle: float) -> None:
        if angle != 0.0:
            self.z[qubit] = self.z.get(qubit, 0.0) + angle

    def add_zz(self, a: int, b: int, angle: float) -> None:
        if angle != 0.0:
            key = _key(a, b)
            self.zz[key] = self.zz.get(key, 0.0) + angle

    def is_negligible(self, atol: float = 1e-12) -> bool:
        return all(abs(v) < atol for v in self.z.values()) and all(
            abs(v) < atol for v in self.zz.values()
        )


def accumulate_coherent(
    timeline: MomentTimeline,
    device: Device,
    detunings: Optional[Sequence[float]] = None,
    include_zz: bool = True,
    include_stark: bool = True,
    stark_from_1q: bool = False,
) -> CoherentAccumulation:
    """Coherent error angles of one moment.

    Args:
        timeline: the moment's timing context.
        device: calibration (ZZ rates, Stark shifts).
        detunings: optional per-qubit additional Z rates in GHz (per-shot
            noise); ``None`` means zero (the compiler's view).
        include_zz / include_stark: toggles for ablations.
        stark_from_1q: also count physical 1q drives as Stark sources.
    """
    acc = CoherentAccumulation()
    duration = timeline.duration
    if duration <= 0.0:
        return acc

    if include_zz:
        for a, b in device.crosstalk_edges():
            if _key(a, b) in timeline.gate_pairs:
                continue  # calibrated into the gate itself
            nu = device.zz_rate(a, b)
            if nu == 0.0:
                continue
            theta = TWO_PI * nu * duration
            f_ab = timeline.pair_sign_integral(a, b)
            f_a = timeline.sign_integral(a)
            f_b = timeline.sign_integral(b)
            acc.add_zz(a, b, theta * f_ab)
            acc.add_z(a, -theta * f_a)
            acc.add_z(b, -theta * f_b)

    if include_stark:
        sources = set(timeline.driven)
        if stark_from_1q:
            sources |= timeline.driven_1q
        for p in sources:
            for q in device.topology.neighbors(p):
                if _key(p, q) in timeline.gate_pairs:
                    continue
                rate = device.stark_shift(p, q)
                if rate == 0.0:
                    continue
                acc.add_z(q, TWO_PI * rate * duration * timeline.sign_integral(q))
        # Readout drives Stark-shift the measured qubit's neighbors for the
        # whole measurement window (dominant in dynamic circuits, Fig. 9).
        for m in timeline.measured:
            rate = device.qubit(m).measure_stark
            if rate == 0.0:
                continue
            for q in device.topology.neighbors(m):
                acc.add_z(q, TWO_PI * rate * duration * timeline.sign_integral(q))

    if detunings is not None:
        for q, rate in enumerate(detunings):
            if rate == 0.0:
                continue
            acc.add_z(q, TWO_PI * rate * duration * timeline.sign_integral(q))

    return acc
