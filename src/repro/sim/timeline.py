"""Sign-trajectory timing model for coherent Z/ZZ error accumulation.

Every X-like pulse applied to a qubit during a moment — a dynamical-
decoupling pulse, the ECR control's echo pulse at ``tau_g/2``, or the ECR
target's rotary echoes at ``tau_g/4`` and ``3 tau_g/4`` — flips the sign with
which that qubit accumulates Z-type phase. The coherent error of a moment is
then exactly

    ``theta_Z(q)    ~ nu * T * sign_integral(q)``
    ``theta_ZZ(p,q) ~ nu * T * pair_sign_integral(p, q)``

which is the Walsh sign-balance picture of the paper's Fig. 5: aligned DD
leaves pair products constant (ZZ survives), staggered/Walsh sequences zero
them out, and gate echoes refocus spectator ZZ for free.

This module is shared by the noise simulator *and* by CA-EC: the compiler
predicts the known (static) part of the accumulated error with the same
integrals the simulator uses, which is what makes compensation exact for the
static component — mirroring the paper, where characterized backend data
feeds the compensation angles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from ..circuits.circuit import Moment

Edge = Tuple[int, int]


def _key(a: int, b: int) -> Edge:
    return (a, b) if a < b else (b, a)


def sign_integral(flips: Tuple[float, ...]) -> float:
    """``(1/T) * int_0^T s(t) dt`` for a trajectory starting at +1.

    ``flips`` are the (sorted) fractions of the moment at which the sign
    flips. Returns a value in ``[-1, 1]``; ``1.0`` means no refocusing.
    """
    total = 0.0
    sign = 1.0
    prev = 0.0
    for f in flips:
        total += sign * (f - prev)
        sign = -sign
        prev = f
    total += sign * (1.0 - prev)
    return total


def pair_sign_integral(
    flips_a: Tuple[float, ...], flips_b: Tuple[float, ...]
) -> float:
    """``(1/T) * int_0^T s_a(t) s_b(t) dt`` for two trajectories."""
    merged = sorted(set(flips_a) | set(flips_b))
    total = 0.0
    sign_a = 1.0
    sign_b = 1.0
    prev = 0.0
    set_a = set(flips_a)
    set_b = set(flips_b)
    for f in merged:
        total += sign_a * sign_b * (f - prev)
        if f in set_a:
            sign_a = -sign_a
        if f in set_b:
            sign_b = -sign_b
        prev = f
    total += sign_a * sign_b * (1.0 - prev)
    return total


@dataclass
class MomentTimeline:
    """Timing context of one moment, independent of the quantum state.

    Attributes:
        duration: moment duration in ns.
        flips: per-qubit sign-flip fractions (empty tuple = no flips).
        gate_pairs: qubit pairs engaged together in one 2q gate; their mutual
            ZZ is part of the calibrated gate and is not accumulated.
        driven: qubits actively driven by a 2q gate (sources of Stark shift
            on their neighbors).
        driven_1q: qubits driven by a physical 1q gate (weaker Stark source,
            off by default in the noise model).
        measured: qubits measured in this moment.
    """

    duration: float
    flips: Dict[int, Tuple[float, ...]]
    gate_pairs: Set[Edge] = field(default_factory=set)
    driven: Set[int] = field(default_factory=set)
    driven_1q: Set[int] = field(default_factory=set)
    measured: Set[int] = field(default_factory=set)

    def flips_of(self, qubit: int) -> Tuple[float, ...]:
        return self.flips.get(qubit, ())

    def sign_integral(self, qubit: int) -> float:
        return sign_integral(self.flips_of(qubit))

    def pair_sign_integral(self, a: int, b: int) -> float:
        return pair_sign_integral(self.flips_of(a), self.flips_of(b))


_VIRTUAL = {"rz", "z", "s", "sdg", "t", "id"}


def build_timeline(moment: Moment, num_qubits: int, duration: float) -> MomentTimeline:
    """Extract the :class:`MomentTimeline` of a moment.

    Flip fractions come from each gate's ``flip_fractions`` (per listed
    qubit): DD sequences contribute their pulse fractions, ECR contributes
    its echo and rotary pulses. Zero-duration moments carry no error, but a
    timeline is still returned for uniformity.
    """
    flips: Dict[int, Tuple[float, ...]] = {}
    gate_pairs: Set[Edge] = set()
    driven: Set[int] = set()
    driven_1q: Set[int] = set()
    measured: Set[int] = set()
    for inst in moment:
        gate = inst.gate
        if gate.is_measurement:
            measured.add(inst.qubits[0])
            continue
        if gate.num_qubits == 2:
            gate_pairs.add(_key(*inst.qubits))
            driven.update(inst.qubits)
        elif gate.num_qubits == 1 and not gate.is_delay and gate.name not in _VIRTUAL:
            driven_1q.add(inst.qubits[0])
        if gate.flip_fractions:
            for qubit, fractions in zip(inst.qubits, gate.flip_fractions):
                if fractions:
                    flips[qubit] = tuple(sorted(fractions))
    return MomentTimeline(
        duration=duration,
        flips=flips,
        gate_pairs=gate_pairs,
        driven=driven,
        driven_1q=driven_1q,
        measured=measured,
    )
