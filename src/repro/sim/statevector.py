"""Dense statevector engine.

Qubit 0 is the least-significant bit of the basis-state index. Gate matrices
follow the library convention (first listed qubit = left Kronecker factor).
Diagonal Z/ZZ phase application — the dominant operation in the coherent
noise model — is vectorized over the full state.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..pauli.pauli import Pauli
from .coherent import CoherentAccumulation


@lru_cache(maxsize=32)
def _sz_arrays(num_qubits: int) -> Tuple[np.ndarray, ...]:
    """Per-qubit arrays of ``(+1 | -1)`` eigenvalues of Z over basis states."""
    dim = 1 << num_qubits
    idx = np.arange(dim)
    return tuple(1.0 - 2.0 * ((idx >> q) & 1) for q in range(num_qubits))


def vector_norm(vector: np.ndarray) -> float:
    """Euclidean norm via a pairwise ``|amp|^2`` sum.

    Not ``np.linalg.norm``: the BLAS dot it calls is not bit-identical to
    numpy's pairwise reduction, while this formulation produces the same
    bits whether applied to one state vector or row-wise to a C-contiguous
    ``(shots, dim)`` batch — the property the vectorized engine's
    bit-for-bit guarantee rests on.
    """
    return float(np.sqrt(np.sum(np.abs(vector) ** 2)))


class StateVector:
    """A mutable pure state of ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int):
        self.num_qubits = int(num_qubits)
        self.vector = np.zeros(1 << self.num_qubits, dtype=complex)
        self.vector[0] = 1.0

    def copy(self) -> "StateVector":
        out = StateVector.__new__(StateVector)
        out.num_qubits = self.num_qubits
        out.vector = self.vector.copy()
        return out

    # -- gates ----------------------------------------------------------------

    def apply_gate(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a k-qubit unitary to the listed qubits."""
        k = len(qubits)
        n = self.num_qubits
        axes = [n - 1 - q for q in qubits]
        psi = self.vector.reshape([2] * n)
        psi = np.moveaxis(psi, axes, range(k))
        tail = psi.shape[k:]
        psi = psi.reshape(1 << k, -1)
        psi = np.asarray(matrix) @ psi
        psi = psi.reshape([2] * k + list(tail))
        psi = np.moveaxis(psi, range(k), axes)
        self.vector = np.ascontiguousarray(psi).reshape(-1)

    def apply_phases(self, acc: CoherentAccumulation) -> None:
        """Apply accumulated ``Rz``/``Rzz`` angles as one diagonal pass."""
        if not acc.z and not acc.zz:
            return
        sz = _sz_arrays(self.num_qubits)
        exponent = np.zeros(1 << self.num_qubits)
        for q, theta in acc.z.items():
            exponent += (theta / 2.0) * sz[q]
        for (a, b), theta in acc.zz.items():
            exponent += (theta / 2.0) * sz[a] * sz[b]
        self.vector *= np.exp(-1j * exponent)

    def apply_pauli(self, label: str, qubit: int) -> None:
        """Apply a single-qubit Pauli in place (fast path for noise)."""
        if label == "I":
            return
        n = self.num_qubits
        psi = self.vector.reshape([2] * n)
        axis = n - 1 - qubit
        if label == "X":
            psi = np.flip(psi, axis=axis)
        elif label == "Y":
            psi = np.flip(psi, axis=axis)
            slicer = [slice(None)] * n
            slicer[axis] = 0
            psi = psi.copy()
            psi[tuple(slicer)] *= -1j
            slicer[axis] = 1
            psi[tuple(slicer)] *= 1j
        elif label == "Z":
            psi = psi.copy()
            slicer = [slice(None)] * n
            slicer[axis] = 1
            psi[tuple(slicer)] *= -1
        else:
            raise ValueError(f"bad Pauli label {label!r}")
        self.vector = np.ascontiguousarray(psi).reshape(-1)

    # -- measurement -----------------------------------------------------------

    def probability_one(self, qubit: int) -> float:
        """Probability of measuring ``1`` on ``qubit``."""
        mask = ((np.arange(self.vector.size) >> qubit) & 1).astype(bool)
        return float(np.sum(np.abs(self.vector[mask]) ** 2))

    def measure(
        self,
        qubit: int,
        rng: Optional[np.random.Generator] = None,
        *,
        u: Optional[float] = None,
    ) -> int:
        """Projective measurement; collapses and renormalizes the state.

        The collapse draw comes from ``rng``, or from a pre-sampled uniform
        ``u`` (the batched engines sample all draws up front).
        """
        p1 = self.probability_one(qubit)
        if u is None:
            u = rng.random()
        outcome = 1 if u < p1 else 0
        mask = ((np.arange(self.vector.size) >> qubit) & 1) == outcome
        self.vector = np.where(mask, self.vector, 0.0)
        norm = vector_norm(self.vector)
        if norm < 1e-15:
            raise RuntimeError("measurement collapsed to zero norm")
        self.vector /= norm
        return outcome

    # -- observables -----------------------------------------------------------

    def expectation_pauli(self, pauli: Pauli) -> float:
        """``<psi|P|psi>`` for a Pauli observable (real by construction)."""
        if pauli.num_qubits != self.num_qubits:
            raise ValueError("observable size mismatch")
        work = self.copy()
        for qubit in range(self.num_qubits):
            work.apply_pauli(pauli.factor(qubit), qubit)
        value = np.vdot(self.vector, work.vector) * (1j**pauli.phase)
        return float(value.real)

    def probability_of_bitstring(self, bits: Dict[int, int]) -> float:
        """Probability that the listed qubits read the given values."""
        idx = np.arange(self.vector.size)
        mask = np.ones(self.vector.size, dtype=bool)
        for qubit, value in bits.items():
            mask &= ((idx >> qubit) & 1) == value
        return float(np.sum(np.abs(self.vector[mask]) ** 2))

    def fidelity_with(self, other: "StateVector") -> float:
        return float(abs(np.vdot(self.vector, other.vector)) ** 2)
