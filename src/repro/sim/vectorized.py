"""Vectorized batched-trajectory engine.

Stacks all shots of a run along the leading axis of one ``(shots, 2**n)``
complex array and applies every evolution step as a whole-batch NumPy
operation: diagonal coherent phases as one broadcast multiply, moment
unitaries as one stacked ``matmul`` over the shot axis, sampled jump masks
as row-subset updates, and expectation contractions per shot at the end.
The per-shot Python loop of :class:`~repro.sim.executor.Executor` survives
only in the (cheap, state-free) noise-sampling pass.

Bit-for-bit reproducibility with the scalar ``trajectory`` backend is a
design invariant, not an accident:

* all draws come from :mod:`repro.sim.sampling`, consumed from the same
  generator in the same order as the scalar per-shot loop;
* every floating-point reduction uses a form whose row-wise application to
  a C-contiguous batch is bit-identical to the scalar call (pairwise
  ``np.sum`` along the last axis, broadcast ``np.matmul`` over stacked
  slices, per-shot ``np.vdot`` for the final contraction);
* per-shot coherent phase angles accumulate in the scalar executor's exact
  dict order, so the same additions happen in the same sequence.

The shot axis is sharded into bounded-memory chunks; chunks are independent
row blocks, so any ``chunk_shots`` / ``workers`` configuration produces the
same bits and only changes wall time and peak memory.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.schedule import ScheduledCircuit
from ..device.calibration import Device
from ..pauli.pauli import Pauli
from ..utils.rng import SeedLike, as_generator
from .executor import Executor, SimOptions, SimResult, _aggregate
from .sampling import _PAULI_1Q, _PAULI_2Q, NoisePlan, ShotNoise, sample_shot
from .statevector import _sz_arrays

#: Default chunk budget: ~32 MiB of complex amplitudes per chunk.
_CHUNK_AMPLITUDES = 1 << 21


def _batch_norms(psi: np.ndarray) -> np.ndarray:
    """Row-wise :func:`repro.sim.statevector.vector_norm` (bit-identical)."""
    return np.sqrt(np.sum(np.abs(psi) ** 2, axis=1))


class _BatchNoise:
    """One chunk's :class:`ShotNoise` records, stacked into arrays."""

    def __init__(self, plan: NoisePlan, shots: Sequence[ShotNoise]):
        self.size = len(shots)
        self.detunings = (
            np.array([s.detunings for s in shots])
            if plan.detunings is not None
            else None
        )
        self.measure_u = [
            np.array([s.measure_u[m] for s in shots]).reshape(self.size, -1)
            for m in range(len(plan.moments))
        ]
        self.idle_flips = [
            np.array([s.idle_flips[m] for s in shots], dtype=bool).reshape(
                self.size, -1
            )
            for m in range(len(plan.moments))
        ]
        self.idle_u = [
            np.array([s.idle_u[m] for s in shots]).reshape(self.size, -1)
            for m in range(len(plan.moments))
        ]
        # -1 encodes "no error" so each site becomes one int array.
        self.gate_paulis = [
            [
                np.array(
                    [
                        [-1 if c is None else c for c in s.gate_paulis[m][j]]
                        for s in shots
                    ],
                    dtype=np.int64,
                ).reshape(self.size, -1)
                for j in range(len(plan.moments[m].gate_errors))
            ]
            for m in range(len(plan.moments))
        ]


class VectorizedExecutor(Executor):
    """Batched many-shot evolution of one scheduled circuit.

    A drop-in peer of :class:`~repro.sim.executor.Executor` with the same
    constructor and result types; ``expectations`` / ``probabilities``
    additionally accept ``workers`` to shard the shot axis across threads.
    ``chunk_shots`` bounds how many states are ever resident at once
    (``None`` auto-sizes to ~32 MiB of amplitudes per chunk).
    """

    def __init__(
        self,
        scheduled: ScheduledCircuit,
        device: Device,
        options: Optional[SimOptions] = None,
        chunk_shots: Optional[int] = None,
    ):
        super().__init__(scheduled, device, options)
        if chunk_shots is not None and chunk_shots < 1:
            raise ValueError("chunk_shots must be >= 1 (or None for auto)")
        self.chunk_shots = chunk_shots
        n = scheduled.num_qubits
        dim = 1 << n
        self._dim = dim
        idx = np.arange(dim)
        self._one_bit = [(idx >> q) & 1 for q in range(n)]
        self._one_mask = [b == 1 for b in self._one_bit]
        self._one_idx = [np.nonzero(m)[0] for m in self._one_mask]
        self._phase_programs = [
            self._build_phase_program(m) for m in range(len(self._timelines))
        ]
        self._unitaries = [
            [
                (inst.condition, np.asarray(inst.gate.matrix), inst.qubits)
                for inst in sm.moment
                if not (inst.gate.is_measurement or inst.gate.is_delay)
                and inst.gate.matrix is not None
            ]
            for sm in scheduled
        ]

    # -- per-moment coherent-phase programs -----------------------------------

    def _build_phase_program(self, m: int):
        """Precompute moment ``m``'s diagonal-phase application.

        Returns ``None`` (no phases), ``("static", phase)`` with the full
        ``exp(-i H)`` diagonal when no per-shot term exists, or
        ``("dynamic", ops)`` where ``ops`` replays the scalar executor's
        accumulation order: each entry adds either a fixed ``(dim,)`` term
        or a per-shot detuning term for one qubit.
        """
        if not self.options.coherent:
            return None
        acc = self._static_acc[m]
        sm = self.scheduled[m]
        timeline = self._timelines[m]
        sz = _sz_arrays(self.scheduled.num_qubits)
        # Qubits whose sampled detuning accumulates phase this moment: a
        # noise source exists and the sign trajectory doesn't refocus it.
        det_sites = []
        if self._plan.detunings is not None and sm.duration > 0.0:
            det_sites = [
                q
                for q in range(self.scheduled.num_qubits)
                if (
                    self._plan.detunings[q][0] > 0.0
                    or self._plan.detunings[q][1] > 0.0
                )
                and timeline.sign_integral(q) != 0.0
            ]
        if not det_sites:
            # No per-shot term survives (noise off, zero duration, or every
            # detuning refocused — e.g. fully-decoupled DD moments): one
            # cached diagonal serves every shot, bit-identically.
            if not acc.z and not acc.zz:
                return None
            exponent = np.zeros(self._dim)
            for q, theta in acc.z.items():
                exponent += (theta / 2.0) * sz[q]
            for (a, b), theta in acc.zz.items():
                exponent += (theta / 2.0) * sz[a] * sz[b]
            return ("static", np.exp(-1j * exponent))
        det_set = set(det_sites)
        ops: List[Tuple] = []
        for q, theta in acc.z.items():
            if q in det_set:
                ops.append(("det", q, theta, timeline.sign_integral(q)))
            else:
                ops.append(("fix", (theta / 2.0) * sz[q]))
        for q in det_sites:
            if q not in acc.z:
                ops.append(("det", q, 0.0, timeline.sign_integral(q)))
        for (a, b), theta in acc.zz.items():
            ops.append(("fix", (theta / 2.0) * sz[a] * sz[b]))
        if not ops:
            return None
        return ("dynamic", sm.duration, ops)

    # -- whole-batch state updates --------------------------------------------

    def _apply_gate_rows(
        self, sub: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
    ) -> np.ndarray:
        rows = sub.shape[0]
        n = self.scheduled.num_qubits
        k = len(qubits)
        axes = [1 + (n - 1 - q) for q in qubits]
        psi = sub.reshape((rows,) + (2,) * n)
        psi = np.moveaxis(psi, axes, range(1, k + 1))
        tail = psi.shape[k + 1 :]
        psi = psi.reshape(rows, 1 << k, -1)
        psi = np.matmul(matrix, psi)
        psi = psi.reshape((rows,) + (2,) * k + tuple(tail))
        psi = np.moveaxis(psi, range(1, k + 1), axes)
        return np.ascontiguousarray(psi).reshape(rows, -1)

    def _apply_pauli_rows(self, sub: np.ndarray, label: str, qubit: int) -> np.ndarray:
        if label == "I":
            return sub
        rows = sub.shape[0]
        n = self.scheduled.num_qubits
        psi = sub.reshape((rows,) + (2,) * n)
        axis = 1 + (n - 1 - qubit)
        if label == "X":
            psi = np.flip(psi, axis=axis)
        elif label == "Y":
            psi = np.flip(psi, axis=axis).copy()
            slicer: List = [slice(None)] * (n + 1)
            slicer[axis] = 0
            psi[tuple(slicer)] *= -1j
            slicer[axis] = 1
            psi[tuple(slicer)] *= 1j
        elif label == "Z":
            psi = psi.copy()
            slicer = [slice(None)] * (n + 1)
            slicer[axis] = 1
            psi[tuple(slicer)] *= -1
        else:
            raise ValueError(f"bad Pauli label {label!r}")
        return np.ascontiguousarray(psi).reshape(rows, -1)

    def _prob_one_rows(self, psi: np.ndarray, qubit: int) -> np.ndarray:
        sel = np.ascontiguousarray(psi[:, self._one_mask[qubit]])
        return np.sum(np.abs(sel) ** 2, axis=1)

    def _decay_jump_rows(self, sub: np.ndarray, qubit: int) -> np.ndarray:
        """Row-wise twin of ``executor._apply_decay_jump``."""
        one = self._one_mask[qubit]
        amp = np.where(one[None, :], sub, 0.0)
        norms = _batch_norms(amp)
        ok = norms > 0.0
        out = np.array(sub)
        if ok.any():
            src = np.ascontiguousarray(amp[ok][:, one])
            lowered = np.zeros((int(ok.sum()), self._dim), dtype=complex)
            lowered[:, self._one_idx[qubit] ^ (1 << qubit)] = src
            out[ok] = lowered / norms[ok][:, None]
        bad = ~ok
        if bad.any():
            unjumped = np.array(sub[bad])
            totals = _batch_norms(unjumped)
            pos = totals > 0.0
            if pos.any():
                unjumped[pos] = unjumped[pos] / totals[pos][:, None]
            out[bad] = unjumped
        return out

    def _no_jump_rows(self, sub: np.ndarray, qubit: int, gamma: float) -> np.ndarray:
        """Row-wise twin of ``executor._apply_no_jump``."""
        one = self._one_mask[qubit]
        scaled = np.where(one[None, :], sub * math.sqrt(1.0 - gamma), sub)
        norms = _batch_norms(scaled)
        ok = norms > 0.0
        out = np.empty_like(sub)
        if ok.any():
            out[ok] = scaled[ok] / norms[ok][:, None]
        bad = ~ok
        if bad.any():
            out[bad] = self._decay_jump_rows(sub[bad], qubit)
        return out

    # -- chunk evolution -------------------------------------------------------

    def _evolve_chunk(self, batch: _BatchNoise) -> Tuple[np.ndarray, np.ndarray]:
        """Evolve one chunk; returns final states and classical bits."""
        size = batch.size
        psi = np.zeros((size, self._dim), dtype=complex)
        psi[:, 0] = 1.0
        clbits = np.zeros(
            (size, self.scheduled.circuit.num_clbits), dtype=np.int64
        )
        for m, plan in enumerate(self._plan.moments):
            # 1. measurements
            for j, (qubit, clbit) in enumerate(plan.measured):
                p1 = self._prob_one_rows(psi, qubit)
                outcome = (batch.measure_u[m][:, j] < p1).astype(np.int64)
                keep = self._one_bit[qubit][None, :] == outcome[:, None]
                psi = np.where(keep, psi, 0.0)
                norms = _batch_norms(psi)
                if np.any(norms < 1e-15):
                    raise RuntimeError("measurement collapsed to zero norm")
                psi /= norms[:, None]
                clbits[:, clbit] = outcome

            # 2. coherent phases
            program = self._phase_programs[m]
            if program is not None:
                if program[0] == "static":
                    psi *= program[1][None, :]
                else:
                    _tag, duration, ops = program
                    exponent = np.zeros((size, self._dim))
                    for op in ops:
                        if op[0] == "fix":
                            exponent += op[1][None, :]
                        else:
                            _kind, q, theta0, sign = op
                            angle = (
                                2.0 * math.pi * batch.detunings[:, q]
                                * duration * sign
                            )
                            theta = theta0 + angle
                            exponent += (theta / 2.0)[:, None] * (
                                _sz_arrays(self.scheduled.num_qubits)[q][None, :]
                            )
                    psi *= np.exp(-1j * exponent)

            # 3. stochastic dephasing / damping (per-qubit interleave)
            flip_at = damp_at = 0
            for q, p_z, gamma in plan.idles:
                if p_z > 0.0:
                    flipped = batch.idle_flips[m][:, flip_at]
                    flip_at += 1
                    if flipped.any():
                        psi[flipped] = self._apply_pauli_rows(psi[flipped], "Z", q)
                if gamma > 0.0:
                    u = batch.idle_u[m][:, damp_at]
                    damp_at += 1
                    jump = u < gamma * self._prob_one_rows(psi, q)
                    # Uniform batches (the common case: jump probabilities
                    # are small) skip the row-subset copy entirely.
                    if not jump.any():
                        psi = self._no_jump_rows(psi, q, gamma)
                    elif jump.all():
                        psi = self._decay_jump_rows(psi, q)
                    else:
                        psi[jump] = self._decay_jump_rows(psi[jump], q)
                        stay = ~jump
                        psi[stay] = self._no_jump_rows(psi[stay], q, gamma)

            # 4. ideal unitaries
            for condition, matrix, qubits in self._unitaries[m]:
                if condition is None:
                    psi = self._apply_gate_rows(psi, matrix, qubits)
                else:
                    clbit, value = condition
                    rows = clbits[:, clbit] == value
                    if rows.any():
                        psi[rows] = self._apply_gate_rows(psi[rows], matrix, qubits)

            # 5. gate errors
            for j, site in enumerate(plan.gate_errors):
                codes = batch.gate_paulis[m][j]
                for r in range(site.repeats):
                    column = codes[:, r]
                    for code in np.unique(column):
                        if code < 0:
                            continue
                        rows = column == code
                        if site.two_qubit:
                            pa, pb = _PAULI_2Q[code]
                            sub = self._apply_pauli_rows(psi[rows], pa, site.qubits[0])
                            psi[rows] = self._apply_pauli_rows(sub, pb, site.qubits[1])
                        else:
                            psi[rows] = self._apply_pauli_rows(
                                psi[rows], _PAULI_1Q[code], site.qubits[0]
                            )
        return psi, clbits

    # -- per-shot payload contraction ------------------------------------------

    def _expectation_rows(self, psi: np.ndarray, pauli: Pauli) -> np.ndarray:
        work = psi
        for qubit in range(self.scheduled.num_qubits):
            work = self._apply_pauli_rows(work, pauli.factor(qubit), qubit)
        phase = 1j ** pauli.phase
        values = np.empty(psi.shape[0])
        for b in range(psi.shape[0]):
            values[b] = (np.vdot(psi[b], work[b]) * phase).real
        return values

    def _bitstring_prob_rows(
        self, psi: np.ndarray, bits: Dict[int, int]
    ) -> np.ndarray:
        mask = np.ones(self._dim, dtype=bool)
        for qubit, value in bits.items():
            mask &= self._one_bit[qubit] == value
        sel = np.ascontiguousarray(psi[:, mask])
        return np.sum(np.abs(sel) ** 2, axis=1)

    def _noisy_bit_prob_rows(
        self, psi: np.ndarray, bits: Dict[int, int]
    ) -> np.ndarray:
        qubits = sorted(bits)
        total = np.zeros(psi.shape[0])
        for outcome in range(1 << len(qubits)):
            actual = {q: (outcome >> i) & 1 for i, q in enumerate(qubits)}
            p = self._bitstring_prob_rows(psi, actual)
            weight = 1.0
            for q in qubits:
                r = self.device.qubit(q).readout_error
                weight *= (1.0 - r) if actual[q] == bits[q] else r
            total += p * weight
        return total

    # -- sharded entry points --------------------------------------------------

    def _chunk_sizes(self, count: int, workers: int) -> List[int]:
        size = self.chunk_shots
        if size is None:
            size = max(1, _CHUNK_AMPLITUDES // self._dim)
        if workers > 1:
            size = min(size, max(1, -(-count // workers)))
        sizes = []
        left = count
        while left > 0:
            take = min(size, left)
            sizes.append(take)
            left -= take
        return sizes

    def _run_batched(
        self,
        contract,
        shots: Optional[int],
        seed: SeedLike,
        workers: int,
    ) -> SimResult:
        """Sample serially, evolve in chunks, contract per shot, aggregate.

        ``contract(psi) -> {key: (rows,) values}`` computes the per-shot
        samples of one evolved chunk.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        rng = as_generator(seed if seed is not None else self.options.seed)
        count = shots or self.options.shots
        # The sampling pass is the only serial part: it replays the exact
        # RNG stream of `count` sequential scalar trajectories. Each chunk's
        # records are stacked into compact arrays as soon as they're drawn,
        # so the boxed per-shot records never all exist at once.
        chunks = []
        for size in self._chunk_sizes(count, workers):
            records = [sample_shot(self._plan, rng) for _ in range(size)]
            chunks.append(_BatchNoise(self._plan, records))

        def job(batch: _BatchNoise) -> Dict[str, np.ndarray]:
            psi, _clbits = self._evolve_chunk(batch)
            return contract(psi)

        if workers > 1 and len(chunks) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(job, chunks))
        else:
            results = [job(batch) for batch in chunks]
        samples = {
            key: np.concatenate([r[key] for r in results])
            for key in results[0]
        }
        return _aggregate(samples, count)

    def expectations(
        self,
        observables: Dict[str, Pauli],
        shots: Optional[int] = None,
        seed: SeedLike = None,
        workers: int = 1,
    ) -> SimResult:
        """Batched, bit-identical twin of ``Executor.expectations``."""

        def contract(psi: np.ndarray) -> Dict[str, np.ndarray]:
            out = {}
            for key, pauli in observables.items():
                values = self._expectation_rows(psi, pauli)
                if self.options.readout_errors:
                    values = values * self._readout_attenuation(pauli)
                out[key] = values
            return out

        return self._run_batched(contract, shots, seed, workers)

    def probabilities(
        self,
        targets: Dict[str, Dict[int, int]],
        shots: Optional[int] = None,
        seed: SeedLike = None,
        workers: int = 1,
    ) -> SimResult:
        """Batched, bit-identical twin of ``Executor.probabilities``."""

        def contract(psi: np.ndarray) -> Dict[str, np.ndarray]:
            if self.options.readout_errors:
                return {
                    key: self._noisy_bit_prob_rows(psi, bits)
                    for key, bits in targets.items()
                }
            return {
                key: self._bitstring_prob_rows(psi, bits)
                for key, bits in targets.items()
            }

        return self._run_batched(contract, shots, seed, workers)
