"""Fig. 3 reproduction: Ramsey characterization of the four error contexts.

Produces fidelity-vs-depth series for each case and strategy set:

* case I   (panel c): noisy / aligned DD / staggered DD / EC / EC+aligned DD
* case II  (panel d): noisy / DD / EC          (control spectator)
* case III (panel e): noisy / DD / EC          (target spectator)
* case IV  (panel f): noisy / EC               (adjacent controls; DD n/a)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..benchmarking.ramsey import CASE_I, CASE_II, CASE_III, CASE_IV, RamseyCase, ramsey_task
from ..device.calibration import Device, synthetic_device
from ..device.topology import linear_chain
from ..runtime import run
from ..sim.executor import SimOptions

CASE_STRATEGIES: Dict[str, List[str]] = {
    CASE_I.name: ["none", "dd", "staggered_dd", "ca_ec", "ec+aligned_dd"],
    CASE_II.name: ["none", "ca_dd", "ca_ec"],
    CASE_III.name: ["none", "ca_dd", "ca_ec"],
    CASE_IV.name: ["none", "ca_ec"],
}

CASES: Dict[str, RamseyCase] = {
    c.name: c for c in (CASE_I, CASE_II, CASE_III, CASE_IV)
}


@dataclass
class Fig3Result:
    """Per-case, per-strategy fidelity series."""

    depths: List[int]
    curves: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    def rows(self) -> List[str]:
        lines = []
        for case_name, by_strategy in self.curves.items():
            lines.append(f"[{case_name}] depths={self.depths}")
            for strategy, values in by_strategy.items():
                formatted = " ".join(f"{v:.3f}" for v in values)
                lines.append(f"  {strategy:>14s}: {formatted}")
        return lines


def run_fig3(
    depths: Sequence[int] = (0, 2, 4, 8, 12, 16, 20, 24),
    tau: float = 500.0,
    shots: int = 48,
    realizations: int = 8,
    seed: int = 1001,
    cases: Sequence[str] = tuple(CASES),
    backend=None,
    workers: Optional[int] = None,
) -> Fig3Result:
    """Run all Ramsey contexts; depths should be even (case IV self-inverts).

    The gate-context cases (II-IV) run twirled — as in the paper's layered
    workflow, and necessary for case IV, whose repeated untwirled layer
    accidentally echoes away its own control-control ZZ.

    Every (case, strategy, depth) point becomes one independently seeded
    :class:`~repro.runtime.Task`, so the whole figure is a single batched
    run that parallelizes across ``workers``.
    """
    result = Fig3Result(depths=list(depths))
    options = SimOptions(shots=shots)
    tasks = []
    keys = []
    for case_name in cases:
        case = CASES[case_name]
        device = synthetic_device(
            linear_chain(case.num_qubits),
            name=f"fig3_{case.name}",
            seed=seed + case.num_qubits,
        )
        twirl = case.name != CASE_I.name
        result.curves[case.name] = {}
        for strategy in CASE_STRATEGIES[case.name]:
            result.curves[case.name][strategy] = []
            for depth in depths:
                tasks.append(
                    ramsey_task(
                        case,
                        device,
                        depth,
                        strategy,
                        tau=tau,
                        twirl=twirl,
                        realizations=realizations if twirl else 1,
                        seed=seed,
                    )
                )
                keys.append((case.name, strategy))
    batch = run(tasks, options=options, backend=backend, workers=workers)
    for (case_name, strategy), point in zip(keys, batch):
        result.curves[case_name][strategy].append(float(point.values["f"]))
    return result
