"""Fig. 3 reproduction: Ramsey characterization of the four error contexts.

Produces fidelity-vs-depth series for each case and strategy set:

* case I   (panel c): noisy / aligned DD / staggered DD / EC / EC+aligned DD
* case II  (panel d): noisy / DD / EC          (control spectator)
* case III (panel e): noisy / DD / EC          (target spectator)
* case IV  (panel f): noisy / EC               (adjacent controls; DD n/a)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..benchmarking.ramsey import CASE_I, CASE_II, CASE_III, CASE_IV, RamseyCase, ramsey_task
from ..device.calibration import synthetic_device
from ..device.topology import linear_chain
from ..runtime import Sweep, SweepResult
from ..sim.executor import SimOptions

CASE_STRATEGIES: Dict[str, List[str]] = {
    CASE_I.name: ["none", "dd", "staggered_dd", "ca_ec", "ec+aligned_dd"],
    CASE_II.name: ["none", "ca_dd", "ca_ec"],
    CASE_III.name: ["none", "ca_dd", "ca_ec"],
    CASE_IV.name: ["none", "ca_ec"],
}

CASES: Dict[str, RamseyCase] = {
    c.name: c for c in (CASE_I, CASE_II, CASE_III, CASE_IV)
}


@dataclass
class Fig3Result:
    """Per-case, per-strategy fidelity series."""

    depths: List[int]
    curves: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    sweep: Optional[SweepResult] = None

    def rows(self) -> List[str]:
        lines = []
        for case_name, by_strategy in self.curves.items():
            lines.append(f"[{case_name}] depths={self.depths}")
            for strategy, values in by_strategy.items():
                formatted = " ".join(f"{v:.3f}" for v in values)
                lines.append(f"  {strategy:>14s}: {formatted}")
        return lines

    def to_json(self) -> Dict:
        return {
            "experiment": "fig3",
            "depths": self.depths,
            "curves": self.curves,
            "sweep": self.sweep.to_json() if self.sweep else None,
        }


def run_fig3(
    depths: Sequence[int] = (0, 2, 4, 8, 12, 16, 20, 24),
    tau: float = 500.0,
    shots: int = 48,
    realizations: int = 8,
    seed: int = 1001,
    cases: Sequence[str] = tuple(CASES),
    backend=None,
    workers: Optional[int] = None,
) -> Fig3Result:
    """Run all Ramsey contexts; depths should be even (case IV self-inverts).

    The gate-context cases (II-IV) run twirled — as in the paper's layered
    workflow, and necessary for case IV, whose repeated untwirled layer
    accidentally echoes away its own control-control ZZ.

    The whole figure is one declarative :class:`~repro.runtime.Sweep` over
    (case, strategy, depth) — strategies that don't apply to a case are
    skipped points — and every point is an independently seeded
    :class:`~repro.runtime.Task`, so the grid compiles and simulates as a
    single batched run that parallelizes across ``workers``.
    """
    devices = {
        name: synthetic_device(
            linear_chain(CASES[name].num_qubits),
            name=f"fig3_{name}",
            seed=seed + CASES[name].num_qubits,
        )
        for name in cases
    }
    strategies = list(
        dict.fromkeys(s for name in cases for s in CASE_STRATEGIES[name])
    )

    def build(case, strategy, depth):
        if strategy not in CASE_STRATEGIES[case]:
            return None
        twirl = case != CASE_I.name
        return ramsey_task(
            CASES[case],
            devices[case],
            depth,
            strategy,
            tau=tau,
            twirl=twirl,
            realizations=realizations if twirl else 1,
            seed=seed,
        )

    sweep = Sweep(
        {"case": list(cases), "strategy": strategies, "depth": list(depths)},
        build,
        name="fig3",
    )
    swept = sweep.run(
        options=SimOptions(shots=shots), backend=backend, workers=workers
    )
    result = Fig3Result(depths=list(depths), sweep=swept)
    for case_name in cases:
        result.curves[case_name] = {
            strategy: [
                float(v)
                for v in swept.curve("f", case=case_name, strategy=strategy)
            ]
            for strategy in CASE_STRATEGIES[case_name]
        }
    return result
