"""Fig. 10 reproduction: combined CA-EC + CA-DD strategy.

``P00`` on the probe pair of the 6-qubit Floquet circuit versus depth. The
layer layout contains both an idle pair (DD territory) and adjacent ECR
controls (EC territory), so the combined strategy beats each constituent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..apps.floquet6 import floquet6_circuit, floquet6_device, probe_target_bits
from ..compiler.strategies import compile_circuit
from ..sim.executor import SimOptions, bit_probabilities
from ..utils.rng import as_generator

STRATEGIES = ("none", "ca_dd", "ca_ec", "ca_ec+dd")


@dataclass
class Fig10Result:
    steps: List[int]
    curves: Dict[str, List[float]] = field(default_factory=dict)

    def mean_fidelity(self, strategy: str) -> float:
        return float(np.mean(self.curves[strategy]))

    def rows(self) -> List[str]:
        lines = [f"steps: {self.steps}"]
        for strategy, values in self.curves.items():
            formatted = " ".join(f"{v:.3f}" for v in values)
            lines.append(f"  {strategy:>9s}: {formatted}  (mean {np.mean(values):.3f})")
        return lines


def run_fig10(
    steps: Sequence[int] = (0, 1, 2, 3, 4, 5),
    shots: int = 24,
    realizations: int = 6,
    seed: int = 7001,
) -> Fig10Result:
    device = floquet6_device(seed=seed)
    target = {"p": probe_target_bits()}
    result = Fig10Result(steps=list(steps))
    for strategy in STRATEGIES:
        values = []
        for depth in steps:
            circuit = floquet6_circuit(depth)
            rng = as_generator(seed + depth)
            samples = []
            for _ in range(realizations):
                compiled = compile_circuit(circuit, device, strategy, seed=rng)
                sub_seed = int(rng.integers(0, 2**63 - 1))
                res = bit_probabilities(
                    compiled,
                    device,
                    target,
                    SimOptions(shots=shots, seed=sub_seed),
                )
                samples.append(res.values["p"])
            values.append(float(np.mean(samples)))
        result.curves[strategy] = values
    return result
