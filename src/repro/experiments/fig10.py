"""Fig. 10 reproduction: combined CA-EC + CA-DD strategy.

``P00`` on the probe pair of the 6-qubit Floquet circuit versus depth. The
layer layout contains both an idle pair (DD territory) and adjacent ECR
controls (EC territory), so the combined strategy beats each constituent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from typing import Optional

from ..apps.floquet6 import floquet6_circuit, floquet6_device, probe_target_bits
from ..runtime import Sweep, SweepResult, Task
from ..sim.executor import SimOptions

STRATEGIES = ("none", "ca_dd", "ca_ec", "ca_ec+dd")


@dataclass
class Fig10Result:
    steps: List[int]
    curves: Dict[str, List[float]] = field(default_factory=dict)
    sweep: Optional[SweepResult] = None

    def mean_fidelity(self, strategy: str) -> float:
        return float(np.mean(self.curves[strategy]))

    def rows(self) -> List[str]:
        lines = [f"steps: {self.steps}"]
        for strategy, values in self.curves.items():
            formatted = " ".join(f"{v:.3f}" for v in values)
            lines.append(f"  {strategy:>9s}: {formatted}  (mean {np.mean(values):.3f})")
        return lines

    def to_json(self) -> Dict:
        return {
            "experiment": "fig10",
            "steps": self.steps,
            "curves": self.curves,
            "sweep": self.sweep.to_json() if self.sweep else None,
        }


def run_fig10(
    steps: Sequence[int] = (0, 1, 2, 3, 4, 5),
    shots: int = 24,
    realizations: int = 6,
    seed: int = 7001,
    backend=None,
    workers: Optional[int] = None,
) -> Fig10Result:
    device = floquet6_device(seed=seed)
    target = {"p": probe_target_bits()}
    swept = Sweep(
        {"strategy": STRATEGIES, "step": list(steps)},
        lambda strategy, step: Task(
            floquet6_circuit(step),
            bit_targets=target,
            pipeline=strategy,
            realizations=realizations,
            seed=seed + step,
            name=f"{strategy}/d{step}",
        ),
        name="fig10",
    ).run(device, options=SimOptions(shots=shots), backend=backend, workers=workers)
    return Fig10Result(
        steps=list(steps),
        curves={
            s: [float(v) for v in swept.curve("p", strategy=s)]
            for s in STRATEGIES
        },
        sweep=swept,
    )
