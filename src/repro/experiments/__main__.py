"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig9
    python -m repro.experiments fig3 --quick
    python -m repro.experiments all --quick --json results.json

``--quick`` shrinks shot counts and sweeps so each experiment finishes in
seconds (useful for smoke-checking an install); default parameters match
the benchmark harness. ``--workers N`` fans each experiment's batched
simulations out over N threads and ``--backend`` selects the simulation
engine (``vectorized`` batches all shots of a task through whole-array
NumPy ops; results are identical to ``trajectory`` for any backend/worker
choice, only the wall time changes). ``--chunk-shots`` bounds the
vectorized engine's resident states per chunk (0 = auto-size). ``--json
PATH`` writes every requested experiment's result — including the full
per-point Sweep serialization — as one JSON document.

``--backend distributed`` shards each batch's realizations across worker
*processes*: ``--dist-workers N`` sets the fleet size, ``--dist-serve
HOST:PORT`` additionally serves the shard queue over TCP so other hosts
can join the run (``python -m repro.runtime.distributed worker --connect
HOST:PORT``), and ``--dist-connect HOST:PORT`` dials out to workers
started with ``worker --listen``. Results are bit-for-bit identical to
``trajectory`` for every worker count, shard size, and transport.

Compile-stage knobs (none of them changes a value, only wall time):
``--plan-cache off|memory|disk`` selects the plan-cache mode — ``disk``
persists compiled schedules under ``~/.cache/repro-plans`` (or a directory
given directly: ``--plan-cache /path/to/cache``) so a second invocation of
the same figure warm-starts its compile stage; ``--compile-mode process``
fans compilation out over a process pool instead of threads;
``--compile-workers N`` sets the compile-stage parallelism (default: the
simulation ``--workers``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from . import (
    run_fig3,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_nnn_walsh,
    run_parity,
    run_stark,
    run_table1,
)
from .fig4 import Fig4Result


def _fig3(quick: bool):
    return run_fig3(
        depths=(0, 4, 8) if quick else (0, 4, 8, 12, 16, 20),
        shots=8 if quick else 32,
        realizations=2 if quick else 6,
    )


def _fig4(quick: bool):
    return Fig4Result(
        stark=run_stark(
            times=tuple(
                np.linspace(500.0, 20000.0 if quick else 60000.0, 40 if quick else 100)
            ),
            shots=8 if quick else 16,
        ),
        parity=run_parity(
            times=tuple(np.linspace(0.0, 20000.0, 40 if quick else 120)),
            shots=32 if quick else 120,
        ),
        nnn=run_nnn_walsh(
            depths=(0, 8) if quick else (0, 8, 16, 24), shots=16 if quick else 32
        ),
    )


def _fig6(quick: bool):
    return run_fig6(
        steps=(0, 1, 2) if quick else (0, 1, 2, 3, 4, 5),
        shots=8 if quick else 20,
        realizations=2 if quick else 6,
    )


def _fig7(quick: bool):
    return run_fig7(
        num_qubits=6 if quick else 12,
        steps=(0, 1, 2) if quick else (0, 1, 2, 3, 4, 5),
        shots=6 if quick else 14,
        realizations=3 if quick else 10,
    )


def _fig8(quick: bool):
    return run_fig8(
        depths=(1, 2) if quick else (1, 2, 4, 6),
        samples=2 if quick else 6,
        shots=6 if quick else 12,
    )


def _fig9(quick: bool):
    return run_fig9(
        estimates=list(np.linspace(0.0, 3000.0, 5 if quick else 11)),
        shots=40 if quick else 140,
    )


def _fig10(quick: bool):
    return run_fig10(
        steps=(0, 1, 2) if quick else (0, 1, 2, 3, 4, 5),
        shots=8 if quick else 24,
        realizations=3 if quick else 10,
    )


def _table1(quick: bool):
    return run_table1(depth=4 if quick else 8, shots=24 if quick else 48)


#: Each runner returns a result object exposing ``rows()`` (text report;
#: ``formatted()`` is accepted as an alias) and ``to_json()`` (the Sweep
#: serialization behind ``--json``).
EXPERIMENTS: Dict[str, Callable] = {
    "fig3": _fig3,
    "fig4": _fig4,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "table1": _table1,
}


def _render(result) -> List[str]:
    # Table1Result's ``rows`` is a data field; its report method is
    # ``formatted()``. Everything else exposes ``rows()``.
    for attr in ("rows", "formatted"):
        method = getattr(result, attr, None)
        if callable(method):
            return method()
    raise TypeError(f"{type(result).__name__} has no report method")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which experiment to run ('list' to enumerate)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced statistics (seconds)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="simulation threads per batched run (deterministic for any N)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="simulation backend: trajectory (default), vectorized "
        "(batched, bit-identical, faster), density (exact), or "
        "distributed (shards realizations across processes/hosts, "
        "bit-identical to trajectory)",
    )
    parser.add_argument(
        "--chunk-shots",
        type=int,
        default=None,
        metavar="N",
        help="vectorized backend: max states resident per chunk "
        "(0 = auto-size to ~32 MiB; results never depend on this)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the full results (per-point Sweep serialization) as JSON",
    )
    parser.add_argument(
        "--plan-cache",
        default=None,
        metavar="MODE",
        help="plan-cache mode: off, memory (default), or disk (persist "
        "compiled schedules so a repeated figure warm-starts); any other "
        "value is taken as a disk-cache directory",
    )
    parser.add_argument(
        "--compile-mode",
        default=None,
        choices=("thread", "process"),
        help="compile-stage fan-out: thread (default) or process "
        "(sidesteps the GIL; results are identical either way)",
    )
    parser.add_argument(
        "--compile-workers",
        type=int,
        default=None,
        metavar="N",
        help="compile-stage parallelism (default: the simulation --workers)",
    )
    parser.add_argument(
        "--dist-workers",
        type=int,
        default=None,
        metavar="N",
        help="distributed backend: worker-process count "
        "(default: the simulation --workers)",
    )
    parser.add_argument(
        "--dist-shard-size",
        type=int,
        default=None,
        metavar="N",
        help="distributed backend: realizations per shard "
        "(default: auto-size; results never depend on this)",
    )
    parser.add_argument(
        "--dist-serve",
        default=None,
        metavar="HOST:PORT",
        help="distributed backend: serve the shard queue here so other "
        "hosts can join (python -m repro.runtime.distributed worker "
        "--connect HOST:PORT)",
    )
    parser.add_argument(
        "--dist-connect",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="distributed backend: dial out to a listening worker "
        "(python -m repro.runtime.distributed worker --listen ...); "
        "repeatable",
    )
    args = parser.parse_args(argv)

    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.chunk_shots is not None and args.chunk_shots < 0:
        parser.error("--chunk-shots must be >= 1 (or 0 for auto)")
    if args.compile_workers is not None and args.compile_workers < 1:
        parser.error("--compile-workers must be >= 1")
    if args.dist_workers is not None and args.dist_workers < 1:
        parser.error("--dist-workers must be >= 1")
    if args.dist_shard_size is not None and args.dist_shard_size < 1:
        parser.error("--dist-shard-size must be >= 1")
    plan_cache_mode = plan_cache_dir = None
    if args.plan_cache is not None:
        if args.plan_cache in ("off", "memory", "disk"):
            plan_cache_mode = args.plan_cache
        else:
            # A path selects disk mode rooted there — the one-flag spelling
            # for "cache this run's plans in that directory".
            plan_cache_mode, plan_cache_dir = "disk", args.plan_cache
    if (
        args.workers is not None
        or args.backend is not None
        or args.chunk_shots is not None
        or args.compile_mode is not None
        or args.compile_workers is not None
        or args.dist_workers is not None
        or args.dist_shard_size is not None
        or args.dist_serve is not None
        or args.dist_connect is not None
        or plan_cache_mode is not None
    ):
        from ..runtime import configure

        try:
            configure(workers=args.workers, backend=args.backend)
            if args.chunk_shots is not None:
                configure(chunk_shots=args.chunk_shots or None)
            if args.compile_mode is not None:
                configure(compile_mode=args.compile_mode)
            if args.compile_workers is not None:
                configure(compile_workers=args.compile_workers)
            if args.dist_workers is not None:
                configure(dist_workers=args.dist_workers)
            if args.dist_shard_size is not None:
                configure(dist_shard_size=args.dist_shard_size)
            if args.dist_serve is not None:
                configure(dist_serve=args.dist_serve)
            if args.dist_connect is not None:
                configure(dist_connect=tuple(args.dist_connect))
            if plan_cache_mode is not None:
                if plan_cache_dir is not None:
                    configure(
                        plan_cache=plan_cache_mode, plan_cache_dir=plan_cache_dir
                    )
                else:
                    configure(plan_cache=plan_cache_mode)
        except ValueError as exc:
            parser.error(str(exc))

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    payloads: Dict[str, Dict] = {}
    for name in names:
        print(f"=== {name} ===")
        start = time.time()
        result = EXPERIMENTS[name](args.quick)
        for line in _render(result):
            print(line)
        print(f"({time.time() - start:.1f} s)\n")
        if args.json:
            payloads[name] = result.to_json()

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payloads, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
