"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig9
    python -m repro.experiments fig3 --quick
    python -m repro.experiments all --quick

``--quick`` shrinks shot counts and sweeps so each experiment finishes in
seconds (useful for smoke-checking an install); default parameters match
the benchmark harness. ``--workers N`` fans each experiment's batched
simulations out over N threads and ``--backend`` selects the simulation
engine (``vectorized`` batches all shots of a task through whole-array
NumPy ops; results are identical to ``trajectory`` for any backend/worker
choice, only the wall time changes).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from . import (
    run_fig3,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_nnn_walsh,
    run_parity,
    run_stark,
    run_table1,
)


def _fig3(quick: bool) -> List[str]:
    result = run_fig3(
        depths=(0, 4, 8) if quick else (0, 4, 8, 12, 16, 20),
        shots=8 if quick else 32,
        realizations=2 if quick else 6,
    )
    return result.rows()


def _fig4(quick: bool) -> List[str]:
    lines = []
    stark = run_stark(
        times=tuple(np.linspace(500.0, 20000.0 if quick else 60000.0, 40 if quick else 100)),
        shots=8 if quick else 16,
    )
    lines.append(
        f"[fig4a] stark shift: measured {stark.stark_shift / 1e-6:.1f} kHz, "
        f"calibrated {stark.calibrated_stark / 1e-6:.1f} kHz"
    )
    parity = run_parity(
        times=tuple(np.linspace(0.0, 20000.0, 40 if quick else 120)),
        shots=32 if quick else 120,
    )
    signal = np.asarray(parity["signal"])
    lines.append(
        f"[fig4b] parity beating: fringe range [{signal.min():.2f}, {signal.max():.2f}]"
    )
    nnn = run_nnn_walsh(
        depths=(0, 8) if quick else (0, 8, 16, 24), shots=16 if quick else 32
    )
    for name, curve in nnn.curves.items():
        lines.append(
            f"[fig4c] {name:>10s}: " + " ".join(f"{v:.3f}" for v in curve)
        )
    return lines


def _fig6(quick: bool) -> List[str]:
    result = run_fig6(
        steps=(0, 1, 2) if quick else (0, 1, 2, 3, 4, 5),
        shots=8 if quick else 20,
        realizations=2 if quick else 6,
    )
    return result.rows()


def _fig7(quick: bool) -> List[str]:
    result = run_fig7(
        num_qubits=6 if quick else 12,
        steps=(0, 1, 2) if quick else (0, 1, 2, 3, 4, 5),
        shots=6 if quick else 14,
        realizations=3 if quick else 10,
    )
    return result.rows()


def _fig8(quick: bool) -> List[str]:
    result = run_fig8(
        depths=(1, 2) if quick else (1, 2, 4, 6),
        samples=2 if quick else 6,
        shots=6 if quick else 12,
    )
    return result.rows()


def _fig9(quick: bool) -> List[str]:
    result = run_fig9(
        estimates=list(np.linspace(0.0, 3000.0, 5 if quick else 11)),
        shots=40 if quick else 140,
    )
    return result.rows()


def _fig10(quick: bool) -> List[str]:
    result = run_fig10(
        steps=(0, 1, 2) if quick else (0, 1, 2, 3, 4, 5),
        shots=8 if quick else 24,
        realizations=3 if quick else 10,
    )
    return result.rows()


def _table1(quick: bool) -> List[str]:
    result = run_table1(depth=4 if quick else 8, shots=24 if quick else 48)
    return result.formatted()


EXPERIMENTS: Dict[str, Callable[[bool], List[str]]] = {
    "fig3": _fig3,
    "fig4": _fig4,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "table1": _table1,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which experiment to run ('list' to enumerate)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced statistics (seconds)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="simulation threads per batched run (deterministic for any N)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="simulation backend: trajectory (default), vectorized "
        "(batched, bit-identical, faster), or density (exact)",
    )
    args = parser.parse_args(argv)

    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.workers is not None or args.backend is not None:
        from ..runtime import configure

        try:
            configure(workers=args.workers, backend=args.backend)
        except ValueError as exc:
            parser.error(str(exc))

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"=== {name} ===")
        start = time.time()
        for line in EXPERIMENTS[name](args.quick):
            print(line)
        print(f"({time.time() - start:.1f} s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
