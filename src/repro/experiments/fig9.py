"""Fig. 9 reproduction: error compensation for dynamic circuits.

Sweeps the compiler's estimate of the feedforward time against the true
hardware value: the CA-EC Bell fidelity peaks where the estimate matches
the truth (the paper's 1.15 us), far above the uncompensated baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..apps.dynamic import (
    bell_dynamic_circuit,
    bell_target_bits,
    compensated_circuit,
    conditionally_compensated_circuit,
    dynamic_device,
)
from ..runtime import Sweep, SweepResult, Task
from ..sim.executor import SimOptions


@dataclass
class Fig9Result:
    estimates: List[float]
    fidelities: List[float]
    bare_fidelity: float
    true_feedforward: float
    conditional_fidelity: float = 0.0
    sweep: Optional[SweepResult] = None

    @property
    def best_estimate(self) -> float:
        return self.estimates[int(np.argmax(self.fidelities))]

    @property
    def peak_fidelity(self) -> float:
        return float(max(self.fidelities))

    @property
    def improvement(self) -> float:
        return self.peak_fidelity / max(self.bare_fidelity, 1e-9)

    def rows(self) -> List[str]:
        lines = [
            f"bare fidelity: {self.bare_fidelity:.3f}",
            f"true feedforward: {self.true_feedforward:.0f} ns",
        ]
        for est, fid in zip(self.estimates, self.fidelities):
            lines.append(f"  tau_est = {est:7.0f} ns -> F = {fid:.3f}")
        lines.append(
            f"peak {self.peak_fidelity:.3f} at {self.best_estimate:.0f} ns "
            f"({self.improvement:.1f}x over bare)"
        )
        lines.append(
            "conditional-branch variant (Fig. 9b) at true timing: "
            f"F = {self.conditional_fidelity:.3f}"
        )
        return lines

    def to_json(self) -> Dict:
        return {
            "experiment": "fig9",
            "estimates": self.estimates,
            "fidelities": self.fidelities,
            "bare_fidelity": self.bare_fidelity,
            "conditional_fidelity": self.conditional_fidelity,
            "true_feedforward": self.true_feedforward,
            "sweep": self.sweep.to_json() if self.sweep else None,
        }


def run_fig9(
    estimates: Optional[Sequence[float]] = None,
    true_feedforward: float = 1150.0,
    shots: int = 160,
    seed: int = 6001,
    backend=None,
    workers: Optional[int] = None,
) -> Fig9Result:
    if estimates is None:
        estimates = list(np.linspace(0.0, 3000.0, 13))
    device = dynamic_device(feedforward_duration=true_feedforward)
    options = SimOptions(shots=shots, seed=seed)
    target = {"f": bell_target_bits()}

    # Bare baseline, the estimate sweep, and the conditional variant as one
    # single-axis sweep; every task reuses options.seed, as the legacy loop
    # did, so batching leaves the values untouched.
    def build(variant):
        if variant == "bare":
            return Task(bell_dynamic_circuit(), bit_targets=target, name="bare")
        if variant == "conditional":
            return Task(
                conditionally_compensated_circuit(device),
                bit_targets=target,
                name="conditional",
            )
        return Task(
            compensated_circuit(device, feedforward_estimate=variant),
            bit_targets=target,
            name=f"est={variant:.0f}",
        )

    estimates = [float(e) for e in estimates]
    swept = Sweep(
        {"variant": ["bare", *estimates, "conditional"]}, build, name="fig9"
    ).run(device, options=options, backend=backend, workers=workers)
    return Fig9Result(
        estimates=estimates,
        fidelities=[swept[e].values["f"] for e in estimates],
        bare_fidelity=swept["bare"].values["f"],
        true_feedforward=true_feedforward,
        conditional_fidelity=swept["conditional"].values["f"],
        sweep=swept,
    )
