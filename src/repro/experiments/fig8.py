"""Fig. 8 reproduction: layer fidelity of a sparse 10-qubit layer.

The benchmarked layer mirrors the paper's: three ECR gates and four idle
qubits arranged so that two ECR *controls* are adjacent (their mutual ZZ is
invisible to DD — CA-EC's advantage in this layer) and two idle qubits are
adjacent (the classic staggering target). Reports LF and ``gamma = LF**-2``
per strategy, plus the overhead-reduction factors for a 10-layer circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..benchmarking.layer_fidelity import (
    LayerFidelityResult,
    LayerSpec,
    measure_layer_fidelity,
    overhead_reduction,
)
from ..device.calibration import Device, synthetic_device
from ..device.topology import Topology
from ..sim.executor import SimOptions

STRATEGIES = ("none", "dd", "ca_dd", "ca_ec")


def fig8_device(seed: int = 5001) -> Device:
    """A 10-qubit device shaped like the paper's nazca sublayout.

    Qubits 0-3 form the top row (paper's 37-40), 5-9 the bottom row
    (56-60), and qubit 4 the bridge (52) linking the two rows.
    """
    edges = [
        (0, 1), (1, 2), (2, 3),          # top row
        (5, 6), (6, 7), (7, 8), (8, 9),  # bottom row
        (0, 4), (4, 5),                  # bridge column
    ]
    return synthetic_device(Topology(10, edges), name="fig8_layer", seed=seed)


def fig8_layer() -> LayerSpec:
    """Three ECRs: controls on 0 and 1 are adjacent; 6,7 idle together.

    Gates: ECR(0 -> 4), ECR(1 -> 2), ECR(8 -> 9); idle: 3, 5, 6, 7.
    """
    return LayerSpec(
        num_qubits=10,
        gates=(("ecr", 0, 4), ("ecr", 1, 2), ("ecr", 8, 9)),
    )


@dataclass
class Fig8Result:
    results: Dict[str, LayerFidelityResult] = field(default_factory=dict)

    def table(self) -> List[Tuple[str, float, float]]:
        """Rows of ``(strategy, layer_fidelity, gamma)``."""
        return [
            (name, res.layer_fidelity, res.gamma)
            for name, res in self.results.items()
        ]

    def reduction(self, reference: str, strategy: str, layers: int = 10) -> float:
        return overhead_reduction(
            self.results[reference].gamma, self.results[strategy].gamma, layers
        )

    def rows(self) -> List[str]:
        lines = ["strategy        LF      gamma"]
        for name, lf, gamma in self.table():
            lines.append(f"{name:>12s}  {lf:.3f}  {gamma:.2f}")
        if "dd" in self.results:
            for strategy in ("ca_dd", "ca_ec"):
                if strategy in self.results:
                    lines.append(
                        f"overhead reduction {strategy} vs dd over 10 layers: "
                        f"{self.reduction('dd', strategy, 10):.1f}x"
                    )
        return lines

    def to_json(self) -> Dict:
        return {
            "experiment": "fig8",
            "strategies": {
                name: {
                    "layer_fidelity": res.layer_fidelity,
                    "gamma": res.gamma,
                    "rates": {str(p): r for p, r in res.rates.items()},
                    "curves": {str(p): c for p, c in res.curves.items()},
                    "sweep": res.sweep.to_json() if res.sweep else None,
                }
                for name, res in self.results.items()
            },
        }


def run_fig8(
    depths: Sequence[int] = (1, 2, 4, 6),
    samples: int = 5,
    shots: int = 12,
    seed: int = 5001,
    strategies: Sequence[str] = STRATEGIES,
    backend=None,
    workers: Optional[int] = None,
) -> Fig8Result:
    device = fig8_device(seed)
    spec = fig8_layer()
    options = SimOptions(shots=shots)
    result = Fig8Result()
    for strategy in strategies:
        result.results[strategy] = measure_layer_fidelity(
            spec,
            device,
            strategy,
            depths=depths,
            samples=samples,
            options=options,
            seed=seed,
            backend=backend,
            workers=workers,
        )
    return result
