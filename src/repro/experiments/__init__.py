"""Experiment drivers: one per paper figure/table."""

from .fig3 import CASES, CASE_STRATEGIES, Fig3Result, run_fig3
from .fig4 import NNNResult, run_nnn_walsh, run_parity, run_stark
from .fig6 import Fig6Result, run_fig6
from .fig7 import Fig7Result, run_fig7
from .fig8 import Fig8Result, fig8_device, fig8_layer, run_fig8
from .fig9 import Fig9Result, run_fig9
from .fig10 import Fig10Result, run_fig10
from .table1 import Table1Result, TableRow, run_table1

__all__ = [
    "CASES",
    "CASE_STRATEGIES",
    "Fig3Result",
    "run_fig3",
    "NNNResult",
    "run_nnn_walsh",
    "run_parity",
    "run_stark",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "fig8_device",
    "fig8_layer",
    "run_fig8",
    "Fig9Result",
    "run_fig9",
    "Fig10Result",
    "run_fig10",
    "Table1Result",
    "TableRow",
    "run_table1",
]
