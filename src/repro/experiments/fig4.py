"""Fig. 4 reproduction: the smaller error mechanisms.

* (a) AC Stark shift: Ramsey FFT peak of a spectator with its neighbor idle
  versus driven; the shift should match the device's calibrated ~20 kHz.
* (b) Charge-parity beating: Ramsey fringe with a known applied rotation
  shows an envelope at the parity splitting ``delta``.
* (c) NNN ZZ suppression: a collision-enhanced next-nearest-neighbor pair
  needs a third Walsh color; aligned or 2-color staggered sequences leave
  residual error that the Walsh assignment removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..benchmarking.spectroscopy import StarkMeasurement, measure_stark_shift, parity_beating_signal
from ..circuits.circuit import Circuit
from ..compiler.dd import apply_dd_by_rule
from ..compiler.walsh import walsh_fractions
from ..device.calibration import synthetic_device
from ..device.topology import linear_chain
from ..runtime import Sweep, SweepResult, Task
from ..sim.executor import SimOptions
from ..utils.units import KHZ


def run_stark(
    seed: int = 2001,
    times: Sequence[float] = tuple(np.linspace(500.0, 60000.0, 120)),
    shots: int = 24,
) -> StarkMeasurement:
    """Fig. 4a: spectator fringe peak displaced from the always-on line.

    The time window must be long for the FFT to resolve a ~20 kHz shift
    (frequency resolution is the inverse of the window).
    """
    device = synthetic_device(linear_chain(3), name="fig4a", seed=seed)
    options = SimOptions(shots=shots, seed=seed, gate_errors=False)
    return measure_stark_shift(device, probe=0, neighbor=1, times=times, options=options)


def run_parity(
    seed: int = 2002,
    applied_khz: float = 250.0,
    delta_khz: float = 40.0,
    times: Sequence[float] = tuple(np.linspace(0.0, 30000.0, 120)),
    shots: int = 160,
) -> Dict[str, List[float]]:
    """Fig. 4b: beating Ramsey fringe from the shot-to-shot parity sign.

    Returns the time axis and signal; the beat envelope has frequency
    ``delta`` while the carrier oscillates at the applied frequency.
    """
    device = synthetic_device(linear_chain(1), name="fig4b", seed=seed)
    # Use an isolated qubit with an artificially visible parity splitting
    # (the effect's size varies between systems; see paper Sec. III C).
    qubit = replace(
        device.qubits[0],
        parity_delta=delta_khz * KHZ,
        quasistatic_sigma=0.0,
        t1=float("inf"),
        t2=float("inf"),
    )
    device = replace(device, qubits=[qubit])
    options = SimOptions(shots=shots, seed=seed, gate_errors=False, amplitude_damping=False)
    signal = parity_beating_signal(
        device, probe=0, times=times, applied_frequency=applied_khz * KHZ, options=options
    )
    return {"times": list(times), "signal": signal}


@dataclass
class NNNResult:
    """Fig. 4c fidelity curves per DD scheme."""

    depths: List[int]
    curves: Dict[str, List[float]] = field(default_factory=dict)
    sweep: Optional[SweepResult] = None

    def to_json(self) -> Dict:
        return {
            "experiment": "fig4c_nnn_walsh",
            "depths": self.depths,
            "curves": self.curves,
            "sweep": self.sweep.to_json() if self.sweep else None,
        }


def run_nnn_walsh(
    depths: Sequence[int] = (0, 4, 8, 12, 16, 20),
    tau: float = 500.0,
    nnn_khz: float = 15.0,
    seed: int = 2003,
    shots: int = 48,
) -> NNNResult:
    """Fig. 4c: three qubits with all-to-all ZZ (collision-enhanced NNN).

    Compares no DD, aligned DD, 2-color staggered DD (leaves the NNN pair
    unsuppressed: qubits 0 and 2 share a color), and the 3-color Walsh
    assignment.
    """
    device = synthetic_device(
        linear_chain(3),
        name="fig4c",
        seed=seed,
        collision_triples=[(0, 1, 2)],
    )
    # Pin the NNN rate for a controlled comparison.
    nnn = dict(device.nnn_zz)
    nnn[(0, 2)] = nnn_khz * KHZ
    device = replace(device, nnn_zz=nnn)

    schemes: Dict[str, Dict[int, tuple]] = {
        "none": {},
        "aligned": {0: (0.25, 0.75), 1: (0.25, 0.75), 2: (0.25, 0.75)},
        "staggered": {
            0: walsh_fractions(1),
            1: walsh_fractions(2),
            2: walsh_fractions(1),  # 2-coloring reuses color 1 on the NNN pair
        },
        "walsh": {
            0: walsh_fractions(1),
            1: walsh_fractions(2),
            2: walsh_fractions(3),
        },
    }

    def build(scheme, depth):
        assignment = schemes[scheme]
        circuit = _idle_ramsey_all(3, depth, tau)
        if assignment:
            dressed = apply_dd_by_rule(
                circuit,
                device,
                lambda _m, q: assignment.get(q),
                min_duration=tau / 2,
            )
        else:
            dressed = circuit
        return Task(
            dressed,
            bit_targets={"f": {0: 0, 1: 0, 2: 0}},
            seed=seed + depth,
            name=f"{scheme}/d{depth}",
        )

    swept = Sweep(
        {"scheme": list(schemes), "depth": list(depths)}, build, name="fig4c"
    ).run(device, options=SimOptions(shots=shots))
    return NNNResult(
        depths=list(depths),
        curves={name: swept.curve("f", scheme=name) for name in schemes},
        sweep=swept,
    )


def _idle_ramsey_all(num_qubits: int, depth: int, tau: float) -> Circuit:
    """All-qubit Ramsey: |+...+>, d idle intervals, return, check |0...0>."""
    circ = Circuit(num_qubits)
    for q in range(num_qubits):
        circ.h(q, new_moment=(q == 0))
    for _ in range(depth):
        for q in range(num_qubits):
            circ.delay(tau, q, new_moment=(q == 0))
        circ.append_moment([])
    for q in range(num_qubits):
        circ.h(q, new_moment=(q == 0))
    return circ


@dataclass
class Fig4Result:
    """Composite of the three Fig. 4 panels (for the CLI / JSON export)."""

    stark: StarkMeasurement
    parity: Dict[str, List[float]]
    nnn: NNNResult

    def rows(self) -> List[str]:
        signal = np.asarray(self.parity["signal"])
        lines = [
            f"[fig4a] stark shift: measured {self.stark.stark_shift / 1e-6:.1f} kHz, "
            f"calibrated {self.stark.calibrated_stark / 1e-6:.1f} kHz",
            f"[fig4b] parity beating: fringe range "
            f"[{signal.min():.2f}, {signal.max():.2f}]",
        ]
        for name, curve in self.nnn.curves.items():
            lines.append(
                f"[fig4c] {name:>10s}: " + " ".join(f"{v:.3f}" for v in curve)
            )
        return lines

    def to_json(self) -> Dict:
        return {
            "experiment": "fig4",
            "stark": {
                "driven_frequency": self.stark.driven_frequency,
                "always_on_reference": self.stark.always_on_reference,
                "calibrated_stark": self.stark.calibrated_stark,
                "stark_shift": self.stark.stark_shift,
            },
            "parity": {k: list(v) for k, v in self.parity.items()},
            "nnn": self.nnn.to_json(),
        }
