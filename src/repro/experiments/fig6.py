"""Fig. 6 reproduction: Floquet Ising boundary correlations.

``<X0 X5>`` versus Floquet step for the twirl-only baseline, CA-EC, and
CA-DD, against the ideal alternating +-1 signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from typing import Optional

from ..apps.ising import boundary_xx_label, ideal_boundary_xx, ising_circuit, ising_device
from ..runtime import Sweep, SweepResult, Task
from ..sim.executor import SimOptions

STRATEGIES = ("none", "ca_ec", "ca_dd")


@dataclass
class Fig6Result:
    steps: List[int]
    ideal: List[float]
    curves: Dict[str, List[float]] = field(default_factory=dict)
    sweep: Optional[SweepResult] = None

    def rows(self) -> List[str]:
        lines = [f"steps: {self.steps}", f"ideal: {self.ideal}"]
        for strategy, values in self.curves.items():
            lines.append(
                f"  {strategy:>8s}: " + " ".join(f"{v:+.3f}" for v in values)
            )
        return lines

    def to_json(self) -> Dict:
        return {
            "experiment": "fig6",
            "steps": self.steps,
            "ideal": self.ideal,
            "curves": self.curves,
            "sweep": self.sweep.to_json() if self.sweep else None,
        }


def run_fig6(
    num_qubits: int = 6,
    steps: Sequence[int] = (0, 1, 2, 3, 4, 5, 6),
    shots: int = 24,
    realizations: int = 6,
    seed: int = 3001,
    backend=None,
    workers: Optional[int] = None,
) -> Fig6Result:
    device = ising_device(num_qubits, seed=seed)
    observable = {"xx": boundary_xx_label(num_qubits)}
    sweep = Sweep(
        {"strategy": STRATEGIES, "step": list(steps)},
        lambda strategy, step: Task(
            ising_circuit(num_qubits, step),
            observables=observable,
            pipeline=strategy,
            realizations=realizations,
            seed=seed + step,
            name=f"{strategy}/d{step}",
        ),
        name="fig6",
    )
    swept = sweep.run(
        device, options=SimOptions(shots=shots), backend=backend, workers=workers
    )
    return Fig6Result(
        steps=list(steps),
        ideal=[ideal_boundary_xx(d) for d in steps],
        curves={s: swept.curve("xx", strategy=s) for s in STRATEGIES},
        sweep=swept,
    )
