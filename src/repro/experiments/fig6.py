"""Fig. 6 reproduction: Floquet Ising boundary correlations.

``<X0 X5>`` versus Floquet step for the twirl-only baseline, CA-EC, and
CA-DD, against the ideal alternating +-1 signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..apps.ising import boundary_xx_label, ideal_boundary_xx, ising_circuit, ising_device
from ..compiler.strategies import realization_factory
from ..sim.executor import SimOptions, average_over_realizations

STRATEGIES = ("none", "ca_ec", "ca_dd")


@dataclass
class Fig6Result:
    steps: List[int]
    ideal: List[float]
    curves: Dict[str, List[float]] = field(default_factory=dict)

    def rows(self) -> List[str]:
        lines = [f"steps: {self.steps}", f"ideal: {self.ideal}"]
        for strategy, values in self.curves.items():
            lines.append(
                f"  {strategy:>8s}: " + " ".join(f"{v:+.3f}" for v in values)
            )
        return lines


def run_fig6(
    num_qubits: int = 6,
    steps: Sequence[int] = (0, 1, 2, 3, 4, 5, 6),
    shots: int = 24,
    realizations: int = 6,
    seed: int = 3001,
) -> Fig6Result:
    device = ising_device(num_qubits, seed=seed)
    observable = {"xx": boundary_xx_label(num_qubits)}
    result = Fig6Result(
        steps=list(steps), ideal=[ideal_boundary_xx(d) for d in steps]
    )
    options = SimOptions(shots=shots)
    for strategy in STRATEGIES:
        values = []
        for depth in steps:
            circuit = ising_circuit(num_qubits, depth)
            factory = realization_factory(circuit, device, strategy)
            res = average_over_realizations(
                factory,
                device,
                observable,
                realizations=realizations,
                options=options,
                seed=seed + depth,
            )
            values.append(res.values["xx"])
        result.curves[strategy] = values
    return result
