"""Table I reproduction: the error taxonomy and what suppresses each term.

For every row of the paper's Table I we run a targeted micro-experiment and
report the residual error (1 - Ramsey fidelity) without suppression, with
the applicable EC treatment, and with the applicable DD treatment —
confirming the check/cross pattern:

====================  ===========================  =============  =========
Error                 Source                       EC             DD
====================  ===========================  =============  =========
Z (idle)              always-on coupling           phase shift    any
ZZ (idle)             always-on coupling           absorb         staggered
ZZ (active ctrl)      always-on coupling           commute/absorb  x
Stark Z               neighboring gate drive       phase shift    any
Slow Z                quasi-particles (parity)     x              any
NNN ZZ                frequency collisions         x              Walsh
====================  ===========================  =============  =========
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..benchmarking.ramsey import CASE_I, CASE_II, CASE_IV, ramsey_task
from ..device.calibration import Device, synthetic_device
from ..device.topology import linear_chain
from ..experiments.fig4 import NNNResult, run_nnn_walsh
from ..runtime import Sweep, SweepResult
from ..sim.executor import SimOptions
from ..utils.units import KHZ


@dataclass
class TableRow:
    error: str
    source: str
    ec_works: bool
    dd_works: bool
    residual_none: float
    residual_ec: Optional[float]
    residual_dd: Optional[float]


@dataclass
class Table1Result:
    rows: List[TableRow] = field(default_factory=list)
    sweep: Optional[SweepResult] = None
    nnn: Optional[NNNResult] = None

    def to_json(self) -> Dict:
        return {
            "experiment": "table1",
            "rows": [
                {
                    "error": row.error,
                    "source": row.source,
                    "ec_works": row.ec_works,
                    "dd_works": row.dd_works,
                    "residual_none": row.residual_none,
                    "residual_ec": row.residual_ec,
                    "residual_dd": row.residual_dd,
                }
                for row in self.rows
            ],
            "sweep": self.sweep.to_json() if self.sweep else None,
            "nnn": self.nnn.to_json() if self.nnn else None,
        }

    def formatted(self) -> List[str]:
        header = (
            f"{'error':<14s} {'source':<22s} {'bare':>7s} {'EC':>7s} {'DD':>7s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            ec = f"{row.residual_ec:.3f}" if row.residual_ec is not None else "  n/a"
            dd = f"{row.residual_dd:.3f}" if row.residual_dd is not None else "  n/a"
            lines.append(
                f"{row.error:<14s} {row.source:<22s} "
                f"{row.residual_none:7.3f} {ec:>7s} {dd:>7s}"
            )
        return lines


def _clean_device(num_qubits: int, seed: int, **qubit_overrides) -> Device:
    """Coherent-error-only device for targeted characterization."""
    device = synthetic_device(linear_chain(num_qubits), seed=seed)
    qubits = [
        replace(
            q,
            quasistatic_sigma=qubit_overrides.get("quasistatic_sigma", 0.0),
            parity_delta=qubit_overrides.get("parity_delta", 0.0),
            t1=float("inf"),
            t2=float("inf"),
            p1=0.0,
            readout_error=0.0,
        )
        for q in device.qubits
    ]
    pairs = {
        e: replace(p, p2=0.0) for e, p in device.pairs.items()
    }
    return replace(device, qubits=qubits, pairs=pairs)


def run_table1(depth: int = 8, shots: int = 64, seed: int = 8001) -> Table1Result:
    """Regenerate Table I's pattern from micro-experiments.

    Every Ramsey micro-experiment is one point of a single declarative
    :class:`~repro.runtime.Sweep` (each point carries its own device), so
    the whole table is one batched run plus the NNN Walsh sweep.
    """
    options = SimOptions(shots=shots, seed=seed)

    # Rows 1-2: idle pair (case I) carries both Z and ZZ; EC fixes both,
    # staggered DD fixes both, aligned DD would only fix Z.
    dev2 = _clean_device(2, seed)
    # Row 3: adjacent active controls (case IV): DD is not applicable.
    dev4 = _clean_device(4, seed + 1)
    # Row 4: Stark shift on a gate spectator (case II): both EC and DD work.
    dev3 = _clean_device(3, seed + 2)
    # Row 5: slow (parity) Z: random sign per shot -> EC cannot help, DD can.
    dev_parity = _clean_device(2, seed + 3, parity_delta=25.0 * KHZ)

    measurements = {
        "idle/none": (CASE_I, dev2, "none", False, 1),
        "idle/ca_ec": (CASE_I, dev2, "ca_ec", False, 1),
        "idle/staggered_dd": (CASE_I, dev2, "staggered_dd", False, 1),
        "active/none": (CASE_IV, dev4, "none", True, 10),
        "active/ca_ec": (CASE_IV, dev4, "ca_ec", True, 10),
        "stark/none": (CASE_II, dev3, "none", False, 1),
        "stark/ca_ec": (CASE_II, dev3, "ca_ec", False, 1),
        "stark/ca_dd": (CASE_II, dev3, "ca_dd", False, 1),
        "parity/none": (CASE_I, dev_parity, "none", False, 1),
        "parity/ca_ec": (CASE_I, dev_parity, "ca_ec", False, 1),
        "parity/staggered_dd": (CASE_I, dev_parity, "staggered_dd", False, 1),
    }

    def build(measurement):
        case, device, strategy, twirl, realizations = measurements[measurement]
        return ramsey_task(
            case, device, depth, strategy,
            twirl=twirl, realizations=realizations,
        )

    swept = Sweep(
        {"measurement": list(measurements)}, build, name="table1"
    ).run(options=options)
    residual = {name: 1.0 - swept[name].values["f"] for name in measurements}

    result = Table1Result(sweep=swept)
    result.rows.append(
        TableRow(
            "Z+ZZ (idle)", "always-on coupling", True, True,
            residual["idle/none"], residual["idle/ca_ec"],
            residual["idle/staggered_dd"],
        )
    )
    result.rows.append(
        TableRow(
            "ZZ (active)", "always-on coupling", True, False,
            residual["active/none"], residual["active/ca_ec"], None,
        )
    )
    result.rows.append(
        TableRow(
            "Stark Z", "neighboring gate", True, True,
            residual["stark/none"], residual["stark/ca_ec"],
            residual["stark/ca_dd"],
        )
    )
    result.rows.append(
        TableRow(
            "Slow Z", "quasi-particles", False, True,
            residual["parity/none"], residual["parity/ca_ec"],
            residual["parity/staggered_dd"],
        )
    )

    # Row 6: NNN ZZ needs the Walsh hierarchy; EC has no coupling to pulse.
    # The weak NNN rate needs a deeper window than the other rows to rise
    # above the stochastic floor.
    nnn = run_nnn_walsh(depths=(3 * depth,), seed=seed + 4, shots=shots)
    result.nnn = nnn
    bare = 1.0 - nnn.curves["none"][0]
    staggered = 1.0 - nnn.curves["staggered"][0]
    walsh = 1.0 - nnn.curves["walsh"][0]
    result.rows.append(
        TableRow("NNN ZZ", "freq. collisions", False, True, bare, None, walsh)
    )
    result.rows.append(
        TableRow("NNN ZZ(2col)", "freq. collisions", False, False, bare, None, staggered)
    )
    return result
