"""Table I reproduction: the error taxonomy and what suppresses each term.

For every row of the paper's Table I we run a targeted micro-experiment and
report the residual error (1 - Ramsey fidelity) without suppression, with
the applicable EC treatment, and with the applicable DD treatment —
confirming the check/cross pattern:

====================  ===========================  =============  =========
Error                 Source                       EC             DD
====================  ===========================  =============  =========
Z (idle)              always-on coupling           phase shift    any
ZZ (idle)             always-on coupling           absorb         staggered
ZZ (active ctrl)      always-on coupling           commute/absorb  x
Stark Z               neighboring gate drive       phase shift    any
Slow Z                quasi-particles (parity)     x              any
NNN ZZ                frequency collisions         x              Walsh
====================  ===========================  =============  =========
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..benchmarking.ramsey import CASE_I, CASE_II, CASE_IV, ramsey_fidelity
from ..device.calibration import Device, synthetic_device
from ..device.topology import linear_chain
from ..experiments.fig4 import run_nnn_walsh
from ..sim.executor import SimOptions
from ..utils.units import KHZ


@dataclass
class TableRow:
    error: str
    source: str
    ec_works: bool
    dd_works: bool
    residual_none: float
    residual_ec: Optional[float]
    residual_dd: Optional[float]


@dataclass
class Table1Result:
    rows: List[TableRow] = field(default_factory=list)

    def formatted(self) -> List[str]:
        header = (
            f"{'error':<14s} {'source':<22s} {'bare':>7s} {'EC':>7s} {'DD':>7s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            ec = f"{row.residual_ec:.3f}" if row.residual_ec is not None else "  n/a"
            dd = f"{row.residual_dd:.3f}" if row.residual_dd is not None else "  n/a"
            lines.append(
                f"{row.error:<14s} {row.source:<22s} "
                f"{row.residual_none:7.3f} {ec:>7s} {dd:>7s}"
            )
        return lines


def _clean_device(num_qubits: int, seed: int, **qubit_overrides) -> Device:
    """Coherent-error-only device for targeted characterization."""
    device = synthetic_device(linear_chain(num_qubits), seed=seed)
    qubits = [
        replace(
            q,
            quasistatic_sigma=qubit_overrides.get("quasistatic_sigma", 0.0),
            parity_delta=qubit_overrides.get("parity_delta", 0.0),
            t1=float("inf"),
            t2=float("inf"),
            p1=0.0,
            readout_error=0.0,
        )
        for q in device.qubits
    ]
    pairs = {
        e: replace(p, p2=0.0) for e, p in device.pairs.items()
    }
    return replace(device, qubits=qubits, pairs=pairs)


def run_table1(depth: int = 8, shots: int = 64, seed: int = 8001) -> Table1Result:
    """Regenerate Table I's pattern from micro-experiments."""
    options = SimOptions(shots=shots, seed=seed)
    result = Table1Result()

    # Rows 1-2: idle pair (case I) carries both Z and ZZ; EC fixes both,
    # staggered DD fixes both, aligned DD would only fix Z.
    dev2 = _clean_device(2, seed)
    bare = 1.0 - ramsey_fidelity(CASE_I, dev2, depth, "none", options=options)
    ec = 1.0 - ramsey_fidelity(CASE_I, dev2, depth, "ca_ec", options=options)
    dd = 1.0 - ramsey_fidelity(CASE_I, dev2, depth, "staggered_dd", options=options)
    result.rows.append(
        TableRow("Z+ZZ (idle)", "always-on coupling", True, True, bare, ec, dd)
    )

    # Row 3: adjacent active controls (case IV): DD is not applicable.
    dev4 = _clean_device(4, seed + 1)
    bare = 1.0 - ramsey_fidelity(
        CASE_IV, dev4, depth, "none", twirl=True, realizations=10, options=options
    )
    ec = 1.0 - ramsey_fidelity(
        CASE_IV, dev4, depth, "ca_ec", twirl=True, realizations=10, options=options
    )
    result.rows.append(
        TableRow("ZZ (active)", "always-on coupling", True, False, bare, ec, None)
    )

    # Row 4: Stark shift on a gate spectator (case II): both EC and DD work.
    dev3 = _clean_device(3, seed + 2)
    bare = 1.0 - ramsey_fidelity(CASE_II, dev3, depth, "none", options=options)
    ec = 1.0 - ramsey_fidelity(CASE_II, dev3, depth, "ca_ec", options=options)
    dd = 1.0 - ramsey_fidelity(CASE_II, dev3, depth, "ca_dd", options=options)
    result.rows.append(
        TableRow("Stark Z", "neighboring gate", True, True, bare, ec, dd)
    )

    # Row 5: slow (parity) Z: random sign per shot -> EC cannot help, DD can.
    dev_parity = _clean_device(2, seed + 3, parity_delta=25.0 * KHZ)
    bare = 1.0 - ramsey_fidelity(CASE_I, dev_parity, depth, "none", options=options)
    ec = 1.0 - ramsey_fidelity(CASE_I, dev_parity, depth, "ca_ec", options=options)
    dd = 1.0 - ramsey_fidelity(
        CASE_I, dev_parity, depth, "staggered_dd", options=options
    )
    result.rows.append(
        TableRow("Slow Z", "quasi-particles", False, True, bare, ec, dd)
    )

    # Row 6: NNN ZZ needs the Walsh hierarchy; EC has no coupling to pulse.
    # The weak NNN rate needs a deeper window than the other rows to rise
    # above the stochastic floor.
    nnn = run_nnn_walsh(depths=(3 * depth,), seed=seed + 4, shots=shots)
    bare = 1.0 - nnn.curves["none"][0]
    staggered = 1.0 - nnn.curves["staggered"][0]
    walsh = 1.0 - nnn.curves["walsh"][0]
    result.rows.append(
        TableRow("NNN ZZ", "freq. collisions", False, True, bare, None, walsh)
    )
    result.rows.append(
        TableRow("NNN ZZ(2col)", "freq. collisions", False, False, bare, None, staggered)
    )
    return result
