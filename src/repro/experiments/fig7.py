"""Fig. 7 reproduction: Heisenberg ring dynamics and mitigation overhead.

Panel (c): ``<Z2>`` versus Trotter step for ideal / twirl-only / uniform DD
/ CA-DD / CA-EC. Panel (d): the global-depolarizing mitigation overhead of
each strategy, and the reduction factors relative to no suppression and to
context-unaware DD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from typing import Optional

from ..apps.heisenberg import heisenberg_circuit, heisenberg_device, site_z_label
from ..benchmarking.mitigation import DepolarizingFit, fit_global_depolarizing
from ..runtime import Sweep, SweepResult, Task
from ..sim.executor import SimOptions

STRATEGIES = ("none", "dd", "ca_dd", "ca_ec")


@dataclass
class Fig7Result:
    steps: List[int]
    ideal: List[float]
    curves: Dict[str, List[float]] = field(default_factory=dict)
    fits: Dict[str, DepolarizingFit] = field(default_factory=dict)
    sweep: Optional[SweepResult] = None
    ideal_sweep: Optional[SweepResult] = None

    def overhead_at(self, strategy: str, depth: float) -> float:
        return self.fits[strategy].overhead(depth)

    def reduction_over(self, reference: str, strategy: str, depth: float) -> float:
        """Overhead reduction factor of ``strategy`` versus ``reference``."""
        return self.overhead_at(reference, depth) / self.overhead_at(strategy, depth)

    def rows(self) -> List[str]:
        lines = [f"steps: {self.steps}"]
        lines.append("ideal:   " + " ".join(f"{v:+.3f}" for v in self.ideal))
        for strategy, values in self.curves.items():
            lines.append(
                f"{strategy:>8s}: " + " ".join(f"{v:+.3f}" for v in values)
            )
        depth = self.steps[-1]
        for strategy in self.curves:
            if strategy == "none":
                continue
            lines.append(
                f"overhead reduction {strategy} vs none @d={depth}: "
                f"{self.reduction_over('none', strategy, depth):.2f}x"
            )
        return lines

    def to_json(self) -> Dict:
        return {
            "experiment": "fig7",
            "steps": self.steps,
            "ideal": self.ideal,
            "curves": self.curves,
            "sweep": self.sweep.to_json() if self.sweep else None,
            "ideal_sweep": self.ideal_sweep.to_json() if self.ideal_sweep else None,
        }


def run_fig7(
    num_qubits: int = 12,
    steps: Sequence[int] = (0, 1, 2, 3, 4, 5),
    site: int = 2,
    shots: int = 16,
    realizations: int = 5,
    seed: int = 4001,
    coupling: float = 1.2,
    backend=None,
    workers: Optional[int] = None,
) -> Fig7Result:
    device = heisenberg_device(num_qubits, seed=seed)
    observable = {"z": site_z_label(num_qubits, site)}
    ideal_options = SimOptions(
        shots=1,
        coherent=False,
        stochastic=False,
        dephasing=False,
        amplitude_damping=False,
        gate_errors=False,
        seed=0,
    )
    ideal_device = device.ideal()
    ideal_swept = Sweep(
        {"step": list(steps)},
        lambda step: Task(
            heisenberg_circuit(num_qubits, step, coupling=coupling),
            observables=observable,
            device=ideal_device,
        ),
        name="fig7/ideal",
    ).run(options=ideal_options, backend=backend, workers=workers)
    ideal = ideal_swept.curve("z")
    result = Fig7Result(
        steps=list(steps), ideal=ideal, ideal_sweep=ideal_swept
    )
    swept = Sweep(
        {"strategy": STRATEGIES, "step": list(steps)},
        lambda strategy, step: Task(
            heisenberg_circuit(num_qubits, step, coupling=coupling),
            observables=observable,
            pipeline=strategy,
            realizations=realizations,
            seed=seed + step,
            name=f"{strategy}/d{step}",
        ),
        name="fig7",
    ).run(device, options=SimOptions(shots=shots), backend=backend, workers=workers)
    result.sweep = swept
    for strategy in STRATEGIES:
        values = swept.curve("z", strategy=strategy)
        result.curves[strategy] = values
        result.fits[strategy] = fit_global_depolarizing(steps, values, ideal)
    return result
