"""Dynamic-circuit Bell-state preparation (paper Sec. V D / Fig. 9).

A three-qubit chain ``data0 - aux - data1`` prepares a Bell state between
the data qubits using a mid-circuit measurement and classical feedforward:

1. ``H`` on data0 and on aux; ``CX(aux, data1)`` makes an aux-data Bell pair;
2. ``CX(data0, aux)`` and a Z-basis measurement of aux performs the
   entanglement swap; outcome 1 requires a feedforward ``X`` on data1.

During the (4 us) measurement and the feedforward window the data qubits
idle next to the collapsed aux qubit, accumulating large coherent ``ZZ`` and
``Z`` phases — which is why the bare Bell fidelity collapses. CA-EC
compensates them; since the compensation angle depends on the *assumed*
idle duration, sweeping the compiler's feedforward-time estimate traces the
calibration curve of Fig. 9c, peaking at the true hardware value.

The fidelity readout disentangles the pair (``CX`` + ``H``) so that the Bell
fidelity is the probability of reading ``00`` on the data qubits.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..circuits.circuit import Circuit
from ..compiler.ca_ec import apply_ca_ec
from ..device.calibration import Device, NoiseProfile, synthetic_device
from ..device.topology import linear_chain
from ..utils.units import KHZ

DATA0, AUX, DATA1 = 0, 1, 2


def bell_dynamic_circuit() -> Circuit:
    """The measurement + feedforward Bell-preparation circuit (3 qubits)."""
    circ = Circuit(3, num_clbits=1)
    circ.h(DATA0)
    circ.h(AUX)
    circ.cx(AUX, DATA1, new_moment=True)
    circ.append_moment([])
    circ.cx(DATA0, AUX, new_moment=True)
    circ.append_moment([])
    circ.measure(AUX, 0, new_moment=True)
    circ.x(DATA1, condition=(0, 1), new_moment=True)
    # Fidelity readout: disentangle the data pair and check |00>.
    circ.append_moment([])
    circ.cx(DATA0, DATA1, new_moment=True)
    circ.h(DATA0, new_moment=True)
    return circ


def bell_target_bits() -> dict:
    """Qubit -> bit assignment whose probability is the Bell fidelity."""
    return {DATA0: 0, DATA1: 0}


def dynamic_device(
    seed: int = 43,
    measure_duration: float = 4000.0,
    feedforward_duration: float = 1150.0,
) -> Device:
    """A 3-qubit chain device with the paper's timing (4 us + ~1.15 us).

    The readout-window coherent errors are drawn hot (strong ZZ and
    readout-induced Stark shifts), reflecting the paper's regime where the
    bare Bell fidelity collapses to ~10% over the 5 us idle window.
    """
    profile = NoiseProfile(
        zz_range=(70.0 * KHZ, 100.0 * KHZ),
        measure_stark_range=(55.0 * KHZ, 75.0 * KHZ),
    )
    device = synthetic_device(
        linear_chain(3), name="dynamic_chain_3", seed=seed, profile=profile
    )
    durations = replace(
        device.durations,
        measure=measure_duration,
        feedforward=feedforward_duration,
    )
    return replace(device, durations=durations)


def compensated_circuit(
    device: Device, feedforward_estimate: Optional[float] = None
) -> Circuit:
    """CA-EC-compiled Bell circuit using an assumed feedforward time.

    The measurement duration is known exactly (as in the paper); only the
    feedforward time is estimated. ``None`` uses the device's true value.
    """
    planner = device.durations
    if feedforward_estimate is not None:
        planner = replace(planner, feedforward=feedforward_estimate)
    compiled, _report = apply_ca_ec(bell_dynamic_circuit(), device, durations=planner)
    return compiled


def conditionally_compensated_circuit(
    device: Device, feedforward_estimate: Optional[float] = None
) -> Circuit:
    """The paper's Fig. 9b construction: corrections on the conditional.

    Instead of compensating with gates around the measurement window, the
    corrections are appended *after* the feedforward: the data qubits get an
    unconditional virtual ``Rz`` plus an extra ``Rz`` applied only when the
    measurement returned 1 — "we append an additional single-qubit Z
    correction to the conditional" (paper Sec. V D). The collapsed aux qubit
    turns each data-aux ``ZZ`` phase into an outcome-conditioned local phase,
    so purely classical corrections suffice; no two-qubit gate ever touches
    the aux qubit during readout.

    Only the dominant measurement + feedforward window is compensated (the
    short gate layers before it are not), so this variant trails the full
    CA-EC compilation by the residual gate-layer error.
    """

    from ..circuits import gates as g
    from ..circuits.circuit import Instruction, Moment
    from ..circuits.schedule import schedule
    from ..sim.coherent import accumulate_coherent
    from ..sim.timeline import build_timeline

    planner = device.durations
    if feedforward_estimate is not None:
        planner = replace(planner, feedforward=feedforward_estimate)

    circ = bell_dynamic_circuit()
    scheduled = schedule(circ, planner)
    measure_index = next(
        i for i, m in enumerate(circ.moments) if m.has_measurement
    )
    ff_index = next(
        i
        for i, m in enumerate(circ.moments)
        if any(inst.condition is not None for inst in m)
    )
    window = frozenset((measure_index, ff_index))

    # Accumulated window phases per data qubit: local z and the data-aux zz.
    z = {DATA0: 0.0, DATA1: 0.0}
    zz = {DATA0: 0.0, DATA1: 0.0}
    for index in (measure_index, ff_index):
        sm = scheduled[index]
        timeline = build_timeline(sm.moment, 3, sm.duration)
        acc = accumulate_coherent(timeline, device)
        for data in (DATA0, DATA1):
            z[data] += acc.z.get(data, 0.0)
            edge = (min(data, AUX), max(data, AUX))
            zz[data] += acc.zz.get(edge, 0.0)

    # Branch phases (before the conditional X): outcome 0 -> z + zz,
    # outcome 1 -> z - zz. The correction sits after the conditional X, so
    # the data1 branch-1 angle crosses an X (sign flip).
    c0 = {d: -(z[d] + zz[d]) for d in (DATA0, DATA1)}
    c1 = {
        DATA0: -(z[DATA0] - zz[DATA0]),
        DATA1: +(z[DATA1] - zz[DATA1]),
    }

    unconditional = Moment(
        [
            Instruction(g.rz(c0[d]), (d,), tag="compensation")
            for d in (DATA0, DATA1)
            if abs(c0[d]) > 1e-12
        ]
    )
    conditional = Moment(
        [
            Instruction(
                g.rz(c1[d] - c0[d]), (d,), condition=(0, 1), tag="compensation"
            )
            for d in (DATA0, DATA1)
            if abs(c1[d] - c0[d]) > 1e-12
        ]
    )
    circ.moments.insert(ff_index + 1, conditional)
    circ.moments.insert(ff_index + 2, unconditional)
    # Generic CA-EC handles every layer *outside* the measurement window
    # (the gate layers' own H11 Z terms etc.); the window indices are
    # skipped because the branch corrections above already cancel them.
    # Note: insertion shifted nothing before ff_index, so the window
    # indices are still valid on the edited circuit.
    from ..compiler.ca_ec import apply_ca_ec as _apply_ca_ec

    compiled, _report = _apply_ca_ec(
        circ, device, durations=planner, skip_moments=window
    )
    return compiled
