"""Trotterized Heisenberg ring (paper Sec. V B / Fig. 7).

First-order Trotter dynamics of the isotropic Heisenberg model (eq. 7) on a
12-spin ring with periodic boundary conditions. On a heavy-hex embedding a
ring needs three layers of two-qubit unitaries per time step (edge
3-coloring); each layer leaves a third of the ring idle — exactly the
idle-pair context whose ``ZZ`` error CA-EC absorbs into the neighboring
Heisenberg interaction (the ``gamma`` angle of the canonical gate).

The per-step interaction is ``Ucan(a, a, a)`` with ``a = -J dt / 2`` on each
edge. Initial state: single spin flips at two antipodal sites, giving a
``<Z_2>`` signal with clear oscillations and spreading (the features the
paper recovers at d = 4).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.weyl import heisenberg_params
from ..device.calibration import Device, NoiseProfile, synthetic_device
from ..device.topology import ring
from ..utils.units import KHZ


def ring_edge_layers(num_qubits: int) -> List[List[Tuple[int, int]]]:
    """3-coloring of a ring's edges into gate layers (paper Fig. 7a).

    Edges ``(i, i+1 mod n)`` are assigned layer ``i mod 3``; for ``n``
    divisible by 3 this is a proper 3-coloring with every layer a matching.
    """
    if num_qubits % 3:
        raise ValueError("ring size must be divisible by 3 for 3 layers")
    layers: List[List[Tuple[int, int]]] = [[], [], []]
    for i in range(num_qubits):
        layers[i % 3].append((i, (i + 1) % num_qubits))
    return layers


def heisenberg_circuit(
    num_qubits: int,
    steps: int,
    coupling: float = 1.2,
    dt: float = 1.0,
    excited: Optional[Sequence[int]] = None,
) -> Circuit:
    """Stratified Trotter circuit for the Heisenberg ring.

    ``coupling`` is the isotropic ``J`` (the canonical angles per step are
    ``J * dt / 2`` on every axis, following eq. 5's convention). ``excited``
    lists the sites flipped to ``|1>`` initially.
    """
    if excited is None:
        excited = (0, num_qubits // 2)  # antipodal spin flips
    alpha, beta, gamma = heisenberg_params(coupling, coupling, coupling, dt)
    circ = Circuit(num_qubits)
    first = True
    for q in excited:
        circ.x(q, new_moment=first)
        first = False
    if first:
        circ.append_moment([])
    circ.append_moment([])
    for _ in range(steps):
        for layer in ring_edge_layers(num_qubits):
            for a, b in layer:
                circ.can(alpha, beta, gamma, a, b, new_moment=(a, b) == layer[0])
            circ.append_moment([])
    return circ


def site_z_label(num_qubits: int, site: int) -> str:
    """Pauli label of ``Z_site``."""
    label = ["I"] * num_qubits
    label[num_qubits - 1 - site] = "Z"
    return "".join(label)


def heisenberg_device(num_qubits: int = 12, seed: int = 31) -> Device:
    """A ring-topology device for the Heisenberg benchmark.

    Coherent-error dominated (hot always-on ZZ and slow Z noise), matching
    the paper's regime where the un-suppressed signal loses its features
    while suppression recovers them (Fig. 7c).
    """
    profile = NoiseProfile(
        zz_range=(80.0 * KHZ, 140.0 * KHZ),
        quasistatic_sigma_range=(8.0 * KHZ, 15.0 * KHZ),
        p2_range=(2e-3, 5e-3),
    )
    return synthetic_device(
        ring(num_qubits), name=f"heisenberg_ring_{num_qubits}", seed=seed,
        profile=profile,
    )


def equivalent_cnot_count(num_qubits: int, steps: int) -> int:
    """CNOT count of the 3-CNOT synthesis (paper: 180 CNOTs at n=12, d=5)."""
    return 3 * num_qubits * steps


def equivalent_cnot_depth(steps: int) -> int:
    """CNOT depth of the synthesis (paper: 45 at d=5)."""
    return 9 * steps
