"""Floquet Ising chain at the Clifford point (paper Sec. V A / Fig. 6).

Each Floquet step is a layer of ECR on even-odd pairs, a layer of ECR on
odd-even pairs (during which the boundary qubits idle — the context that
produces the boundary Z errors highlighted in Fig. 6b), and a layer of
single-qubit flips. Boundary qubits start in ``|+>`` and the boundary
correlation ``<X0 X_{n-1}>`` ideally alternates between +1 and -1 every
step.

Frame note: with this library's ECR convention, boundary X operators are
conserved through the step; the single-qubit layer uses ``Y`` on the first
boundary (``Y = iXZ``, i.e. the same X flip in a Z-shifted virtual frame) so
that the ideal correlator alternates sign exactly as the paper reports.
"""

from __future__ import annotations


from ..circuits.circuit import Circuit
from ..device.calibration import Device
from ..device.topology import linear_chain
from ..device.calibration import synthetic_device


def ising_circuit(num_qubits: int, steps: int) -> Circuit:
    """The Floquet Ising benchmark circuit (stratified form).

    ``num_qubits`` must be even so the even-odd layer is a perfect matching;
    boundary qubits are controls of their ECR pairs, which keeps their X
    operators local.
    """
    if num_qubits < 4 or num_qubits % 2:
        raise ValueError("need an even number of qubits >= 4")
    circ = Circuit(num_qubits)
    last = num_qubits - 1
    circ.h(0)
    circ.h(last)
    for _ in range(steps):
        # Even-odd ECR layer; boundary qubits oriented as controls.
        circ.ecr(0, 1, new_moment=True)
        for a in range(2, num_qubits - 2, 2):
            circ.ecr(a, a + 1)
        circ.ecr(last, last - 1)
        circ.append_moment([])
        # Odd-even layer: boundary qubits idle -> coherent Z at the boundary.
        for a in range(1, num_qubits - 1, 2):
            circ.ecr(a, a + 1, new_moment=(a == 1))
        circ.append_moment([])
        # Single-qubit flip layer (Y-frame on the first boundary).
        circ.y(0, new_moment=True)
        for q in range(1, num_qubits):
            circ.x(q)
        circ.append_moment([])
    return circ


def boundary_xx_label(num_qubits: int) -> str:
    """Pauli label of ``X_0 X_{n-1}`` in string convention."""
    label = ["I"] * num_qubits
    label[0] = "X"  # leftmost char = highest qubit = the far boundary
    label[-1] = "X"  # rightmost char = qubit 0
    return "".join(label)


def ideal_boundary_xx(step: int) -> float:
    """The ideal correlator alternates: ``(-1)**step``."""
    return float((-1) ** step)


def ising_device(num_qubits: int = 6, seed: int = 21) -> Device:
    """A linear-chain device sized for the Ising benchmark."""
    return synthetic_device(
        linear_chain(num_qubits), name=f"ising_chain_{num_qubits}", seed=seed
    )
