"""Application circuits: Ising, Heisenberg, dynamic circuits, combined Floquet."""

from .dynamic import (
    AUX,
    DATA0,
    DATA1,
    bell_dynamic_circuit,
    bell_target_bits,
    compensated_circuit,
    conditionally_compensated_circuit,
    dynamic_device,
)
from .floquet6 import PROBE_PAIR, floquet6_circuit, floquet6_device, probe_target_bits
from .heisenberg import (
    equivalent_cnot_count,
    equivalent_cnot_depth,
    heisenberg_circuit,
    heisenberg_device,
    ring_edge_layers,
    site_z_label,
)
from .ising import boundary_xx_label, ideal_boundary_xx, ising_circuit, ising_device

__all__ = [
    "AUX",
    "DATA0",
    "DATA1",
    "bell_dynamic_circuit",
    "bell_target_bits",
    "compensated_circuit",
    "conditionally_compensated_circuit",
    "dynamic_device",
    "PROBE_PAIR",
    "floquet6_circuit",
    "floquet6_device",
    "probe_target_bits",
    "equivalent_cnot_count",
    "equivalent_cnot_depth",
    "heisenberg_circuit",
    "heisenberg_device",
    "ring_edge_layers",
    "site_z_label",
    "boundary_xx_label",
    "ideal_boundary_xx",
    "ising_circuit",
    "ising_device",
]
