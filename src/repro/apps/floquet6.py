"""Six-qubit Floquet benchmark for the combined strategy (paper Fig. 10).

A chain of six qubits runs a self-inverse Floquet sequence, so the ideal
circuit is the identity and ``P00`` on the probe pair (qubits 1 and 2)
should stay at 1 for every depth. Each step exposes the probes to *both*
error contexts:

* **A-blocks** — ``ECR(1->0)`` with ``ECR(2->3)``: the probe qubits are
  adjacent ECR *controls*, whose mutual ZZ survives the gate echoes and is
  invisible to DD (the paper's case IV) — only CA-EC compensates it;
* **B-blocks** — ``ECR(4->5)`` alone: the probes idle as an adjacent pair,
  accumulating idle ZZ *and* slow quasi-static Z noise — CA-DD territory
  (compensation cannot touch the unknown per-shot detuning).

Each block appears twice in a row (ECR is self-inverse), keeping the logic
trivial. The combined ``ca_ec+dd`` strategy addresses both contexts and
outperforms either constituent, as in the paper's Fig. 10b.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..circuits.circuit import Circuit
from ..device.calibration import Device, NoiseProfile, synthetic_device
from ..device.topology import linear_chain
from ..utils.units import KHZ

PROBE_PAIR: Tuple[int, int] = (1, 2)


def floquet6_circuit(steps: int) -> Circuit:
    """``steps`` repetitions of the AABB self-cancelling Floquet step."""
    circ = Circuit(6)
    for q in range(6):
        circ.h(q, new_moment=(q == 0))
    for _ in range(steps):
        for _half in range(2):
            circ.ecr(1, 0, new_moment=True)
            circ.ecr(2, 3)
            circ.append_moment([])
        for _half in range(2):
            circ.ecr(4, 5, new_moment=True)
            circ.append_moment([])
    for q in range(6):
        circ.h(q, new_moment=(q == 0))
    return circ


def probe_target_bits() -> Dict[int, int]:
    """The ``P00`` target on the probe pair."""
    return {PROBE_PAIR[0]: 0, PROBE_PAIR[1]: 0}


def floquet6_device(seed: int = 51) -> Device:
    """A 6-qubit chain device (stands in for ibm_penguino1).

    Drawn with pronounced slow Z noise (quasi-static detuning and charge
    parity), so dynamical decoupling has a visible role next to error
    compensation — the regime the combined-strategy experiment probes.
    """
    profile = NoiseProfile(
        quasistatic_sigma_range=(10.0 * KHZ, 18.0 * KHZ),
        parity_delta_range=(3.0 * KHZ, 8.0 * KHZ),
    )
    return synthetic_device(
        linear_chain(6), name="floquet6_chain", seed=seed, profile=profile
    )
