"""Device models: topology, synthetic calibration, crosstalk graphs."""

from .calibration import (
    Device,
    NoiseProfile,
    PairParams,
    QubitParams,
    fake_brisbane,
    fake_device_for,
    fake_nazca,
    fake_penguino,
    fake_sherbrooke,
    synthetic_device,
)
from .crosstalk import build_crosstalk_graph, max_crosstalk_degree
from .topology import Topology, eagle, heavy_hex, linear_chain, ring

__all__ = [
    "Device",
    "NoiseProfile",
    "PairParams",
    "QubitParams",
    "fake_brisbane",
    "fake_device_for",
    "fake_nazca",
    "fake_penguino",
    "fake_sherbrooke",
    "synthetic_device",
    "build_crosstalk_graph",
    "max_crosstalk_degree",
    "Topology",
    "eagle",
    "heavy_hex",
    "linear_chain",
    "ring",
]
