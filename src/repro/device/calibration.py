"""Synthetic device calibrations.

The paper infers the magnitude of its coherent errors "from the reported
backend information of IBM Quantum systems without the need for additional
calibration" (Sec. II D). We have no hardware, so :func:`synthetic_device`
draws per-qubit and per-pair parameters from the magnitudes the paper
reports: always-on ZZ of tens of kHz, AC Stark shifts around 20 kHz,
next-nearest-neighbor ZZ of O(0.1 kHz) enhanced to O(10 kHz) at frequency
collisions, and slow charge-parity Z fluctuations of a few kHz.

All frequencies are stored in GHz (1/ns) and all times in ns; use
``repro.utils.units`` helpers when quoting kHz/us values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


from ..circuits.schedule import Durations
from ..utils.rng import SeedLike, as_generator
from ..utils.units import KHZ, US
from .topology import Topology, eagle

Edge = Tuple[int, int]


def _key(a: int, b: int) -> Edge:
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class QubitParams:
    """Per-qubit calibration.

    Attributes:
        t1: relaxation time (ns).
        t2: dephasing time (ns); sets the white dephasing rate.
        quasistatic_sigma: std-dev (GHz) of the shot-to-shot quasi-static
            detuning — the temporally correlated noise that DD suppresses but
            error compensation cannot (paper Fig. 3c discussion).
        parity_delta: charge-parity splitting (GHz); its sign flips randomly
            shot to shot (paper eq. 6, Fig. 4b).
        readout_error: mean assignment-error probability; the expectation
            paths treat it symmetrically, while the sampled-counts readout
            path (``repro.sim.readout``) splits it by ``readout_asymmetry``.
        readout_asymmetry: relative excess of the ``1 -> 0`` error over the
            ``0 -> 1`` error (excited-state relaxation during readout).
        p1: depolarizing probability per physical single-qubit gate.
        measure_stark: Z rate (GHz) induced on this qubit's neighbors while
            it is being read out — the readout drive's Stark shift, the
            dominant coherent error during the long measurement windows of
            dynamic circuits (paper Sec. V D).
    """

    t1: float = 200.0 * US
    t2: float = 150.0 * US
    quasistatic_sigma: float = 4.0 * KHZ
    parity_delta: float = 1.0 * KHZ
    readout_error: float = 0.015
    readout_asymmetry: float = 0.3
    p1: float = 2.5e-4
    measure_stark: float = 40.0 * KHZ


@dataclass(frozen=True)
class PairParams:
    """Per-coupled-pair calibration.

    Attributes:
        zz_rate: always-on ZZ coupling ``nu`` (GHz) of paper eq. (1).
        stark_on_first / stark_on_second: Z shift (GHz) induced on one qubit
            while a gate drives the other (paper Fig. 4a).
        p2: depolarizing probability per two-qubit gate on this pair.
    """

    zz_rate: float = 60.0 * KHZ
    stark_on_first: float = 20.0 * KHZ
    stark_on_second: float = 20.0 * KHZ
    p2: float = 7e-3


@dataclass
class Device:
    """A quantum device model: topology + calibration + timing.

    ``nnn_zz`` maps next-nearest-neighbor pairs (as sorted tuples) to their
    ZZ rates; only collision-enhanced triples matter in practice, but every
    NNN pair may carry a small background rate.
    """

    name: str
    topology: Topology
    qubits: List[QubitParams]
    pairs: Dict[Edge, PairParams]
    nnn_zz: Dict[Edge, float] = field(default_factory=dict)
    durations: Durations = field(default_factory=Durations)

    @property
    def num_qubits(self) -> int:
        return self.topology.num_qubits

    def qubit(self, q: int) -> QubitParams:
        return self.qubits[q]

    def pair(self, a: int, b: int) -> PairParams:
        return self.pairs[_key(a, b)]

    def pair_error(self, a: int, b: int) -> float:
        """Two-qubit depolarizing probability for a gate on ``(a, b)``.

        Pairs without direct coupling (e.g. a logically routed gate in a
        readout stage) fall back to the device's median ``p2``.
        """
        key = _key(a, b)
        if key in self.pairs:
            return self.pairs[key].p2
        if not self.pairs:
            return 0.0
        rates = sorted(p.p2 for p in self.pairs.values())
        return rates[len(rates) // 2]

    def zz_rate(self, a: int, b: int) -> float:
        """Always-on ZZ rate between ``a`` and ``b`` (coupled or NNN)."""
        key = _key(a, b)
        if key in self.pairs:
            return self.pairs[key].zz_rate
        return self.nnn_zz.get(key, 0.0)

    def stark_shift(self, driven: int, spectator: int) -> float:
        """Stark Z rate on ``spectator`` while ``driven`` is being driven."""
        key = _key(driven, spectator)
        if key not in self.pairs:
            return 0.0
        params = self.pairs[key]
        return params.stark_on_first if spectator == key[0] else params.stark_on_second

    def crosstalk_edges(self, threshold: float = 0.5 * KHZ) -> List[Edge]:
        """Pairs whose ZZ rate exceeds ``threshold`` (coupling + NNN)."""
        out = [e for e, p in self.pairs.items() if p.zz_rate >= threshold]
        out.extend(e for e, rate in self.nnn_zz.items() if rate >= threshold)
        return sorted(set(out))

    def subdevice(self, qubit_indices: Sequence[int], name: Optional[str] = None) -> "Device":
        """Restrict to ``qubit_indices`` (relabeled ``0..k-1``)."""
        sub_topo, mapping = self.topology.subtopology(qubit_indices)
        qubits = [self.qubits[q] for q in qubit_indices]
        pairs = {}
        for (a, b), params in self.pairs.items():
            if a in mapping and b in mapping:
                pairs[_key(mapping[a], mapping[b])] = params
        nnn = {}
        for (a, b), rate in self.nnn_zz.items():
            if a in mapping and b in mapping:
                nnn[_key(mapping[a], mapping[b])] = rate
        return Device(
            name=name or f"{self.name}[{len(qubit_indices)}q]",
            topology=sub_topo,
            qubits=qubits,
            pairs=pairs,
            nnn_zz=nnn,
            durations=self.durations,
        )

    def with_pair_overrides(self, overrides: Dict[Edge, PairParams]) -> "Device":
        """Copy of the device with some pair calibrations replaced."""
        pairs = dict(self.pairs)
        for edge, params in overrides.items():
            pairs[_key(*edge)] = params
        return replace(self, pairs=pairs)

    def ideal(self) -> "Device":
        """Noise-free copy (all rates and error probabilities zeroed)."""
        quiet_q = [
            replace(
                q,
                quasistatic_sigma=0.0,
                parity_delta=0.0,
                readout_error=0.0,
                p1=0.0,
                t1=float("inf"),
                t2=float("inf"),
                measure_stark=0.0,
            )
            for q in self.qubits
        ]
        quiet_p = {
            e: replace(p, zz_rate=0.0, stark_on_first=0.0, stark_on_second=0.0, p2=0.0)
            for e, p in self.pairs.items()
        }
        return replace(self, qubits=quiet_q, pairs=quiet_p, nnn_zz={})


@dataclass(frozen=True)
class NoiseProfile:
    """Parameter ranges for synthetic calibration sampling (GHz / ns)."""

    zz_range: Tuple[float, float] = (40.0 * KHZ, 90.0 * KHZ)
    stark_range: Tuple[float, float] = (10.0 * KHZ, 30.0 * KHZ)
    nnn_background_range: Tuple[float, float] = (0.05 * KHZ, 0.2 * KHZ)
    nnn_collision_range: Tuple[float, float] = (8.0 * KHZ, 20.0 * KHZ)
    quasistatic_sigma_range: Tuple[float, float] = (2.0 * KHZ, 6.0 * KHZ)
    parity_delta_range: Tuple[float, float] = (0.5 * KHZ, 3.0 * KHZ)
    t1_range: Tuple[float, float] = (150.0 * US, 350.0 * US)
    t2_range: Tuple[float, float] = (80.0 * US, 250.0 * US)
    p1_range: Tuple[float, float] = (1.5e-4, 4e-4)
    p2_range: Tuple[float, float] = (4e-3, 1.1e-2)
    readout_range: Tuple[float, float] = (0.008, 0.025)
    measure_stark_range: Tuple[float, float] = (25.0 * KHZ, 60.0 * KHZ)


def synthetic_device(
    topology: Topology,
    name: str = "synthetic",
    seed: SeedLike = 0,
    profile: Optional[NoiseProfile] = None,
    collision_triples: Iterable[Tuple[int, int, int]] = (),
    nnn_background: bool = False,
) -> Device:
    """Sample a full device calibration for ``topology``.

    ``collision_triples`` are ``(a, middle, b)`` next-nearest-neighbor
    triples whose NNN ZZ is enhanced into the O(10 kHz) regime, emulating
    type-VI frequency collisions (paper Sec. III C / Fig. 4c). With
    ``nnn_background=True`` every NNN pair additionally gets a small
    background rate.
    """
    rng = as_generator(seed)
    profile = profile or NoiseProfile()

    def sample(rng_range: Tuple[float, float]) -> float:
        lo, hi = rng_range
        return float(rng.uniform(lo, hi))

    qubits = [
        QubitParams(
            t1=sample(profile.t1_range),
            t2=sample(profile.t2_range),
            quasistatic_sigma=sample(profile.quasistatic_sigma_range),
            parity_delta=sample(profile.parity_delta_range),
            readout_error=sample(profile.readout_range),
            p1=sample(profile.p1_range),
            measure_stark=sample(profile.measure_stark_range),
        )
        for _ in range(topology.num_qubits)
    ]
    pairs = {
        _key(a, b): PairParams(
            zz_rate=sample(profile.zz_range),
            stark_on_first=sample(profile.stark_range),
            stark_on_second=sample(profile.stark_range),
            p2=sample(profile.p2_range),
        )
        for a, b in topology.edges
    }
    nnn: Dict[Edge, float] = {}
    if nnn_background:
        for a, _mid, b in topology.next_nearest_pairs():
            nnn[_key(a, b)] = sample(profile.nnn_background_range)
    for a, _mid, b in collision_triples:
        nnn[_key(a, b)] = sample(profile.nnn_collision_range)
    return Device(name=name, topology=topology, qubits=qubits, pairs=pairs, nnn_zz=nnn)


# ---------------------------------------------------------------------------
# Fake backends named after the paper's systems
# ---------------------------------------------------------------------------


def fake_nazca() -> Device:
    """127-qubit Eagle-style device (experiments of Figs. 3b-e, 6, 7, 8, 9)."""
    return synthetic_device(eagle(), name="fake_nazca", seed=1001)


def fake_brisbane() -> Device:
    """127-qubit Eagle-style device (Fig. 3f)."""
    return synthetic_device(eagle(), name="fake_brisbane", seed=1002)


def fake_sherbrooke() -> Device:
    """127-qubit device with a collision-enhanced NNN triple (Fig. 4c)."""
    topo = eagle()
    # Pick a chain i - j - k in the first row as the collision triple.
    return synthetic_device(
        topo, name="fake_sherbrooke", seed=1003, collision_triples=[(4, 5, 6)]
    )


def fake_penguino() -> Device:
    """Device for the combined-strategy experiment (Fig. 10).

    The real ibm_penguino1 parameters are not public; this reuses the Eagle
    layout with an independent seed.
    """
    return synthetic_device(eagle(), name="fake_penguino", seed=1004)


def fake_device_for(topology: Topology, seed: int = 7, **kwargs) -> Device:
    """Convenience wrapper for tests and examples."""
    return synthetic_device(topology, name=f"fake_{seed}", seed=seed, **kwargs)
