"""Qubit connectivity topologies.

Provides the heavy-hex lattice used by IBM Eagle-class processors (the
devices in the paper: ibm_nazca, ibm_brisbane, ibm_sherbrooke) plus simple
chains and rings for the smaller experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import networkx as nx


class Topology:
    """An undirected qubit-coupling graph with contiguous integer labels."""

    def __init__(self, num_qubits: int, edges: Iterable[Tuple[int, int]]):
        self.num_qubits = int(num_qubits)
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.num_qubits))
        for a, b in edges:
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise ValueError(f"edge ({a},{b}) out of range")
            if a == b:
                raise ValueError(f"self-loop on qubit {a}")
            self.graph.add_edge(*sorted((a, b)))

    @property
    def edges(self) -> List[Tuple[int, int]]:
        return sorted(tuple(sorted(e)) for e in self.graph.edges)

    def neighbors(self, qubit: int) -> List[int]:
        return sorted(self.graph.neighbors(qubit))

    def has_edge(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def degree(self, qubit: int) -> int:
        return self.graph.degree(qubit)

    def next_nearest_pairs(self) -> List[Tuple[int, int, int]]:
        """All ``(a, middle, b)`` triples with a-middle and middle-b edges."""
        triples = []
        for middle in range(self.num_qubits):
            nbrs = self.neighbors(middle)
            for i, a in enumerate(nbrs):
                for b in nbrs[i + 1:]:
                    triples.append((a, middle, b))
        return triples

    def subtopology(self, qubits: Sequence[int]) -> Tuple["Topology", Dict[int, int]]:
        """Induced subgraph on ``qubits``, relabeled to ``0..k-1``.

        Returns the new topology and the old->new label mapping.
        """
        mapping = {q: i for i, q in enumerate(qubits)}
        edges = [
            (mapping[a], mapping[b])
            for a, b in self.edges
            if a in mapping and b in mapping
        ]
        return Topology(len(qubits), edges), mapping

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology({self.num_qubits} qubits, {len(self.edges)} edges)"


def linear_chain(num_qubits: int) -> Topology:
    """A 1-D chain ``0 - 1 - ... - (n-1)``."""
    return Topology(num_qubits, [(i, i + 1) for i in range(num_qubits - 1)])


def ring(num_qubits: int) -> Topology:
    """A cycle of ``num_qubits`` qubits (paper Fig. 7a uses a 12-ring)."""
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return Topology(num_qubits, edges)


def heavy_hex(rows: int = 7, row_length: int = 15) -> Topology:
    """An Eagle-style heavy-hex lattice.

    ``rows`` horizontal chains of ``row_length`` qubits are connected by
    bridge qubits every four columns, with the bridge columns offset by two
    between successive row pairs — the same staggering as IBM's 127-qubit
    Eagle devices (rows=7, row_length=15 gives 127 qubits).
    """
    if rows < 1 or row_length < 1:
        raise ValueError("rows and row_length must be positive")
    edges: List[Tuple[int, int]] = []
    row_start: List[int] = []
    counter = 0
    for r in range(rows):
        row_start.append(counter)
        for c in range(row_length - 1):
            edges.append((counter + c, counter + c + 1))
        counter += row_length
    for r in range(rows - 1):
        offset = 0 if r % 2 == 0 else 2
        columns = range(offset, row_length, 4)
        for c in columns:
            bridge = counter
            counter += 1
            edges.append((row_start[r] + c, bridge))
            edges.append((bridge, row_start[r + 1] + c))
    return Topology(counter, edges)


def eagle() -> Topology:
    """The 127-qubit heavy-hex layout (7 rows of 15 plus bridges)."""
    return heavy_hex(rows=7, row_length=15)
