"""Crosstalk-graph construction (Algorithm 1, line 2).

The crosstalk graph has an edge wherever two qubits share a non-negligible
ZZ interaction: every coupled pair, plus next-nearest-neighbor pairs whose
rate is collision-enhanced (paper Sec. III C). CA-DD colors idle qubits so
that no two crosstalk-graph neighbors share a Walsh sequence.
"""

from __future__ import annotations


import networkx as nx

from ..utils.units import KHZ
from .calibration import Device

DEFAULT_THRESHOLD = 0.5 * KHZ


def build_crosstalk_graph(
    device: Device, threshold: float = DEFAULT_THRESHOLD
) -> nx.Graph:
    """Graph over qubits with ``rate`` edge attributes (GHz).

    Includes coupling-graph edges with ZZ above ``threshold`` and NNN pairs
    whose characterized rate exceeds it.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(device.num_qubits))
    for (a, b), params in device.pairs.items():
        if params.zz_rate >= threshold:
            graph.add_edge(a, b, rate=params.zz_rate, kind="coupling")
    for (a, b), rate in device.nnn_zz.items():
        if rate >= threshold:
            graph.add_edge(a, b, rate=rate, kind="nnn")
    return graph


def max_crosstalk_degree(graph: nx.Graph) -> int:
    """Largest degree in the crosstalk graph (lower bound on colors - 1)."""
    if graph.number_of_nodes() == 0:
        return 0
    return max(dict(graph.degree).values())
