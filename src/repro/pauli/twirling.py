"""Pauli twirling of two-qubit gate layers (paper Sec. III A, Fig. 2).

Random Pauli gates are inserted before each 2q layer and undone after it
without changing the circuit's logic: for a Clifford gate the closing Pauli
is the conjugation of the opening one; for canonical (Heisenberg-type) and
``rzz`` gates the twirl group is the *correlated* Paulis ``P (x) P``, which
commute with the symmetric interaction.

The inserted Paulis are fused into the neighboring single-qubit layers, so
twirling costs nothing extra — exactly as on hardware. A :class:`TwirlRecord`
keeps the sampled labels per 2q layer for CA-EC's sign bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..circuits import gates as g
from ..circuits.circuit import Circuit, Instruction, Moment
from ..circuits.euler import euler_angles
from ..circuits.stratify import layer_kind
from ..utils.rng import SeedLike, as_generator
from .conjugation import conjugate_through, is_supported

_PAULI_LABELS = "IXYZ"

# Gates whose twirl group is the correlated set {P(x)P}: any symmetric
# XX/YY/ZZ interaction commutes with P(x)P.
_SYMMETRIC_GATES = {"can", "rzz"}


@dataclass
class TwirlRecord:
    """Sampled twirl labels: 2q-layer moment index -> qubit -> (pre, post).

    ``pre`` is applied immediately before the layer (later in the preceding
    1q layer), ``post`` immediately after it.
    """

    frames: Dict[int, Dict[int, Tuple[str, str]]] = field(default_factory=dict)

    def pre_label(self, layer_index: int, qubit: int) -> str:
        return self.frames.get(layer_index, {}).get(qubit, ("I", "I"))[0]

    def post_label(self, layer_index: int, qubit: int) -> str:
        return self.frames.get(layer_index, {}).get(qubit, ("I", "I"))[1]


def sample_layer_twirl(
    moment: Moment, num_qubits: int, rng: np.random.Generator, twirl_idle: bool = True
) -> Dict[int, Tuple[str, str]]:
    """Sample (pre, post) Pauli labels for every qubit of one 2q layer."""
    frame: Dict[int, Tuple[str, str]] = {}
    for inst in moment:
        if inst.gate.num_qubits != 2:
            continue
        a, b = inst.qubits
        name = inst.gate.name
        if is_supported(name):
            pre_a = _PAULI_LABELS[rng.integers(4)]
            pre_b = _PAULI_LABELS[rng.integers(4)]
            post_label, _sign = conjugate_through(name, pre_a + pre_b)
            frame[a] = (pre_a, post_label[0])
            frame[b] = (pre_b, post_label[1])
        elif name in _SYMMETRIC_GATES:
            p = _PAULI_LABELS[rng.integers(4)]
            frame[a] = (p, p)
            frame[b] = (p, p)
        else:
            raise ValueError(f"cannot twirl two-qubit gate {name!r}")
    if twirl_idle:
        occupied = moment.qubits
        for q in range(num_qubits):
            if q not in occupied:
                p = _PAULI_LABELS[rng.integers(4)]
                frame[q] = (p, p)
    return frame


def apply_twirl(
    circuit: Circuit,
    seed: SeedLike = None,
    twirl_idle: bool = True,
) -> Tuple[Circuit, TwirlRecord]:
    """Insert one random Pauli twirl into a stratified circuit.

    Returns a new circuit (same logical operation) plus the record of the
    sampled labels. Twirl Paulis are fused into adjacent 1q layers when one
    exists, and inserted as explicit tagged Pauli gates otherwise (e.g. next
    to delay layers in Ramsey-style circuits).
    """
    rng = as_generator(seed)
    out = circuit.copy()
    record = TwirlRecord()

    for index, moment in enumerate(out.moments):
        if layer_kind(moment) != "2q":
            continue
        frame = sample_layer_twirl(moment, out.num_qubits, rng, twirl_idle)
        record.frames[index] = frame
        for qubit, (pre, post) in frame.items():
            if pre != "I":
                _compose_into_layer(out, index - 1, qubit, pre, position="pre")
            if post != "I":
                _compose_into_layer(out, index + 1, qubit, post, position="post")
    return out, record


def _compose_into_layer(
    circuit: Circuit, index: int, qubit: int, label: str, position: str
) -> None:
    """Fuse a twirl Pauli into the 1q layer at ``index``.

    ``position="pre"`` means the Pauli executes at the *end* of that layer
    (just before the following 2q layer); ``"post"`` at the *start*.
    """
    pauli_matrix = g.PAULI_MATRICES[label]
    if not 0 <= index < len(circuit.moments):
        raise ValueError(f"no layer at index {index} to host a twirl Pauli")
    moment = circuit.moments[index]
    if layer_kind(moment) not in ("1q",):
        raise ValueError(
            f"moment {index} ({layer_kind(moment)}) cannot host a twirl Pauli"
        )
    existing = moment.instruction_on(qubit)
    if existing is None:
        moment.add(Instruction(g.pauli_gate(label), (qubit,), tag="twirl"))
        return
    if existing.gate.matrix is None:
        raise ValueError(f"cannot fuse twirl into {existing.gate.name}")
    if position == "pre":
        fused = pauli_matrix @ existing.gate.matrix
    else:
        fused = existing.gate.matrix @ pauli_matrix
    angles = euler_angles(fused)
    moment.replace(
        existing,
        Instruction(
            g.u(angles.theta, angles.phi, angles.lam),
            (qubit,),
            condition=existing.condition,
            tag="twirl",
        ),
    )
