"""N-qubit Pauli operators.

A :class:`Pauli` is ``i^phase`` times a tensor product of I/X/Y/Z factors.
Multiplication and commutation checks are O(n) table lookups. Used by the
twirling machinery and by CA-EC's commute/anticommute bookkeeping (paper
Algorithm 2, lines 22-27).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..circuits.gates import PAULI_MATRICES

# Single-qubit products: (A, B) -> (C, k) meaning A @ B = i^k * C.
_PRODUCT = {
    ("I", "I"): ("I", 0), ("I", "X"): ("X", 0), ("I", "Y"): ("Y", 0), ("I", "Z"): ("Z", 0),
    ("X", "I"): ("X", 0), ("X", "X"): ("I", 0), ("X", "Y"): ("Z", 1), ("X", "Z"): ("Y", 3),
    ("Y", "I"): ("Y", 0), ("Y", "X"): ("Z", 3), ("Y", "Y"): ("I", 0), ("Y", "Z"): ("X", 1),
    ("Z", "I"): ("Z", 0), ("Z", "X"): ("Y", 1), ("Z", "Y"): ("X", 3), ("Z", "Z"): ("I", 0),
}


@dataclass(frozen=True)
class Pauli:
    """``i^phase`` times a Pauli string.

    ``label`` convention: the leftmost character acts on the highest-index
    qubit (textbook string order). Use :meth:`factor` for per-qubit access.
    """

    label: str
    phase: int = 0  # exponent of i, mod 4

    def __post_init__(self):
        if any(ch not in "IXYZ" for ch in self.label):
            raise ValueError(f"invalid Pauli label {self.label!r}")
        object.__setattr__(self, "phase", self.phase % 4)

    @classmethod
    def from_label(cls, label: str, phase: int = 0) -> "Pauli":
        return cls(label.upper(), phase)

    @classmethod
    def identity(cls, num_qubits: int) -> "Pauli":
        return cls("I" * num_qubits)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, kind: str) -> "Pauli":
        """Single-qubit Pauli ``kind`` on ``qubit``, identity elsewhere."""
        chars = ["I"] * num_qubits
        chars[num_qubits - 1 - qubit] = kind.upper()
        return cls("".join(chars))

    @property
    def num_qubits(self) -> int:
        return len(self.label)

    def factor(self, qubit: int) -> str:
        """The single-qubit Pauli acting on ``qubit``."""
        return self.label[self.num_qubits - 1 - qubit]

    @property
    def weight(self) -> int:
        """Number of non-identity tensor factors."""
        return sum(1 for ch in self.label if ch != "I")

    def __mul__(self, other: "Pauli") -> "Pauli":
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit-count mismatch")
        phase = self.phase + other.phase
        chars = []
        for a, b in zip(self.label, other.label):
            c, k = _PRODUCT[(a, b)]
            chars.append(c)
            phase += k
        return Pauli("".join(chars), phase % 4)

    def commutes_with(self, other: "Pauli") -> bool:
        """True when ``[self, other] = 0`` (else they anticommute)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit-count mismatch")
        anti = 0
        for a, b in zip(self.label, other.label):
            if a != "I" and b != "I" and a != b:
                anti ^= 1
        return anti == 0

    def matrix(self) -> np.ndarray:
        """Dense matrix; qubit 0 is the least significant index bit."""
        out = np.array([[1.0 + 0j]])
        for ch in self.label:
            out = np.kron(out, PAULI_MATRICES[ch])
        return (1j**self.phase) * out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        prefix = {0: "", 1: "i", 2: "-", 3: "-i"}[self.phase]
        return f"{prefix}{self.label}"


def commutes(label_a: str, label_b: str) -> bool:
    """Commutation check on Pauli labels of equal length."""
    return Pauli.from_label(label_a).commutes_with(Pauli.from_label(label_b))


def pauli_labels(num_qubits: int) -> Iterable[str]:
    """All ``4**n`` Pauli labels, identity first."""
    if num_qubits == 0:
        yield ""
        return
    for first in "IXYZ":
        for rest in pauli_labels(num_qubits - 1):
            yield first + rest
