"""Pauli algebra, Clifford conjugation tables, and Pauli twirling."""

from .conjugation import conjugate_pauli_numeric, conjugate_through, conjugation_table, is_supported
from .pauli import Pauli, commutes, pauli_labels
from .twirling import TwirlRecord, apply_twirl, sample_layer_twirl

__all__ = [
    "conjugate_pauli_numeric",
    "conjugate_through",
    "conjugation_table",
    "is_supported",
    "Pauli",
    "commutes",
    "pauli_labels",
    "TwirlRecord",
    "apply_twirl",
    "sample_layer_twirl",
]
