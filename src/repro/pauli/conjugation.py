"""Clifford conjugation of Pauli operators, computed numerically and cached.

For a Clifford gate ``G`` and Pauli ``P``, ``G P G^dagger = s Q`` for another
Pauli ``Q`` and sign ``s``. The twirling pass needs this to pick the Pauli
that undoes a random pre-gate Pauli (paper Sec. III A), and CA-EC needs it to
push compensation operators through twirl layers.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from ..circuits.gates import CX_MAT, CZ_MAT, ECR_MAT
from .pauli import Pauli, pauli_labels

_GATE_MATRICES = {"cx": CX_MAT, "cz": CZ_MAT, "ecr": ECR_MAT}


def conjugate_pauli_numeric(
    gate_matrix: np.ndarray, pauli: Pauli
) -> Tuple[Pauli, int]:
    """Compute ``G P G^dagger = s Q`` numerically; returns ``(Q, s)``.

    Raises ``ValueError`` when the result is not a (signed) Pauli, i.e. when
    ``G`` is not Clifford.
    """
    conjugated = gate_matrix @ pauli.matrix() @ gate_matrix.conj().T
    dim = conjugated.shape[0]
    num_qubits = int(np.log2(dim))
    for label in pauli_labels(num_qubits):
        candidate = Pauli.from_label(label).matrix()
        overlap = np.trace(candidate.conj().T @ conjugated) / dim
        if abs(abs(overlap) - 1.0) < 1e-9:
            sign = int(round(overlap.real))
            if sign not in (1, -1) or not np.allclose(
                conjugated, sign * candidate, atol=1e-9
            ):
                raise ValueError("conjugation result has a non-real phase")
            return Pauli.from_label(label), sign
    raise ValueError("gate is not Clifford: conjugated Pauli is not a Pauli")


@lru_cache(maxsize=None)
def conjugation_table(gate_name: str) -> Dict[str, Tuple[str, int]]:
    """Full conjugation table ``P -> (Q, sign)`` for a named 2q Clifford."""
    try:
        matrix = _GATE_MATRICES[gate_name]
    except KeyError:
        raise ValueError(f"no conjugation table for gate {gate_name!r}") from None
    table = {}
    for label in pauli_labels(2):
        q, s = conjugate_pauli_numeric(matrix, Pauli.from_label(label))
        table[label] = (q.label, s)
    return table


def conjugate_through(gate_name: str, label: str) -> Tuple[str, int]:
    """``G P G^dagger`` for a named gate: returns ``(Q_label, sign)``.

    ``label`` is a 2-character Pauli string with the leftmost character on
    the gate's first (control) qubit.
    """
    return conjugation_table(gate_name)[label]


def is_supported(gate_name: str) -> bool:
    """Whether a conjugation table exists for ``gate_name``."""
    return gate_name in _GATE_MATRICES
