"""Context-avoiding gate orientation (the paper's Conclusion/outlook).

"One could ask a compiler to not schedule circuits with these undesirable
contexts" — the worst such context is two ECR gates whose *controls* (or
*targets*) sit next to each other in the same layer: their echo patterns
align and the mutual ZZ survives (case IV), where DD cannot act. Because
an ECR's direction can be reversed with single-qubit dressing,

    ``ECR(c, t) = (H_c H_t) . ECR(t, c) . (Ry(+pi/2)_c Ry(-pi/2)_t)``

the compiler is free to choose each gate's physical orientation. This pass
greedily orients the gates of every 2q layer to minimize same-role
adjacencies on the crosstalk graph, folding the dressing gates into the
neighboring 1q layers at zero wall-clock cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..circuits import gates as g
from ..circuits.circuit import Circuit, Instruction
from ..circuits.euler import euler_angles
from ..circuits.stratify import layer_kind
from ..device.calibration import Device
from ..device.crosstalk import build_crosstalk_graph

# Dressing for ECR(c,t) -> physical ECR(t,c), verified in tests:
# pre (earlier in time): Ry(+pi/2) on c, Ry(-pi/2) on t; post: H on both.
_PRE_ON_CONTROL = g.ry_matrix(math.pi / 2.0)
_PRE_ON_TARGET = g.ry_matrix(-math.pi / 2.0)
_POST = g.H_MAT

_ORIENTABLE = {"ecr", "cx"}


@dataclass
class OrientationReport:
    """Per-layer conflict counts before/after orienting."""

    flipped: int = 0
    conflicts_before: int = 0
    conflicts_after: int = 0
    layers: Dict[int, Tuple[int, int]] = field(default_factory=dict)


def _role_conflicts(
    gates: List[Tuple[int, int]], crosstalk, flips: List[bool]
) -> int:
    """Count crosstalk-adjacent same-role qubit pairs for given flips."""
    roles: Dict[int, str] = {}
    for (control, target), flip in zip(gates, flips):
        if flip:
            control, target = target, control
        roles[control] = "c"
        roles[target] = "t"
    count = 0
    for a, b in crosstalk.edges:
        if roles.get(a) is not None and roles.get(a) == roles.get(b):
            count += 1
    return count


def choose_orientations(
    gates: List[Tuple[int, int]], crosstalk
) -> List[bool]:
    """Greedy orientation: flip each gate iff it reduces conflicts so far.

    Gates are processed in order; each decision counts conflicts against the
    union of already-decided gates, then a second refinement sweep lets each
    gate reconsider against the complete assignment.
    """
    flips = [False] * len(gates)
    for _sweep in range(2):
        for i in range(len(gates)):
            keep = list(flips)
            keep[i] = False
            flip = list(flips)
            flip[i] = True
            if _role_conflicts(gates, crosstalk, flip) < _role_conflicts(
                gates, crosstalk, keep
            ):
                flips[i] = True
            else:
                flips[i] = False
    return flips


def apply_orientation(
    circuit: Circuit, device: Device
) -> Tuple[Circuit, OrientationReport]:
    """Re-orient ECR/CX gates to avoid same-role adjacencies.

    Requires stratified form (1q layers around every 2q layer, like the
    twirling pass). Dressing single-qubit gates are fused into the adjacent
    1q layers; the circuit's unitary is unchanged up to global phase.
    """
    crosstalk = build_crosstalk_graph(device)
    out = circuit.copy()
    report = OrientationReport()

    for index, moment in enumerate(out.moments):
        if layer_kind(moment) != "2q":
            continue
        orientable = [
            inst for inst in moment if inst.gate.name in _ORIENTABLE
        ]
        if not orientable:
            continue
        gates = [tuple(inst.qubits) for inst in orientable]
        before = _role_conflicts(gates, crosstalk, [False] * len(gates))
        flips = choose_orientations(gates, crosstalk)
        after = _role_conflicts(gates, crosstalk, flips)
        report.conflicts_before += before
        report.conflicts_after += after
        report.layers[index] = (before, after)
        for inst, flip in zip(orientable, flips):
            if not flip:
                continue
            _flip_gate(out, index, inst)
            report.flipped += 1
    return out, report


def _flip_gate(circuit: Circuit, index: int, inst: Instruction) -> None:
    control, target = inst.qubits
    moment = circuit.moments[index]
    moment.replace(
        inst,
        Instruction(
            inst.gate, (target, control), inst.clbits, inst.condition, inst.tag
        ),
    )
    if inst.gate.name == "ecr":
        pre_control, pre_target = _PRE_ON_CONTROL, _PRE_ON_TARGET
    else:  # cx: the textbook H-conjugation reversal
        pre_control = pre_target = g.H_MAT
    compose_1q(circuit, index - 1, control, pre_control, position="pre")
    compose_1q(circuit, index - 1, target, pre_target, position="pre")
    compose_1q(circuit, index + 1, control, _POST, position="post")
    compose_1q(circuit, index + 1, target, _POST, position="post")


def compose_1q(
    circuit: Circuit,
    index: int,
    qubit: int,
    matrix: np.ndarray,
    position: str,
    tag: str = "orientation",
) -> None:
    """Fuse a single-qubit matrix into the 1q layer at ``index``.

    ``position="pre"`` executes at the end of that layer (just before the
    following 2q layer); ``"post"`` at its start.
    """
    if not 0 <= index < len(circuit.moments):
        raise ValueError(f"no layer at index {index} to host a dressing gate")
    moment = circuit.moments[index]
    if layer_kind(moment) != "1q":
        raise ValueError(
            f"moment {index} ({layer_kind(moment)}) cannot host a dressing gate"
        )
    existing = moment.instruction_on(qubit)
    if existing is None:
        angles = euler_angles(matrix)
        moment.add(
            Instruction(
                g.u(angles.theta, angles.phi, angles.lam), (qubit,), tag=tag
            )
        )
        return
    if existing.gate.matrix is None:
        raise ValueError(f"cannot fuse dressing into {existing.gate.name}")
    if position == "pre":
        fused = matrix @ existing.gate.matrix
    else:
        fused = existing.gate.matrix @ matrix
    angles = euler_angles(fused)
    moment.replace(
        existing,
        Instruction(
            g.u(angles.theta, angles.phi, angles.lam),
            (qubit,),
            condition=existing.condition,
            tag=tag,
        ),
    )
