"""Context-Aware Dynamical Decoupling — the paper's Algorithm 1.

Four phases:

1. ``BuildInteractionGraph`` — crosstalk graph from device calibration
   (coupling edges plus collision-enhanced NNN pairs).
2. ``CollectJointDelays`` — idle periods long enough to dress, grouped when
   adjacent on the crosstalk graph and overlapping in time. With the
   library's layer-aligned scheduler every moment is already a maximal
   aligned window; :func:`select_joint_windows` implements the paper's
   greedy maximal-window splitting for general (unaligned) interval sets
   and is exercised by the layered case as a special case.
3. ``ColorGraph`` — greedy coloring of each group with ECR-imposed pins:
   controls are sequency 1 (their echo), targets sequency 2 (their rotary),
   so a control's spectator never shares the control's pattern and a
   target's spectator never undoes the rotary refocusing (paper Sec. IV A).
4. ``ApplyDDSeqByColor`` — Walsh sequences from a pre-built dictionary,
   indexed by color.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..circuits.circuit import Circuit, Moment
from ..circuits.schedule import schedule
from ..device.calibration import Device
from ..device.crosstalk import build_crosstalk_graph
from .coloring import CONTROL_COLOR, TARGET_COLOR, ColoringResult, color_idle_group
from .dd import DEFAULT_MIN_DURATION, _idle_qubits, _insert_dd
from .walsh import walsh_fractions


@dataclass(frozen=True)
class IdleInterval:
    """One qubit's idle window: ``[start, end)`` in ns."""

    qubit: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "IdleInterval") -> bool:
        return self.start < other.end and other.start < self.end


def select_joint_windows(
    intervals: Sequence[IdleInterval],
    adjacency: nx.Graph,
    min_duration: float,
) -> List[List[IdleInterval]]:
    """The paper's CollectJointDelays (Algorithm 1, lines 6-19).

    Intervals are greedily grouped when overlapping in time and adjacent on
    the crosstalk graph; each group is then split recursively around the
    window covering the most jointly idling qubits.
    """
    eligible = [iv for iv in intervals if iv.duration >= min_duration]
    groups = _group_intervals(eligible, adjacency)
    selected: List[List[IdleInterval]] = []
    pending = list(groups)
    while pending:
        group = pending.pop()
        if not group:
            continue
        window = max(group, key=lambda iv: _joint_count(iv, group))
        joint = [iv for iv in group if iv.overlaps(window)]
        rest = [iv for iv in group if not iv.overlaps(window)]
        selected.append(joint)
        if rest:
            pending.extend(_group_intervals(rest, adjacency))
    return selected


def _joint_count(window: IdleInterval, group: Sequence[IdleInterval]) -> int:
    return sum(1 for iv in group if iv.overlaps(window))


def _group_intervals(
    intervals: Sequence[IdleInterval], adjacency: nx.Graph
) -> List[List[IdleInterval]]:
    """Connected components under (time overlap AND crosstalk adjacency)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(intervals)))
    for i, a in enumerate(intervals):
        for j in range(i + 1, len(intervals)):
            b = intervals[j]
            same_qubit = a.qubit == b.qubit
            adjacent = adjacency.has_edge(a.qubit, b.qubit) or same_qubit
            if adjacent and a.overlaps(b):
                graph.add_edge(i, j)
    return [
        [intervals[i] for i in sorted(component)]
        for component in nx.connected_components(graph)
    ]


@dataclass
class CADDReport:
    """Diagnostics: per-moment coloring results and unresolved conflicts."""

    colorings: Dict[int, ColoringResult] = field(default_factory=dict)

    @property
    def conflicts(self) -> List[Tuple[int, int, int]]:
        """All ``(moment, a, b)`` crosstalk pairs DD could not separate."""
        out = []
        for index, coloring in self.colorings.items():
            for a, b in coloring.conflicts:
                out.append((index, a, b))
        return out

    def colors_in_moment(self, index: int) -> Dict[int, int]:
        return dict(self.colorings.get(index, ColoringResult()).colors)


def pinned_colors(moment: Moment) -> Dict[int, int]:
    """Intrinsic colors of active qubits in a moment.

    ECR, CX, and canonical gates (whose hardware synthesis leads with the
    same echo pattern) pin their first qubit to sequency 1 and second to
    sequency 2. Other two-qubit gates and measured qubits have no echo
    structure: pinned to 0 (undressed).
    """
    pins: Dict[int, int] = {}
    for inst in moment:
        gate = inst.gate
        if gate.num_qubits == 2 and gate.name in ("ecr", "cx", "can"):
            control, target = inst.qubits
            pins[control] = CONTROL_COLOR
            pins[target] = TARGET_COLOR
        elif gate.num_qubits == 2:
            pins[inst.qubits[0]] = 0
            pins[inst.qubits[1]] = 0
        elif gate.is_measurement:
            pins[inst.qubits[0]] = 0
    return pins


def apply_ca_dd(
    circuit: Circuit,
    device: Device,
    min_duration: float = DEFAULT_MIN_DURATION,
    bins: int = 8,
) -> Tuple[Circuit, CADDReport]:
    """Dress ``circuit`` with context-aware DD; returns circuit + report."""
    crosstalk = build_crosstalk_graph(device)
    out = circuit.copy()
    scheduled = schedule(out, device.durations)
    report = CADDReport()

    for sm in scheduled:
        if sm.duration < min_duration:
            continue
        moment = sm.moment
        # Every idle qubit is dressed: crosstalk neighbors constrain colors,
        # and isolated qubits still gain Z refocusing from the lowest color.
        # Even with no idle qubits the coloring runs on the pinned active
        # qubits alone, so unavoidable conflicts (adjacent ECR controls,
        # the paper's case IV) are still reported.
        idle = list(_idle_qubits(moment, out.num_qubits))
        pins = pinned_colors(moment)
        coloring = color_idle_group(idle, crosstalk, pinned=pins, bins=bins)
        report.colorings[sm.index] = coloring
        for qubit in coloring.assigned:
            fractions = walsh_fractions(coloring.colors[qubit], bins)
            if fractions:
                _insert_dd(moment, qubit, fractions)
    return out, report
