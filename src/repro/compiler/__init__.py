"""Context-aware compiler: CA-DD (Algorithm 1), CA-EC (Algorithm 2), baselines."""

from .ca_dd import CADDReport, IdleInterval, apply_ca_dd, pinned_colors, select_joint_windows
from .ca_ec import CAECReport, apply_ca_ec
from .coloring import CONTROL_COLOR, TARGET_COLOR, ColoringResult, color_idle_group, colors_used
from .dd import (
    DEFAULT_MIN_DURATION,
    apply_aligned_dd,
    apply_dd_by_rule,
    apply_staggered_dd,
    dd_pulse_count,
)
from .orientation import OrientationReport, apply_orientation, choose_orientations
from .strategies import STRATEGIES, Strategy, compile_circuit, get_strategy, realization_factory
from .walsh import max_sequency, orthogonal, pulse_count, walsh_fractions, walsh_signs

__all__ = [
    "CADDReport",
    "IdleInterval",
    "apply_ca_dd",
    "pinned_colors",
    "select_joint_windows",
    "CAECReport",
    "apply_ca_ec",
    "CONTROL_COLOR",
    "TARGET_COLOR",
    "ColoringResult",
    "color_idle_group",
    "colors_used",
    "DEFAULT_MIN_DURATION",
    "apply_aligned_dd",
    "apply_dd_by_rule",
    "apply_staggered_dd",
    "dd_pulse_count",
    "OrientationReport",
    "apply_orientation",
    "choose_orientations",
    "STRATEGIES",
    "Strategy",
    "compile_circuit",
    "get_strategy",
    "realization_factory",
    "max_sequency",
    "orthogonal",
    "pulse_count",
    "walsh_fractions",
    "walsh_signs",
]
