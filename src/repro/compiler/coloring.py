"""Constrained greedy graph coloring for CA-DD (Algorithm 1, ColorGraph).

Colors are Walsh sequencies. Active gate qubits are pre-colored by their
intrinsic echo structure — ECR controls behave like sequency 1 (midpoint
echo), ECR targets like sequency 2 (rotary echoes) — and cannot be changed.
Idle qubits are then greedily assigned the lowest sequency >= 1 that differs
from every crosstalk-graph neighbor's color, which heuristically minimizes
pulse count while guaranteeing pairwise ZZ refocusing (distinct Walsh rows
are orthogonal).

Conflicts that cannot be avoided (e.g. two adjacent ECR controls are both
pinned to color 1 — the paper's case IV) are reported rather than resolved;
those pairs are exactly what CA-EC compensates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from .walsh import max_sequency

CONTROL_COLOR = 1
TARGET_COLOR = 2


@dataclass
class ColoringResult:
    """Outcome of coloring one delay group / moment.

    ``colors`` covers both pre-colored active qubits and idle qubits;
    ``assigned`` lists only the idle qubits that received a DD sequence;
    ``conflicts`` lists crosstalk edges whose endpoints share a color (not
    suppressible by DD in this context).
    """

    colors: Dict[int, int] = field(default_factory=dict)
    assigned: List[int] = field(default_factory=list)
    conflicts: List[Tuple[int, int]] = field(default_factory=list)


def color_idle_group(
    idle_qubits: Iterable[int],
    crosstalk: nx.Graph,
    pinned: Optional[Dict[int, int]] = None,
    bins: int = 8,
) -> ColoringResult:
    """Color ``idle_qubits`` subject to ``pinned`` active-qubit colors.

    ``pinned`` maps active qubits to their intrinsic colors (0 for gates
    with no echo structure, 1 for ECR controls, 2 for ECR targets). The
    greedy order starts with the idle qubits most constrained by pinned
    neighbors, mirroring Algorithm 1's "begin with those already constrained
    by the coloring of adjacent ECR gates".
    """
    pinned = dict(pinned or {})
    idle = [q for q in idle_qubits if q in crosstalk]
    result = ColoringResult(colors=dict(pinned))

    def constraint_level(q: int) -> Tuple[int, int]:
        neighbors = list(crosstalk.neighbors(q))
        pinned_nbrs = sum(1 for nb in neighbors if nb in pinned)
        return (-pinned_nbrs, -len(neighbors))

    top = max_sequency(bins)
    for qubit in sorted(idle, key=constraint_level):
        taken: Set[int] = set()
        for nb in crosstalk.neighbors(qubit):
            if nb in result.colors:
                taken.add(result.colors[nb])
        color = next((c for c in range(1, top + 1) if c not in taken), None)
        if color is None:
            # Out of Walsh resolution: fall back to the lowest color and
            # record the conflicts it causes.
            color = 1
        result.colors[qubit] = color
        result.assigned.append(qubit)

    for a, b in crosstalk.edges:
        ca = result.colors.get(a)
        cb = result.colors.get(b)
        if ca is not None and ca == cb:
            result.conflicts.append((a, b) if a < b else (b, a))
    return result


def colors_used(result: ColoringResult) -> int:
    """Number of distinct colors assigned to idle qubits."""
    return len({result.colors[q] for q in result.assigned})
