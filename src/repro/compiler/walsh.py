"""Walsh-Hadamard dynamical-decoupling sequences (paper Secs. III C, IV A).

The sign pattern of sequency-``k`` Walsh function over ``2^m`` equal time
bins defines where a qubit's DD pulses go: one X pulse at every sign change
(plus a terminal pulse when the count is odd, restoring the logical frame).

Properties used by the compiler (paper Fig. 5b):

* every ``k >= 1`` row integrates to zero  -> single-qubit Z suppressed;
* any two distinct rows are orthogonal     -> mutual ZZ suppressed, and each
  row is also orthogonal to the all-plus row 0, so a Walsh-dressed qubit is
  automatically decoupled from undressed neighbors;
* pulse count grows with sequency          -> minimizing colors minimizes
  pulses, which is why the coloring pass prefers low colors.

Sequency 1 matches the ECR control echo (one flip at the midpoint) and
sequency 2 matches the target rotary echoes (flips at 1/4 and 3/4), so
active gate qubits are pre-colored 1 and 2 in the coloring pass.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

DEFAULT_BINS = 8  # supports sequencies 0..7, the "first 7 Walsh sequences"


def _gray_code(k: int) -> int:
    return k ^ (k >> 1)


def _bit_reverse(value: int, bits: int) -> int:
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


@lru_cache(maxsize=None)
def walsh_signs(sequency: int, bins: int = DEFAULT_BINS) -> Tuple[int, ...]:
    """Sign pattern (+1/-1 per bin) of the sequency-ordered Walsh function."""
    if bins & (bins - 1):
        raise ValueError("bins must be a power of two")
    m = bins.bit_length() - 1
    if not 0 <= sequency < bins:
        raise ValueError(f"sequency must be in [0, {bins})")
    natural = _bit_reverse(_gray_code(sequency), m)
    signs = []
    for t in range(bins):
        parity = bin(natural & t).count("1") & 1
        signs.append(-1 if parity else 1)
    return tuple(signs)


@lru_cache(maxsize=None)
def walsh_fractions(sequency: int, bins: int = DEFAULT_BINS) -> Tuple[float, ...]:
    """Pulse fractions of the sequency-``k`` DD sequence.

    One pulse at each sign change of the Walsh pattern; if the count is odd
    a terminal pulse at fraction 1.0 restores the identity frame (it adds no
    evolution time, only a physical pulse).
    """
    signs = walsh_signs(sequency, bins)
    fractions: List[float] = []
    for i in range(1, bins):
        if signs[i] != signs[i - 1]:
            fractions.append(i / bins)
    if len(fractions) % 2 == 1:
        fractions.append(1.0)
    return tuple(fractions)


def pulse_count(sequency: int, bins: int = DEFAULT_BINS) -> int:
    """Number of physical X pulses in the sequency-``k`` sequence."""
    return len(walsh_fractions(sequency, bins))


def max_sequency(bins: int = DEFAULT_BINS) -> int:
    """Largest usable color for the given bin resolution."""
    return bins - 1


def orthogonal(seq_a: int, seq_b: int, bins: int = DEFAULT_BINS) -> bool:
    """Whether two sequencies mutually refocus ZZ (row orthogonality)."""
    a = np.asarray(walsh_signs(seq_a, bins))
    b = np.asarray(walsh_signs(seq_b, bins))
    return int(np.dot(a, b)) == 0
