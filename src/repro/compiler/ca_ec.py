"""Context-Aware Error Compensation — the paper's Algorithm 2.

The pass predicts the known (static) coherent error of every scheduled
moment with the same sign-trajectory model the simulator uses, then cancels
it:

* **Z errors** are compensated in place: a virtual ``Rz(-theta)`` is
  inserted immediately adjacent to the error. Virtual Z rotations are frame
  updates with zero duration and zero error (paper Sec. IV B, Ref. [60]),
  so this is always free — the general case of "absorb into the Euler
  angles of a neighboring single-qubit gate".
* **ZZ errors** are moved through the circuit to an absorber. The inverse
  ``Rzz(-theta)`` commutes with Z-type single-qubit gates and with gates on
  other qubits, and anticommutes-with-sign through Pauli X/Y (twirl) gates
  — crossing one flips the compensation angle's sign (paper Fig. 1d). When
  a canonical (Heisenberg-type) or ``rzz`` gate on the same pair is reached,
  the compensation is absorbed into its ZZ angle at zero cost; otherwise an
  explicit pulse-stretched ``Rzz`` is inserted next to the error (cost
  proportional to the small angle). Pairs with no physical coupling (NNN
  crosstalk) cannot host a stretched pulse and are reported as blocked —
  Table I's "EC: not applicable" entries.

The compiler plans with *its* duration table (``durations`` argument), which
may differ from the true hardware timing — sweeping the planner's
feedforward-time estimate against a fixed true value reproduces the paper's
Fig. 9c calibration curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuits import gates as g
from ..circuits.circuit import Circuit, Instruction, Moment
from ..circuits.schedule import Durations, schedule
from ..device.calibration import Device
from ..sim.coherent import CoherentAccumulation, accumulate_coherent
from ..sim.timeline import build_timeline

Edge = Tuple[int, int]

_Z_TYPE_1Q = {"rz", "z", "s", "sdg", "t", "id"}
_FLIP_1Q = {"x", "y"}
_ABSORBERS = {"can", "rzz"}

DEFAULT_MIN_ANGLE = 1e-6  # rad; ignore numerically-zero residuals


@dataclass
class CAECReport:
    """What the pass did: counts, angles, and anything it could not fix."""

    z_compensations: int = 0
    total_z_angle: float = 0.0
    zz_absorbed: int = 0
    zz_explicit: int = 0
    blocked: List[Tuple[int, Edge, float, str]] = field(default_factory=list)

    @property
    def zz_total(self) -> int:
        return self.zz_absorbed + self.zz_explicit + len(self.blocked)


@dataclass
class _Absorption:
    moment_index: int
    instruction: Instruction
    sign: int


def apply_ca_ec(
    circuit: Circuit,
    device: Device,
    durations: Optional[Durations] = None,
    min_angle: float = DEFAULT_MIN_ANGLE,
    absorb: bool = True,
    allow_explicit: bool = True,
    stark_from_1q: bool = False,
    skip_moments: Optional[frozenset] = None,
) -> Tuple[Circuit, CAECReport]:
    """Insert error compensation into ``circuit``; returns circuit + report.

    ``durations`` is the compiler's timing belief (defaults to the device
    table). Should be run *after* twirl sampling and DD insertion so the
    predicted accumulations match what will actually execute.
    ``skip_moments`` excludes the listed moment indices from compensation —
    used when a specialized scheme (e.g. conditional corrections around a
    measurement window, paper Fig. 9b) handles them instead.
    """
    out = circuit.copy()
    durations = durations or device.durations
    scheduled = schedule(out, durations)
    report = CAECReport()

    # Predicted static error per moment (same model as the simulator).
    accumulations: List[CoherentAccumulation] = []
    for sm in scheduled:
        timeline = build_timeline(sm.moment, out.num_qubits, sm.duration)
        accumulations.append(
            accumulate_coherent(
                timeline, device, detunings=None, stark_from_1q=stark_from_1q
            )
        )

    # Compensations to insert immediately before each original moment:
    # virtual Rz instructions and (possibly several) explicit Rzz gates.
    z_inserts: Dict[int, List[Instruction]] = {}
    zz_inserts: Dict[int, List[Instruction]] = {}

    skipped = frozenset(skip_moments or ())
    for index, acc in enumerate(accumulations):
        if index in skipped:
            continue
        for qubit, theta in acc.z.items():
            if abs(theta) < min_angle:
                continue
            z_inserts.setdefault(index, []).append(
                Instruction(g.rz(-theta), (qubit,), tag="compensation")
            )
            report.z_compensations += 1
            report.total_z_angle += abs(theta)
        for edge, theta in acc.zz.items():
            if abs(theta) < min_angle:
                continue
            absorption = _find_absorber(out, index, edge) if absorb else None
            if absorption is not None:
                _absorb_zz(out, absorption, theta)
                report.zz_absorbed += 1
            elif allow_explicit and edge in device.pairs:
                gate = g.stretched_rzz(-theta, full_duration=durations.twoq)
                zz_inserts.setdefault(index, []).append(
                    Instruction(gate, edge, tag="compensation")
                )
                report.zz_explicit += 1
            else:
                reason = (
                    "no coupling for stretched pulse"
                    if edge not in device.pairs
                    else "explicit insertion disabled"
                )
                report.blocked.append((index, edge, theta, reason))

    _materialize_inserts(out, z_inserts, zz_inserts)
    return out, report


def _find_absorber(
    circuit: Circuit, index: int, edge: Edge
) -> Optional[_Absorption]:
    """Search forward then backward for a gate that can host ``Rzz`` on edge.

    Returns the absorber with the accumulated crossing sign, or ``None``
    when the compensation is blocked before reaching one.
    """
    forward = _scan(circuit, index, edge, direction=+1)
    if forward is not None:
        return forward
    return _scan(circuit, index, edge, direction=-1)


def _scan(
    circuit: Circuit, index: int, edge: Edge, direction: int
) -> Optional[_Absorption]:
    a, b = edge
    sign = 1
    # The moment's error acts *before* its own unitaries, so a forward scan
    # must cross the error moment's own gates too; a backward scan starts at
    # the preceding moment.
    j = index if direction > 0 else index - 1
    while 0 <= j < len(circuit.moments):
        moment = circuit.moments[j]
        for inst in moment:
            touches = [q for q in inst.qubits if q in (a, b)]
            if not touches:
                continue
            gate = inst.gate
            if gate.num_qubits == 2 and tuple(sorted(inst.qubits)) == edge:
                if gate.name in _ABSORBERS and inst.condition is None:
                    return _Absorption(j, inst, sign)
                return None  # e.g. ECR on the pair: ZZ does not commute
            if inst.condition is not None:
                return None  # classical branch: sign is outcome-dependent
            if gate.is_measurement:
                return None
            if gate.is_delay:
                continue
            if gate.num_qubits == 2:
                return None  # entangles a or b with a third qubit
            name = gate.name
            if name in _Z_TYPE_1Q:
                continue
            if name in _FLIP_1Q:
                sign = -sign
                continue
            if name == "dd":
                if len(gate.dd_fractions) % 2 == 1:
                    sign = -sign
                continue
            return None  # generic 1q gate: ZZ cannot cross
        j += direction
    return None


def _absorb_zz(circuit: Circuit, absorption: _Absorption, theta: float) -> None:
    """Fold ``Rzz(-sign*theta)`` into the absorber's ZZ angle.

    For ``can(alpha, beta, gamma) = exp[i(a XX + b YY + c ZZ)]`` the inverse
    error ``Rzz(-s theta) = exp(i s theta/2 ZZ)`` shifts ``gamma`` by
    ``+s theta / 2``; for ``rzz(phi)`` it shifts ``phi`` by ``-s theta``.
    """
    inst = absorption.instruction
    moment = circuit.moments[absorption.moment_index]
    s = absorption.sign
    if inst.gate.name == "can":
        alpha, beta, gamma = inst.gate.params
        new_gate = g.canonical(alpha, beta, gamma + s * theta / 2.0)
    else:  # rzz
        (phi,) = inst.gate.params
        new_gate = g.rzz(phi - s * theta)
    moment.replace(
        inst,
        Instruction(new_gate, inst.qubits, inst.clbits, inst.condition, inst.tag),
    )


def _materialize_inserts(
    circuit: Circuit,
    z_inserts: Dict[int, List[Instruction]],
    zz_inserts: Dict[int, List[Instruction]],
) -> None:
    """Insert compensation moments before their target moments.

    Virtual Rz compensations share one zero-duration moment; explicit Rzz
    gates are packed greedily into as few extra moments as overlap allows.
    """
    new_moments: List[Moment] = []
    for index, moment in enumerate(circuit.moments):
        if index in z_inserts:
            new_moments.append(Moment(z_inserts[index]))
        packs: List[List[Instruction]] = []
        for inst in zz_inserts.get(index, ()):
            for pack in packs:
                occupied = {q for i in pack for q in i.qubits}
                if not (set(inst.qubits) & occupied):
                    pack.append(inst)
                    break
            else:
                packs.append([inst])
        for pack in packs:
            new_moments.append(Moment(pack))
        new_moments.append(moment)
    circuit.moments = new_moments
