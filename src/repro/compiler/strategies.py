"""End-to-end compilation strategies.

A :class:`Strategy` names one suppression pipeline from the paper's
comparisons:

========================  =========================================
``none``                  Pauli twirling only (the paper's baseline
                          "no suppression except readout + twirling")
``dd``                    context-unaware aligned X2 DD on all idles
``staggered_dd``          context-unaware staggered DD (2-coloring)
``ca_dd``                 Algorithm 1 (Walsh sequences by coloring)
``ca_ec``                 Algorithm 2 (absorb/insert compensations)
``ca_ec+dd``              CA-DD first, CA-EC mops up the residual
                          (the combined strategy of Sec. V E)
``ec+aligned_dd``         aligned DD plus error compensation — the
                          "simple DD + EC matches fancy DD" curve of
                          Fig. 3c
========================  =========================================

Each realization samples a fresh Pauli twirl, then inserts DD, then runs
CA-EC (which sees the twirl Paulis and DD pulses, as Algorithm 2 requires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.schedule import Durations
from ..device.calibration import Device
from ..utils.rng import SeedLike
from .dd import DEFAULT_MIN_DURATION


@dataclass(frozen=True)
class Strategy:
    """One suppression pipeline: DD flavor + EC toggle + twirl toggle."""

    name: str
    dd: str = "none"  # none | aligned | staggered | ca
    ec: bool = False
    twirl: bool = True

    def __post_init__(self):
        if self.dd not in ("none", "aligned", "staggered", "ca"):
            raise ValueError(f"unknown dd flavor {self.dd!r}")


STRATEGIES: Dict[str, Strategy] = {
    "none": Strategy("none"),
    "dd": Strategy("dd", dd="aligned"),
    "staggered_dd": Strategy("staggered_dd", dd="staggered"),
    "ca_dd": Strategy("ca_dd", dd="ca"),
    "ca_ec": Strategy("ca_ec", ec=True),
    "ca_ec+dd": Strategy("ca_ec+dd", dd="ca", ec=True),
    "ec+aligned_dd": Strategy("ec+aligned_dd", dd="aligned", ec=True),
}


def get_strategy(name_or_strategy) -> Strategy:
    if isinstance(name_or_strategy, Strategy):
        return name_or_strategy
    try:
        return STRATEGIES[name_or_strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name_or_strategy!r}; "
            f"choose from {sorted(STRATEGIES)}"
        ) from None


def compile_circuit(
    circuit: Circuit,
    device: Device,
    strategy="none",
    seed: SeedLike = None,
    planner_durations: Optional[Durations] = None,
    min_dd_duration: float = DEFAULT_MIN_DURATION,
    orient: bool = False,
) -> Circuit:
    """Produce one compiled realization of ``circuit`` under a strategy.

    The input must be in stratified (alternating-layer) form when twirling
    is enabled. ``planner_durations`` is CA-EC's timing belief; the default
    is the device's true table (see Fig. 9c for why they can differ).
    ``orient=True`` first re-orients ECR/CX gates to avoid same-role
    adjacencies (the paper's context-avoidance outlook).

    .. deprecated:: 1.1
        Thin wrapper over :func:`repro.runtime.pipeline_for`; build a
        :class:`repro.runtime.Pipeline` directly for new code.
    """
    import warnings

    from ..runtime.pipeline import pipeline_for  # local: avoids import cycle

    warnings.warn(
        "compile_circuit is deprecated since repro 1.1; build a pipeline via "
        "repro.runtime.pipeline_for (or compose passes) and call .compile()",
        DeprecationWarning,
        stacklevel=2,
    )
    pipeline = pipeline_for(
        strategy,
        planner_durations=planner_durations,
        min_dd_duration=min_dd_duration,
        orient=orient,
    )
    return pipeline.compile(circuit, device, seed=seed)


def realization_factory(
    circuit: Circuit,
    device: Device,
    strategy="none",
    planner_durations: Optional[Durations] = None,
    min_dd_duration: float = DEFAULT_MIN_DURATION,
    orient: bool = False,
) -> Callable[[np.random.Generator], Circuit]:
    """A callable producing fresh twirl realizations, for the executor."""
    from ..runtime.pipeline import pipeline_for  # local: avoids import cycle

    pipeline = pipeline_for(
        get_strategy(strategy),
        planner_durations=planner_durations,
        min_dd_duration=min_dd_duration,
        orient=orient,
    )

    def factory(rng: np.random.Generator) -> Circuit:
        return pipeline.compile(circuit, device, seed=rng)

    return factory
