"""Dynamical-decoupling insertion passes.

Provides the context-unaware baselines the paper compares against:

* ``aligned`` — the conventional X2 sequence (pulses at 1/4 and 3/4) applied
  identically to every idle qubit. Cancels single-qubit Z but leaves every
  idle-idle ZZ untouched (pair sign products never flip) — the failing
  baseline of Fig. 3c.
* ``staggered`` — alternating two sequencies by a 2-coloring of the coupling
  graph, ignoring gate context. Fixes idle-idle pairs but can align with
  (and undo) the implicit echoes of neighboring ECR gates.
* ``uniform`` — an alias of ``aligned``; the "DD" rows of Figs. 7 and 8.

All passes insert :func:`~repro.circuits.gates.dd_sequence` instructions on
idle qubits of moments whose duration is at least ``min_duration``. A qubit
holding an explicit ``delay`` has its delay replaced by a DD sequence with
the same duration.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

import networkx as nx

from ..circuits import gates as g
from ..circuits.circuit import Circuit, Instruction, Moment
from ..circuits.schedule import schedule
from ..device.calibration import Device
from .walsh import walsh_fractions

DEFAULT_MIN_DURATION = 150.0  # ns; skip 1q layers, dress 2q/delay/measure windows

ALIGNED_FRACTIONS = (0.25, 0.75)


def _insert_dd(
    moment: Moment, qubit: int, fractions: Iterable[float]
) -> None:
    """Place a DD sequence on ``qubit``; replaces an explicit delay if any."""
    fractions = tuple(fractions)
    if not fractions:
        return
    existing = moment.instruction_on(qubit)
    if existing is None:
        moment.add(Instruction(g.dd_sequence(fractions), (qubit,), tag="dd"))
    elif existing.gate.is_delay:
        duration = float(existing.gate.params[0])
        moment.replace(
            existing,
            Instruction(g.dd_sequence(fractions, duration=duration), (qubit,), tag="dd"),
        )
    else:
        raise ValueError(f"qubit {qubit} is not idle in this moment")


def _idle_qubits(moment: Moment, num_qubits: int) -> Iterable[int]:
    for q in range(num_qubits):
        inst = moment.instruction_on(q)
        if inst is None or inst.gate.is_delay:
            yield q


def apply_dd_by_rule(
    circuit: Circuit,
    device: Device,
    rule: Callable[[Moment, int], Optional[Iterable[float]]],
    min_duration: float = DEFAULT_MIN_DURATION,
) -> Circuit:
    """Generic DD pass: ``rule(moment, qubit)`` returns pulse fractions.

    The rule is consulted for every idle qubit of every moment whose
    scheduled duration is at least ``min_duration``; returning ``None``
    skips the qubit. Moments containing measurements are skipped for the
    measured qubits automatically.
    """
    out = circuit.copy()
    scheduled = schedule(out, device.durations)
    for sm in scheduled:
        if sm.duration < min_duration:
            continue
        for qubit in list(_idle_qubits(sm.moment, out.num_qubits)):
            fractions = rule(sm.moment, qubit)
            if fractions:
                _insert_dd(sm.moment, qubit, fractions)
    return out


def apply_aligned_dd(
    circuit: Circuit, device: Device, min_duration: float = DEFAULT_MIN_DURATION
) -> Circuit:
    """Uniform context-unaware X2 DD on every idle qubit."""
    return apply_dd_by_rule(
        circuit, device, lambda _m, _q: ALIGNED_FRACTIONS, min_duration
    )


def apply_staggered_dd(
    circuit: Circuit, device: Device, min_duration: float = DEFAULT_MIN_DURATION
) -> Circuit:
    """Two-coloring staggered DD, ignoring gate context.

    Idle qubits get Walsh sequency 1 or 2 according to a fixed 2-coloring of
    the coupling graph (bipartite for chains/heavy-hex; odd cycles fall back
    to a greedy assignment that may leave one conflicting pair).
    """
    coloring = _two_coloring(device)

    def rule(_moment: Moment, qubit: int):
        return walsh_fractions(1 + coloring.get(qubit, 0))

    return apply_dd_by_rule(circuit, device, rule, min_duration)


def _two_coloring(device: Device) -> Dict[int, int]:
    graph = nx.Graph()
    graph.add_nodes_from(range(device.num_qubits))
    graph.add_edges_from(device.topology.edges)
    colors: Dict[int, int] = {}
    for component in nx.connected_components(graph):
        order = sorted(component)
        for node in order:
            used = {colors[nb] for nb in graph.neighbors(node) if nb in colors}
            colors[node] = 0 if 0 not in used else 1
    return colors


def dd_pulse_count(circuit: Circuit) -> int:
    """Total physical DD pulses inserted in ``circuit``."""
    return sum(
        len(inst.gate.dd_fractions)
        for inst in circuit.instructions()
        if inst.gate.name == "dd"
    )
