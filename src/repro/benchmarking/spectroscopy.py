"""Ramsey spectroscopy of the smaller error mechanisms (paper Fig. 4).

* **Stark shift** (Fig. 4a): a spectator's Ramsey fringe frequency while an
  adjacent qubit is repeatedly driven, compared against the idle fringe;
  the difference between the FFT peaks is the drive-induced Stark shift.
* **Charge parity** (Fig. 4b): a Ramsey fringe with a known applied rotation
  ``nu`` beats at ``nu +- delta`` because the parity term's sign flips shot
  to shot (eq. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


from ..circuits.circuit import Circuit
from ..device.calibration import Device
from ..runtime import Sweep, Task
from ..sim.executor import SimOptions
from ..utils.fitting import dominant_frequency
from ..utils.units import TWO_PI


def _ramsey_idle_circuit(
    num_qubits: int,
    probe: int,
    idle_time: float,
    applied_frequency: float = 0.0,
    drive_neighbor: Optional[int] = None,
    drive_gate_time: float = 500.0,
) -> Circuit:
    """Single-probe Ramsey circuit with optional driven neighbor.

    The neighbor is "driven" by repeating ECR-like activity for the whole
    idle window: we split the window into gate-long chunks, each with the
    neighbor active (paired with a further qubit).
    """
    circ = Circuit(num_qubits)
    circ.h(probe)
    if drive_neighbor is None:
        circ.delay(idle_time, probe, new_moment=True)
    else:
        partner = drive_neighbor + 1
        if partner == probe or partner >= num_qubits:
            raise ValueError("need a partner qubit beyond the driven neighbor")
        chunks = max(int(round(idle_time / drive_gate_time)), 1)
        for _ in range(chunks):
            circ.ecr(drive_neighbor, partner, new_moment=True)
    if applied_frequency:
        circ.rz(TWO_PI * applied_frequency * idle_time, probe, new_moment=True)
    circ.h(probe, new_moment=True)
    return circ


def ramsey_fringe(
    device: Device,
    probe: int,
    times: Sequence[float],
    applied_frequency: float = 0.0,
    drive_neighbor: Optional[int] = None,
    options: Optional[SimOptions] = None,
) -> List[float]:
    """``<Z_probe>`` after a Ramsey sequence, for each idle time.

    The whole time sweep is one declarative :class:`~repro.runtime.Sweep`
    (a single batched runtime call).
    """
    options = options or SimOptions(shots=200, seed=7)
    label = ["I"] * device.num_qubits
    label[device.num_qubits - 1 - probe] = "Z"
    observable = {"z": "".join(label)}
    swept = Sweep(
        {"time": list(times)},
        lambda time: Task(
            _ramsey_idle_circuit(
                device.num_qubits,
                probe,
                time,
                applied_frequency=applied_frequency,
                drive_neighbor=drive_neighbor,
            ),
            observables=observable,
        ),
        name="ramsey_fringe",
    ).run(device, options=options)
    return swept.curve("z")


@dataclass
class StarkMeasurement:
    """Fig. 4a quantities (all in GHz).

    While the neighbor is driven, its gate echo refocuses the spectator's
    ``ZZ`` but the coupling's local ``Z`` component survives, so the
    spectator fringe sits near the always-on coupling frequency; the drive's
    AC Stark shift displaces the peak from that reference line — the
    displacement is the measured Stark shift (paper Fig. 4a).
    """

    driven_frequency: float
    always_on_reference: float
    calibrated_stark: float

    @property
    def stark_shift(self) -> float:
        """Peak displacement from the always-on coupling line."""
        return abs(self.driven_frequency - self.always_on_reference)


def measure_stark_shift(
    device: Device,
    probe: int,
    neighbor: int,
    times: Sequence[float],
    options: Optional[SimOptions] = None,
) -> StarkMeasurement:
    """Fig. 4a: spectator fringe while the neighbor runs gates."""
    driven = ramsey_fringe(
        device, probe, times, drive_neighbor=neighbor, options=options
    )
    return StarkMeasurement(
        driven_frequency=dominant_frequency(times, driven),
        always_on_reference=device.zz_rate(probe, neighbor),
        calibrated_stark=device.stark_shift(neighbor, probe),
    )


def parity_beating_signal(
    device: Device,
    probe: int,
    times: Sequence[float],
    applied_frequency: float,
    options: Optional[SimOptions] = None,
) -> List[float]:
    """Fig. 4b: Ramsey fringe showing ``cos(2 pi nu t) cos(2 pi delta t)``.

    Averaging over the random parity sign turns the ``nu +- delta``
    components into a beating envelope at ``delta``.
    """
    return ramsey_fringe(
        device, probe, times, applied_frequency=applied_frequency, options=options
    )
