"""Error-mitigation overhead estimation (paper Sec. V B / Fig. 7d).

Under a global depolarizing model, measured expectation values relate to
ideal ones as ``<O>_meas(d) = A * lambda^d * <O>_ideal(d)`` where ``A``
captures state-preparation/readout attenuation and ``lambda`` the per-step
layer error. Rescaling the signal by ``1 / (A lambda^d)`` recovers the ideal
expectation but amplifies its variance by the square of the scaling factor —
so the sampling overhead at depth ``d`` is ``(A lambda^d)**-2`` (Ref. [62]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import minimize_scalar


@dataclass(frozen=True)
class DepolarizingFit:
    """Global depolarizing parameters ``A`` and ``lambda``."""

    amplitude: float
    rate: float

    def scale(self, depth: float) -> float:
        """Signal attenuation ``A * lambda^d`` at depth ``d``."""
        return self.amplitude * self.rate**depth

    def overhead(self, depth: float) -> float:
        """Sampling overhead ``(A lambda^d)**-2`` at depth ``d``."""
        return self.scale(depth) ** -2.0


def fit_global_depolarizing(
    depths: Sequence[float],
    measured: Sequence[float],
    ideal: Sequence[float],
) -> DepolarizingFit:
    """Fit ``measured = A * lambda^d * ideal`` by least squares.

    For fixed ``lambda`` the optimal ``A`` is a closed-form projection, so
    only ``lambda`` is optimized numerically over ``(0, 1]``.
    """
    depths = np.asarray(depths, dtype=float)
    measured = np.asarray(measured, dtype=float)
    ideal = np.asarray(ideal, dtype=float)
    if not (len(depths) == len(measured) == len(ideal)):
        raise ValueError("length mismatch")
    if np.allclose(ideal, 0.0):
        raise ValueError("ideal signal is identically zero; cannot scale")

    def amplitude_for(rate: float) -> float:
        basis = rate**depths * ideal
        denom = float(np.dot(basis, basis))
        if denom < 1e-15:
            return 0.0
        return float(np.dot(basis, measured) / denom)

    def loss(rate: float) -> float:
        a = amplitude_for(rate)
        return float(np.sum((a * rate**depths * ideal - measured) ** 2))

    result = minimize_scalar(loss, bounds=(1e-4, 1.0), method="bounded")
    rate = float(result.x)
    amplitude = amplitude_for(rate)
    return DepolarizingFit(amplitude=amplitude, rate=rate)


def overhead_ratio(
    fit_reference: DepolarizingFit, fit_improved: DepolarizingFit, depth: float
) -> float:
    """How much cheaper mitigation becomes: ``overhead_ref / overhead_new``."""
    return fit_reference.overhead(depth) / fit_improved.overhead(depth)
