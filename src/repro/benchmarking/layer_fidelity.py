"""Layer-fidelity benchmarking (paper Sec. V C / Fig. 8, after Ref. [27]).

A candidate layer of simultaneous two-qubit gates is benchmarked by:

1. partitioning the qubits into disjoint groups — gate pairs, adjacent idle
   pairs, and single idle qubits;
2. preparing every qubit in a random Pauli eigenstate;
3. applying the (twirled, strategy-dressed) layer ``2 d`` times — ECR layers
   are self-inverse, so even repetition counts implement the identity;
4. undoing the preparation and reading out each partition's Pauli
   polarization;
5. fitting each partition's polarization decay ``A * lambda^d`` and taking
   the layer fidelity as the product of the per-partition rates.

The error-mitigation sampling overhead for the layer is ``gamma =
LF**-2`` — the paper's quoted values (LF 0.648 -> gamma 2.38 etc.) follow
exactly this relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits import gates as g
from ..circuits.circuit import Circuit, Instruction, Moment
from ..device.calibration import Device
from ..pauli.pauli import Pauli
from ..runtime import Sweep, SweepResult, Task, pipeline_for
from ..sim.executor import SimOptions
from ..utils.fitting import fit_exponential_decay
from ..utils.rng import SeedLike, as_generator

def _prep_gate(basis: str) -> g.Gate:
    """Gate preparing the +1 eigenstate of ``basis`` from ``|0>``."""
    if basis == "Z":
        return g.I
    if basis == "X":
        return g.H
    if basis == "Y":
        # |0> -> (|0> + i|1>)/sqrt(2): H then S.
        matrix = g.S_MAT @ g.H_MAT
        return g.Gate("prep_y", 1, matrix=matrix)
    raise ValueError(f"bad basis {basis!r}")


def _unprep_gate(basis: str) -> g.Gate:
    gate = _prep_gate(basis)
    if gate.matrix is None:
        raise ValueError("prep gate missing matrix")
    return g.Gate(f"un{gate.name}", 1, matrix=gate.matrix.conj().T)


@dataclass(frozen=True)
class LayerSpec:
    """A candidate layer: gate list over a device's qubits.

    ``gates`` entries are ``(name, control, target)`` with name ``"ecr"``
    (or ``"cx"``). All other device qubits are idle in the layer.
    """

    num_qubits: int
    gates: Tuple[Tuple[str, int, int], ...]

    def moment(self) -> Moment:
        instructions = []
        for name, control, target in self.gates:
            gate = g.ECR if name == "ecr" else g.CX
            instructions.append(Instruction(gate, (control, target)))
        return Moment(instructions)

    @property
    def active_qubits(self) -> frozenset:
        return frozenset(q for _n, c, t in self.gates for q in (c, t))


def partition_layer(spec: LayerSpec, device: Device) -> List[Tuple[int, ...]]:
    """Disjoint benchmark partitions: gate pairs, idle pairs, singles."""
    partitions: List[Tuple[int, ...]] = [
        (c, t) for _n, c, t in spec.gates
    ]
    idle = [q for q in range(spec.num_qubits) if q not in spec.active_qubits]
    used = set()
    for q in idle:
        if q in used:
            continue
        neighbor = next(
            (
                p
                for p in device.topology.neighbors(q)
                if p in idle and p not in used and p != q
            ),
            None,
        )
        if neighbor is None:
            partitions.append((q,))
            used.add(q)
        else:
            partitions.append((q, neighbor))
            used.update((q, neighbor))
    return partitions


def _survival_circuit(
    spec: LayerSpec, bases: Sequence[str], depth: int
) -> Circuit:
    """Prep random Pauli eigenstates, apply the layer ``2*depth`` times, undo."""
    circ = Circuit(spec.num_qubits)
    circ.append_moment(
        [
            Instruction(_prep_gate(b), (q,))
            for q, b in enumerate(bases)
            if _prep_gate(b).name != "id"
        ]
    )
    for _ in range(2 * depth):
        circ.moments.append(spec.moment())
        circ.append_moment([])
    circ.append_moment(
        [
            Instruction(_unprep_gate(b), (q,))
            for q, b in enumerate(bases)
            if _prep_gate(b).name != "id"
        ]
    )
    return circ


@dataclass
class LayerFidelityResult:
    """Per-partition decay rates and the aggregated layer fidelity."""

    partitions: List[Tuple[int, ...]]
    rates: Dict[Tuple[int, ...], float]
    layer_fidelity: float
    gamma: float
    curves: Dict[Tuple[int, ...], List[float]] = field(default_factory=dict)
    sweep: Optional[SweepResult] = None


def measure_layer_fidelity(
    spec: LayerSpec,
    device: Device,
    strategy="none",
    depths: Sequence[int] = (1, 2, 4, 8),
    samples: int = 6,
    options: Optional[SimOptions] = None,
    seed: SeedLike = 0,
    backend=None,
    workers: Optional[int] = None,
) -> LayerFidelityResult:
    """Run the layer-fidelity protocol for one strategy.

    ``depths`` count layer *pairs* (each depth applies the layer ``2 d``
    times). The per-partition decay rate is normalized per single layer
    application: ``lambda_layer = rate ** (1 / 2)``.

    The ``(depth, sample)`` grid is a :class:`~repro.runtime.Sweep` whose
    builder compiles in grid order — one shared RNG stream draws the random
    bases, the twirl, and each point's simulator sub-seed exactly as the
    legacy sequential loop did — so the whole protocol is one batched
    runtime call and ``workers`` only changes wall time.
    """
    rng = as_generator(seed)
    options = options or SimOptions(shots=24)
    pipeline = pipeline_for(strategy)
    partitions = partition_layer(spec, device)
    observables = {}
    for part in partitions:
        label = ["I"] * spec.num_qubits
        for q in part:
            label[spec.num_qubits - 1 - q] = "Z"
        observables[str(part)] = Pauli.from_label("".join(label))

    def build(depth, sample):
        bases = ["XYZ"[rng.integers(3)] for _ in range(spec.num_qubits)]
        circuit = _survival_circuit(spec, bases, depth)
        compiled = pipeline.compile(circuit, device, seed=rng)
        sub_seed = int(rng.integers(0, 2**63 - 1))
        return Task(compiled, observables=observables, seed=sub_seed)

    swept = Sweep(
        {"depth": list(depths), "sample": list(range(samples))},
        build,
        name=f"layer_fidelity/{pipeline.name}",
    ).run(device, options=options, backend=backend, workers=workers)

    rates: Dict[Tuple[int, ...], float] = {}
    curves: Dict[Tuple[int, ...], List[float]] = {}
    for part in partitions:
        means = [
            float(np.mean(swept.curve(str(part), depth=d))) for d in depths
        ]
        curves[part] = means
        fit = fit_exponential_decay(list(depths), means, offset=0.0)
        # One depth unit = two layer applications.
        rates[part] = float(np.clip(fit.rate, 1e-6, 1.0)) ** 0.5

    layer_fidelity = float(np.prod([rates[p] for p in partitions]))
    gamma = layer_fidelity ** (-2.0)
    return LayerFidelityResult(
        partitions=partitions,
        rates=rates,
        layer_fidelity=layer_fidelity,
        gamma=gamma,
        curves=curves,
        sweep=swept,
    )


def gamma_from_layer_fidelity(layer_fidelity: float) -> float:
    """Sampling-overhead base ``gamma = LF**-2`` (paper Sec. V C)."""
    if not 0.0 < layer_fidelity <= 1.0:
        raise ValueError("layer fidelity must be in (0, 1]")
    return layer_fidelity**-2.0


def overhead_reduction(gamma_ref: float, gamma_new: float, layers: int = 1) -> float:
    """Sampling-overhead reduction factor over ``layers`` circuit layers.

    Overhead scales exponentially in depth: ``(gamma_ref / gamma_new) **
    layers`` — the paper's ~7x and ~30x for 10 layers.
    """
    return (gamma_ref / gamma_new) ** layers
