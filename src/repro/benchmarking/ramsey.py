"""Ramsey characterization experiments (paper Fig. 3).

Probe qubits are prepared in ``|+>``, exposed to ``d`` repetitions of a
context (joint idling, ECR spectatorship, parallel ECRs with adjacent
controls), and rotated back; the Ramsey fidelity is the probability of
returning to ``|0...0>`` on the probes. Oscillations of the fidelity with
depth are the signature of coherent errors; different suppression
strategies are compared by how close the curve stays to 1.

The four contexts map to the paper's cases:

* case I   — two adjacent idle qubits (always-on ZZ + local Z),
* case II  — spectator of an ECR *control* (echo refocuses ZZ; Z remains),
* case III — spectator of an ECR *target* (rotary refocuses ZZ; Z remains),
* case IV  — adjacent *controls* of two parallel ECRs (ZZ re-exposed; DD
  impossible because the qubits are active — only EC helps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..compiler.strategies import get_strategy
from ..device.calibration import Device
from ..runtime import Sweep, Task, pipeline_for, run
from ..sim.executor import SimOptions
from ..utils.rng import SeedLike


@dataclass(frozen=True)
class RamseyCase:
    """A Ramsey context: circuit builder inputs plus probe qubits."""

    name: str
    num_qubits: int
    probes: Tuple[int, ...]


CASE_I = RamseyCase("case1_idle_pair", 2, (0, 1))
CASE_II = RamseyCase("case2_control_spectator", 3, (0,))
CASE_III = RamseyCase("case3_target_spectator", 3, (0,))
CASE_IV = RamseyCase("case4_adjacent_controls", 4, (1, 2))


def build_case_circuit(case: RamseyCase, depth: int, tau: float = 500.0) -> Circuit:
    """The Ramsey circuit for a case at the given depth.

    The circuit is in stratified-like form (1q moments between the repeated
    context moments) so that twirling / CA passes have their slots.
    """
    if case.name == CASE_I.name:
        circ = Circuit(2)
        circ.h(0)
        circ.h(1)
        for _ in range(depth):
            circ.delay(tau, 0, new_moment=True)
            circ.delay(tau, 1)
            circ.append_moment([])
        circ.h(0, new_moment=True)
        circ.h(1)
        return circ
    if case.name == CASE_II.name:
        # Qubit layout: 0 = spectator, 1 = control, 2 = target (chain).
        circ = Circuit(3)
        circ.h(0)
        for _ in range(depth):
            circ.ecr(1, 2, new_moment=True)
            circ.append_moment([])
        circ.h(0, new_moment=True)
        return circ
    if case.name == CASE_III.name:
        # Qubit layout: 0 = spectator, 1 = target, 2 = control.
        circ = Circuit(3)
        circ.h(0)
        for _ in range(depth):
            circ.ecr(2, 1, new_moment=True)
            circ.append_moment([])
        circ.h(0, new_moment=True)
        return circ
    if case.name == CASE_IV.name:
        # Chain 0-1-2-3: ECR(1->0) and ECR(2->3) put controls 1, 2 adjacent.
        # Each ECR is self-inverse, so even depths implement the identity on
        # the probes; use H on the controls to make a Ramsey fringe.
        circ = Circuit(4)
        circ.h(1)
        circ.h(2)
        for _ in range(depth):
            circ.ecr(1, 0, new_moment=True)
            circ.ecr(2, 3)
            circ.append_moment([])
        circ.h(1, new_moment=True)
        circ.h(2)
        return circ
    raise ValueError(f"unknown case {case.name}")


def case_device(case: RamseyCase, base: Device, origin: int = 0) -> Device:
    """Extract a linear-chain subdevice of the right size from ``base``.

    ``origin`` selects where on the base device's first row the chain
    starts, so different experiments can probe different qubits.
    """
    qubits = list(range(origin, origin + case.num_qubits))
    return base.subdevice(qubits, name=f"{base.name}/{case.name}")


def ramsey_task(
    case: RamseyCase,
    device: Device,
    depth: int,
    strategy="none",
    tau: float = 500.0,
    twirl: bool = False,
    realizations: int = 1,
    seed: SeedLike = 0,
) -> Task:
    """The runtime :class:`Task` for one Ramsey point.

    Collect tasks across cases, strategies, and depths and hand them to one
    batched :func:`repro.runtime.run` call — every point is independently
    seeded, so batching (and ``workers>1``) leaves the values untouched.
    """
    from dataclasses import replace

    strategy = get_strategy(strategy)
    if not twirl:
        strategy = replace(strategy, twirl=False)
        realizations = 1  # compilation is deterministic without twirling
    return Task(
        build_case_circuit(case, depth, tau),
        bit_targets={"f": {q: 0 for q in case.probes}},
        pipeline=pipeline_for(strategy),
        realizations=max(realizations, 1),
        seed=seed,
        device=device,
        name=f"{case.name}/{strategy.name}/d{depth}",
    )


def ramsey_fidelity(
    case: RamseyCase,
    device: Device,
    depth: int,
    strategy="none",
    tau: float = 500.0,
    twirl: bool = False,
    realizations: int = 1,
    options: Optional[SimOptions] = None,
    seed: SeedLike = 0,
    backend=None,
    workers: Optional[int] = None,
) -> float:
    """Average probability that all probe qubits return to ``|0>``."""
    options = options or SimOptions(shots=64)
    task = ramsey_task(
        case, device, depth, strategy,
        tau=tau, twirl=twirl, realizations=realizations, seed=seed,
    )
    batch = run(task, options=options, backend=backend, workers=workers)
    return float(batch.results[0].values["f"])


def ramsey_curve(
    case: RamseyCase,
    device: Device,
    depths: Sequence[int],
    strategy="none",
    tau: float = 500.0,
    twirl: bool = False,
    realizations: int = 1,
    options: Optional[SimOptions] = None,
    seed: SeedLike = 0,
    backend=None,
    workers: Optional[int] = None,
) -> List[float]:
    """Ramsey fidelity versus depth for one strategy, as one batched sweep."""
    options = options or SimOptions(shots=64)
    swept = Sweep(
        {"depth": list(depths)},
        lambda depth: ramsey_task(
            case, device, depth, strategy,
            tau=tau, twirl=twirl, realizations=realizations, seed=seed,
        ),
        name=f"ramsey/{case.name}",
    ).run(options=options, backend=backend, workers=workers)
    return [float(v) for v in swept.curve("f")]
