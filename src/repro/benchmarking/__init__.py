"""Benchmarking protocols: Ramsey, layer fidelity, mitigation overhead, spectroscopy."""

from .characterize import (
    ZZMeasurement,
    characterize_device,
    measure_spectator_shift,
    measure_zz_rate,
)
from .layer_fidelity import (
    LayerFidelityResult,
    LayerSpec,
    gamma_from_layer_fidelity,
    measure_layer_fidelity,
    overhead_reduction,
    partition_layer,
)
from .mitigation import DepolarizingFit, fit_global_depolarizing, overhead_ratio
from .ramsey import (
    CASE_I,
    CASE_II,
    CASE_III,
    CASE_IV,
    RamseyCase,
    build_case_circuit,
    case_device,
    ramsey_curve,
    ramsey_fidelity,
)
from .spectroscopy import (
    StarkMeasurement,
    measure_stark_shift,
    parity_beating_signal,
    ramsey_fringe,
)

__all__ = [
    "ZZMeasurement",
    "characterize_device",
    "measure_spectator_shift",
    "measure_zz_rate",
    "LayerFidelityResult",
    "LayerSpec",
    "gamma_from_layer_fidelity",
    "measure_layer_fidelity",
    "overhead_reduction",
    "partition_layer",
    "DepolarizingFit",
    "fit_global_depolarizing",
    "overhead_ratio",
    "CASE_I",
    "CASE_II",
    "CASE_III",
    "CASE_IV",
    "RamseyCase",
    "build_case_circuit",
    "case_device",
    "ramsey_curve",
    "ramsey_fidelity",
    "StarkMeasurement",
    "measure_stark_shift",
    "parity_beating_signal",
    "ramsey_fringe",
]
