"""Crosstalk characterization from simulated experiments.

The paper infers the magnitudes of the static coherent errors "from the
reported backend information" (Sec. II D); that backend information is
itself produced by Ramsey-style characterization. This module closes the
loop inside the simulator: it *measures* ZZ rates and gate-spectator shifts
with the same experiments a calibration pipeline would run, and builds a
calibration-estimated :class:`~repro.device.calibration.Device` whose rates
feed CA-EC — so the compiler can be tested against measured rather than
oracle calibration data.

Protocols:

* **ZZ rate** (conditional Ramsey): prepare the probe in ``|+>``, the
  neighbor in ``|0>`` or ``|1>``, idle for time ``t``, and read the probe's
  phase. Under ``H11`` (eq. 1) the neighbor-conditional phase difference
  evolves at ``2 nu``, isolating the coupling from single-qubit detunings.
* **Spectator shift** (driven Ramsey): the probe's phase velocity while the
  neighbor runs gates gives the combined coupling-Z + Stark shift that
  CA-EC must compensate in cases II/III.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..device.calibration import Device, PairParams
from ..runtime import Sweep, Task
from ..sim.executor import SimOptions
from ..utils.units import TWO_PI

Edge = Tuple[int, int]


def _phase_observables(device: Device, probe: int) -> Dict[str, str]:
    n = device.num_qubits
    label_x = ["I"] * n
    label_y = ["I"] * n
    label_x[n - 1 - probe] = "X"
    label_y[n - 1 - probe] = "Y"
    return {"x": "".join(label_x), "y": "".join(label_y)}


def _phase(result) -> float:
    """Probe phase from <X> and <Y> after a Ramsey evolution (radians)."""
    return math.atan2(result.values["y"], result.values["x"])


def _conditional_ramsey(
    num_qubits: int, probe: int, neighbor: int, idle_time: float, excited: bool
) -> Circuit:
    circ = Circuit(num_qubits)
    circ.h(probe)
    if excited:
        circ.x(neighbor)
    circ.delay(idle_time, probe, new_moment=True)
    circ.delay(idle_time, neighbor)
    return circ


@dataclass
class ZZMeasurement:
    """Estimated ZZ rate with the residual fit error."""

    rate: float  # GHz
    phase_residual: float


def measure_zz_rate(
    device: Device,
    probe: int,
    neighbor: int,
    times: Sequence[float] = (200.0, 400.0, 600.0, 800.0),
    options: Optional[SimOptions] = None,
) -> ZZMeasurement:
    """Conditional-Ramsey estimate of the always-on ZZ rate.

    The phase difference between neighbor-excited and neighbor-ground
    evolutions is ``2 theta = 2 * 2 pi nu t`` (the ``|11>`` sector of eq. 1
    accumulates ``2 theta`` relative to ``|10>``), so a linear fit of the
    conditional phase against time yields ``nu``. Short times keep phases
    unwrapped.
    """
    options = options or SimOptions(
        shots=64, seed=17, dephasing=False, amplitude_damping=False,
        gate_errors=False,
    )
    observables = _phase_observables(device, probe)
    swept = Sweep(
        {"time": list(times), "excited": [False, True]},
        lambda time, excited: Task(
            _conditional_ramsey(device.num_qubits, probe, neighbor, time, excited),
            observables=observables,
        ),
        name="zz_conditional_ramsey",
    ).run(device, options=options)
    diffs = []
    for t in times:
        delta = _phase(swept[(t, True)]) - _phase(swept[(t, False)])
        while delta > math.pi:
            delta -= 2 * math.pi
        while delta < -math.pi:
            delta += 2 * math.pi
        diffs.append(delta)
    times_arr = np.asarray(times, dtype=float)
    slope = float(np.dot(times_arr, diffs) / np.dot(times_arr, times_arr))
    residual = float(
        np.sqrt(np.mean((np.asarray(diffs) - slope * times_arr) ** 2))
    )
    # Conditional phase velocity = -2 * 2 pi nu (both the ZZ and the flipped
    # local term contribute theta each, with our Rz sign convention).
    rate = abs(slope) / (2.0 * TWO_PI)
    return ZZMeasurement(rate=rate, phase_residual=residual)


def measure_spectator_shift(
    device: Device,
    probe: int,
    neighbor: int,
    partner: int,
    chunks: Sequence[int] = (1, 2, 3, 4),
    options: Optional[SimOptions] = None,
) -> float:
    """Phase velocity (GHz) of a spectator while its neighbor runs ECR gates.

    This is the net case-II error rate (coupling Z + Stark) that CA-EC
    compensates per gate layer.
    """
    options = options or SimOptions(
        shots=64, seed=18, dephasing=False, amplitude_damping=False,
        gate_errors=False,
    )
    gate_time = device.durations.twoq

    def build(count):
        circ = Circuit(device.num_qubits)
        circ.h(probe)
        for _ in range(count):
            circ.ecr(neighbor, partner, new_moment=True)
        return Task(circ, observables=_phase_observables(device, probe))

    swept = Sweep(
        {"count": list(chunks)}, build, name="spectator_shift"
    ).run(device, options=options)
    phases = [_phase(swept[count]) for count in chunks]
    durations = np.asarray(chunks, dtype=float) * gate_time
    unwrapped = np.unwrap(phases)
    slope = float(
        np.dot(durations, unwrapped) / np.dot(durations, durations)
    )
    return abs(slope) / TWO_PI


def characterize_device(
    device: Device,
    edges: Optional[Sequence[Edge]] = None,
    times: Sequence[float] = (200.0, 400.0, 600.0, 800.0),
    options: Optional[SimOptions] = None,
) -> Device:
    """Rebuild a device whose pair ZZ rates come from *measurement*.

    Runs the conditional-Ramsey protocol on every (or the listed) coupled
    pair of ``device`` and returns a copy with the measured rates installed.
    Feeding this to :func:`~repro.compiler.ca_ec.apply_ca_ec` emulates the
    real workflow where compensation angles come from backend data.
    """
    edges = list(edges) if edges is not None else list(device.pairs)
    overrides: Dict[Edge, PairParams] = {}
    for a, b in edges:
        measurement = measure_zz_rate(device, a, b, times=times, options=options)
        overrides[(a, b)] = replace(
            device.pair(a, b), zz_rate=measurement.rate
        )
    return device.with_pair_overrides(overrides)
