"""Random-number-generator helpers.

Every stochastic component of the library (noise sampling, twirl sampling,
synthetic calibrations) accepts a ``seed`` argument that is normalized through
:func:`as_generator` so results are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives a fresh nondeterministic generator, an ``int`` or
    ``SeedSequence`` seeds a new PCG64 generator, and an existing generator is
    passed through unchanged (so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Split ``rng`` into ``count`` independent child generators."""
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(base: Optional[int], *salt: int) -> Optional[int]:
    """Deterministically derive a child seed from ``base`` and salt values.

    Returns ``None`` when ``base`` is ``None`` so unseeded remains unseeded.
    """
    if base is None:
        return None
    mixed = np.random.SeedSequence([int(base), *[int(s) for s in salt]])
    return int(mixed.generate_state(1)[0])
