"""Shared utilities: RNG handling, linear algebra, units, fitting, paths."""

from .fitting import DecayFit, dominant_frequency, fit_exponential_decay
from .paths import default_plan_cache_dir
from .linalg import (
    allclose_up_to_global_phase,
    is_unitary,
    kron_all,
    random_unitary,
    state_fidelity,
)
from .rng import as_generator, derive_seed, spawn
from .units import KHZ, MHZ, TWO_PI, US, khz, phase_angle, us

__all__ = [
    "DecayFit",
    "dominant_frequency",
    "fit_exponential_decay",
    "allclose_up_to_global_phase",
    "is_unitary",
    "kron_all",
    "random_unitary",
    "state_fidelity",
    "as_generator",
    "default_plan_cache_dir",
    "derive_seed",
    "spawn",
    "KHZ",
    "MHZ",
    "TWO_PI",
    "US",
    "khz",
    "phase_angle",
    "us",
]
