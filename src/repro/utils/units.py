"""Unit conventions.

Internally the library uses **nanoseconds** for time and **GHz** (1/ns) for
frequency. Device calibration data is typically quoted in kHz and us; the
helpers here convert to the internal convention.

The phase accumulated by an always-on coupling of ordinary frequency ``nu``
over duration ``tau`` is ``theta = 2 pi nu tau`` (paper Sec. II A).
"""

from __future__ import annotations

import math

TWO_PI = 2.0 * math.pi

# Conversions into internal units (ns, GHz).
KHZ = 1e-6  # 1 kHz in GHz
MHZ = 1e-3  # 1 MHz in GHz
US = 1e3  # 1 us in ns
MS = 1e6  # 1 ms in ns


def khz(value: float) -> float:
    """Convert a frequency quoted in kHz to internal GHz units."""
    return value * KHZ


def us(value: float) -> float:
    """Convert a duration quoted in microseconds to internal ns units."""
    return value * US


def phase_angle(frequency_ghz: float, duration_ns: float) -> float:
    """Phase ``2 pi nu tau`` accumulated by frequency ``nu`` over ``tau``."""
    return TWO_PI * frequency_ghz * duration_ns
