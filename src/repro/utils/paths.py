"""Filesystem locations for persistent caches.

The disk-backed plan store (:mod:`repro.runtime.store`) keeps compiled
schedules under a per-user cache directory so repeated CLI invocations
warm-start their compile stage. Resolution order:

1. ``REPRO_PLAN_CACHE_DIR`` environment variable (explicit override);
2. ``$XDG_CACHE_HOME/repro-plans`` when ``XDG_CACHE_HOME`` is set;
3. ``~/.cache/repro-plans`` otherwise.
"""

from __future__ import annotations

import os
from pathlib import Path


def default_plan_cache_dir() -> Path:
    """The default directory of the on-disk plan store.

    Returns:
        The resolved cache path. The directory is *not* created here; the
        store creates it lazily on first write, so merely importing the
        library never touches the filesystem.

    Example:
        >>> default_plan_cache_dir().name
        'repro-plans'
    """
    env = os.environ.get("REPRO_PLAN_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-plans"
