"""Small linear-algebra helpers used across the library."""

from __future__ import annotations

import numpy as np

ATOL = 1e-9


def is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return ``True`` if ``matrix`` is unitary within tolerance."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-7
) -> bool:
    """Return ``True`` if ``a == exp(i phi) * b`` for some real ``phi``."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    # Find the largest-magnitude entry of b to extract the relative phase.
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = a[idx] / b[idx]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a, phase * b, atol=atol))


def kron_all(*matrices: np.ndarray) -> np.ndarray:
    """Kronecker product of all arguments, left to right."""
    out = np.array([[1.0 + 0j]])
    for m in matrices:
        out = np.kron(out, m)
    return out


def state_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Fidelity ``|<a|b>|^2`` between two pure statevectors."""
    a = np.asarray(a, dtype=complex).ravel()
    b = np.asarray(b, dtype=complex).ravel()
    return float(abs(np.vdot(a, b)) ** 2)


def projector_expectation(state: np.ndarray, target: np.ndarray) -> float:
    """Overlap probability of ``state`` with pure ``target``."""
    return state_fidelity(state, target)


def random_unitary(dim: int, rng: np.random.Generator) -> np.ndarray:
    """Haar-random unitary of dimension ``dim``."""
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    d = np.diagonal(r)
    return q * (d / np.abs(d))
