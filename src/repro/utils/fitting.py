"""Curve-fitting helpers for decay and oscillation analysis.

Used by the layer-fidelity protocol (exponential decays, paper Sec. V C) and
by the mitigation-overhead estimate (global depolarizing model ``A lambda^d``,
paper Sec. V B / Ref. [62]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import curve_fit


@dataclass
class DecayFit:
    """Result of fitting ``y = amplitude * rate**x + offset``."""

    amplitude: float
    rate: float
    offset: float
    residual: float

    def __call__(self, x):
        return self.amplitude * self.rate ** np.asarray(x, dtype=float) + self.offset


def fit_exponential_decay(
    x: Sequence[float],
    y: Sequence[float],
    offset: Optional[float] = None,
) -> DecayFit:
    """Fit ``y = A * r**x (+ B)`` with ``0 <= r <= 1``.

    When ``offset`` is given it is held fixed (pass ``0.0`` for decays to
    zero); otherwise it is fitted.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need at least two points with matching lengths")

    span = max(np.ptp(x), 1.0)
    y0, y1 = y[np.argmin(x)], y[np.argmax(x)]
    base = offset if offset is not None else float(min(y.min(), 0.0))
    denom = (y0 - base) if abs(y0 - base) > 1e-12 else 1.0
    guess_rate = float(np.clip(abs((y1 - base) / denom) ** (1.0 / span), 1e-6, 1.0))
    guess_amp = float(max(y0 - base, 1e-6))

    if offset is None:
        def model(xv, a, r, b):
            return a * r**xv + b

        p0 = (guess_amp, guess_rate, base)
        bounds = ([0.0, 0.0, -1.0], [2.0, 1.0, 1.0])
    else:
        def model(xv, a, r):
            return a * r**xv + offset

        p0 = (guess_amp, guess_rate)
        bounds = ([0.0, 0.0], [2.0, 1.0])

    try:
        popt, _ = curve_fit(model, x, y, p0=p0, bounds=bounds, maxfev=20000)
    except RuntimeError:
        popt = p0
    if offset is None:
        amp, rate, off = popt
    else:
        (amp, rate), off = popt, offset
    residual = float(np.sqrt(np.mean((model(x, *popt) - y) ** 2)))
    return DecayFit(amplitude=float(amp), rate=float(rate), offset=float(off),
                    residual=residual)


def dominant_frequency(
    times: Sequence[float], signal: Sequence[float]
) -> float:
    """Dominant oscillation frequency of ``signal(times)`` via FFT.

    ``times`` must be uniformly spaced. Used for the Stark-shift spectroscopy
    reproduction (paper Fig. 4a).
    """
    times = np.asarray(times, dtype=float)
    signal = np.asarray(signal, dtype=float)
    if len(times) < 4:
        raise ValueError("need at least four samples")
    dt = float(times[1] - times[0])
    if not np.allclose(np.diff(times), dt, rtol=1e-6):
        raise ValueError("times must be uniformly spaced")
    centered = signal - signal.mean()
    spectrum = np.abs(np.fft.rfft(centered))
    freqs = np.fft.rfftfreq(len(signal), d=dt)
    # Refine the argmax peak with a quadratic (parabolic) interpolation.
    k = int(np.argmax(spectrum[1:]) + 1)
    if 1 <= k < len(spectrum) - 1:
        alpha, beta, gamma = spectrum[k - 1], spectrum[k], spectrum[k + 1]
        denom = alpha - 2 * beta + gamma
        shift = 0.5 * (alpha - gamma) / denom if abs(denom) > 1e-12 else 0.0
        return float((k + shift) * (freqs[1] - freqs[0]))
    return float(freqs[k])
