"""Scheduling: attach wall-clock timing to a layered circuit.

A :class:`ScheduledCircuit` pairs each moment with a start time and duration
(in ns). Durations come from a :class:`Durations` table (typically derived
from device calibration). This is the representation both the noise
simulator and the context-aware passes consume: idle windows are simply
moments (or portions of moments) in which a qubit has no instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .circuit import Circuit, Instruction, Moment

# Virtual gates (frame updates) take zero wall-clock time.
_VIRTUAL_GATES = {"rz", "z", "s", "sdg", "t", "id"}


@dataclass(frozen=True)
class Durations:
    """Gate durations in ns.

    Defaults follow typical IBM Eagle-class numbers: ~50 ns single-qubit
    layers, ~500 ns ECR (matching the tau = 500 ns idle intervals of the
    paper's Fig. 3c), 4 us readout (paper Sec. V D) and ~1.15 us classical
    feedforward (the value the paper's Fig. 9c calibrates).
    """

    oneq: float = 50.0
    twoq: float = 500.0
    measure: float = 4000.0
    feedforward: float = 1150.0
    canonical_factor: float = 3.0  # a can gate = three CNOT/ECR pulses

    def of_instruction(self, inst: Instruction) -> float:
        gate = inst.gate
        if gate.duration_override is not None:
            return float(gate.duration_override)
        if gate.is_delay:
            return float(gate.params[0])
        if gate.is_measurement:
            return self.measure
        if gate.name in _VIRTUAL_GATES:
            # Virtual frame updates are free even when classically
            # conditioned: the controller folds them into later pulses.
            return 0.0
        if inst.condition is not None:
            return self.feedforward
        if gate.name == "dd":
            return 0.0  # pulses live inside an idle window
        if gate.name == "can":
            return self.twoq * self.canonical_factor
        if gate.num_qubits == 2:
            return self.twoq
        return self.oneq

    def of_moment(self, moment: Moment) -> float:
        if len(moment) == 0:
            return 0.0
        return max(self.of_instruction(inst) for inst in moment)


@dataclass(frozen=True)
class ScheduledMoment:
    """A moment with absolute start time and duration (ns)."""

    index: int
    moment: Moment
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class ScheduledCircuit:
    """A circuit with per-moment timing."""

    def __init__(self, circuit: Circuit, durations: Optional[Durations] = None):
        self.circuit = circuit
        self.durations = durations or Durations()
        self._rebuild()

    def _rebuild(self) -> None:
        self.scheduled: List[ScheduledMoment] = []
        t = 0.0
        for i, moment in enumerate(self.circuit.moments):
            d = self.durations.of_moment(moment)
            self.scheduled.append(ScheduledMoment(i, moment, t, d))
            t += d
        self.total_duration = t

    def refresh(self) -> None:
        """Recompute timing after in-place circuit edits."""
        self._rebuild()

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    def __iter__(self) -> Iterator[ScheduledMoment]:
        return iter(self.scheduled)

    def __len__(self) -> int:
        return len(self.scheduled)

    def __getitem__(self, idx: int) -> ScheduledMoment:
        return self.scheduled[idx]

    def idle_qubits(self, index: int) -> frozenset:
        """Qubits with no instruction in moment ``index``."""
        occupied = self.scheduled[index].moment.qubits
        return frozenset(q for q in range(self.num_qubits) if q not in occupied)

    def idle_windows(self, min_duration: float = 0.0) -> List[Tuple[int, int, float]]:
        """All per-qubit idle windows as ``(moment_index, qubit, duration)``.

        A qubit is idle in a moment when it has no instruction there (or only
        an explicit delay); only windows of positive duration at least
        ``min_duration`` are reported.
        """
        windows = []
        for sm in self.scheduled:
            if sm.duration <= 0.0:
                continue
            occupied = sm.moment.qubits
            for q in range(self.num_qubits):
                inst = sm.moment.instruction_on(q)
                is_idle = q not in occupied or (inst is not None and inst.gate.is_delay)
                if is_idle and sm.duration >= min_duration:
                    windows.append((sm.index, q, sm.duration))
        return windows


def schedule(circuit: Circuit, durations: Optional[Durations] = None) -> ScheduledCircuit:
    """Schedule ``circuit`` with the given (or default) durations."""
    return ScheduledCircuit(circuit, durations)
