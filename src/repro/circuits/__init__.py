"""Circuit IR: gates, moment-based circuits, synthesis, and scheduling."""

from . import gates
from .circuit import Circuit, Instruction, Moment
from .draw import draw, summary
from .euler import EulerAngles, euler_angles, fuse
from .schedule import Durations, ScheduledCircuit, ScheduledMoment, schedule
from .stratify import layer_kind, stratify, two_qubit_layers, validate_stratified
from .weyl import (
    absorb_rzz_after,
    absorb_rzz_before,
    canonical_params,
    cnot_synthesis,
    compensate_rzz,
    heisenberg_params,
    is_canonical,
)

__all__ = [
    "gates",
    "Circuit",
    "draw",
    "summary",
    "Instruction",
    "Moment",
    "EulerAngles",
    "euler_angles",
    "fuse",
    "Durations",
    "ScheduledCircuit",
    "ScheduledMoment",
    "schedule",
    "layer_kind",
    "stratify",
    "two_qubit_layers",
    "validate_stratified",
    "absorb_rzz_after",
    "absorb_rzz_before",
    "canonical_params",
    "cnot_synthesis",
    "compensate_rzz",
    "heisenberg_params",
    "is_canonical",
]
