"""Stratification of circuits into alternating 1q / 2q layers (paper Fig. 2).

Error-mitigation workflows (PEC/PEA) and both context-aware passes operate on
circuits arranged as alternating layers of arbitrary single-qubit gates and
disjoint Clifford two-qubit gates. :func:`stratify` rewrites an arbitrary
circuit into this form, fusing runs of single-qubit gates into one ``u`` gate
per qubit per layer, while preserving the overall unitary (up to global
phase).

Measurements, delays, and classically conditioned instructions act as
barriers and are emitted as standalone layers.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from . import gates as g
from .circuit import Circuit, Instruction, Moment
from .euler import euler_angles


def _emit_1q_layer(pending: Dict[int, np.ndarray], out: Circuit) -> None:
    """Flush accumulated single-qubit matrices as a fused 1q moment."""
    instructions = []
    for qubit in sorted(pending):
        matrix = pending[qubit]
        # rtol must be zero: tiny-but-real rotations (e.g. small virtual Rz
        # compensations) are not identity.
        if np.allclose(matrix, np.eye(2), rtol=0.0, atol=1e-12):
            continue
        angles = euler_angles(matrix)
        instructions.append(
            Instruction(g.u(angles.theta, angles.phi, angles.lam), (qubit,))
        )
    out.append_moment(instructions)
    pending.clear()


def stratify(circuit: Circuit, fuse: bool = True) -> Circuit:
    """Return an equivalent circuit with alternating 1q / 2q layers.

    The output begins and ends with a (possibly empty) 1q layer, and each 2q
    layer is preceded and followed by a 1q layer, giving the twirling pass
    its insertion slots. Barrier-like instructions (measure, delay,
    conditioned gates) flush the layer structure and are emitted verbatim.

    When ``fuse`` is ``False``, single-qubit gates are kept as-is (still
    grouped into 1q layers) instead of being fused into ``u`` gates; this is
    mostly useful for debugging.
    """
    out = Circuit(circuit.num_qubits, circuit.num_clbits)
    pending: Dict[int, np.ndarray] = {}
    pending_raw: Dict[int, List[Instruction]] = {}
    open_2q: List[Instruction] = []
    open_2q_qubits: set = set()

    def flush_1q() -> None:
        if fuse:
            _emit_1q_layer(pending, out)
        else:
            instructions = [i for q in sorted(pending_raw) for i in pending_raw[q]]
            # Unfused layers may need several moments if a qubit has a run of
            # gates; emit sequentially.
            by_depth: Dict[int, List[Instruction]] = {}
            counts: Dict[int, int] = {}
            for inst in instructions:
                qubit = inst.qubits[0]
                depth = counts.get(qubit, 0)
                counts[qubit] = depth + 1
                by_depth.setdefault(depth, []).append(inst)
            if not by_depth:
                out.append_moment([])
            for depth in sorted(by_depth):
                out.append_moment(by_depth[depth])
            pending_raw.clear()
            pending.clear()

    def flush_2q() -> None:
        nonlocal open_2q, open_2q_qubits
        out.append_moment(open_2q)
        open_2q = []
        open_2q_qubits = set()

    def flush_all() -> None:
        flush_1q()
        if open_2q:
            flush_2q()
        else:
            # Keep alternation: nothing to do; the next 1q layer will merge.
            pass

    def close_layer_pair() -> None:
        """Emit the current (1q, 2q) layer pair and start fresh."""
        flush_1q()
        flush_2q()

    for moment in circuit.moments:
        for inst in moment:
            gate = inst.gate
            barrier_like = (
                gate.is_measurement or gate.is_delay or inst.condition is not None
            )
            if barrier_like:
                if open_2q:
                    close_layer_pair()
                flush_1q()
                out.append_moment([inst])
                continue
            if gate.num_qubits == 1:
                qubit = inst.qubits[0]
                if qubit in open_2q_qubits:
                    close_layer_pair()
                pending.setdefault(qubit, np.eye(2, dtype=complex))
                pending[qubit] = gate.matrix @ pending[qubit]
                pending_raw.setdefault(qubit, []).append(inst)
            elif gate.num_qubits == 2:
                a, b = inst.qubits
                if a in open_2q_qubits or b in open_2q_qubits:
                    close_layer_pair()
                # Any pending 1q gates on a or b belong to the layer before
                # this 2q layer; qubits not in the open 2q layer commute.
                open_2q.append(inst)
                open_2q_qubits.update(inst.qubits)
            else:
                raise ValueError(f"cannot stratify {gate.num_qubits}-qubit gate")
        # moments are only an input grouping; ordering per qubit is preserved
    if open_2q:
        close_layer_pair()
        out.append_moment([])  # trailing 1q layer
    else:
        flush_1q()
    return out


def layer_kind(moment: Moment) -> str:
    """Classify a moment: ``"2q"``, ``"measure"``, ``"delay"``, or ``"1q"``."""
    if moment.has_two_qubit_gate:
        return "2q"
    if moment.has_measurement:
        return "measure"
    if any(i.gate.is_delay for i in moment):
        return "delay"
    return "1q"


def two_qubit_layers(circuit: Circuit) -> List[int]:
    """Indices of the 2q layers of a stratified circuit."""
    return [i for i, m in enumerate(circuit.moments) if layer_kind(m) == "2q"]


def validate_stratified(circuit: Circuit) -> None:
    """Raise ``ValueError`` if ``circuit`` is not in stratified form."""
    for i, moment in enumerate(circuit.moments):
        kinds = set()
        for inst in moment:
            if inst.gate.num_qubits == 2:
                kinds.add("2q")
            elif inst.gate.is_measurement:
                kinds.add("measure")
            elif inst.gate.is_delay:
                kinds.add("delay")
            else:
                kinds.add("1q")
        if "2q" in kinds and ("1q" in kinds or "measure" in kinds):
            raise ValueError(f"moment {i} mixes 2q gates with other gates")
