"""Moment-based circuit IR.

A :class:`Circuit` is a sequence of :class:`Moment` objects; each moment is a
set of instructions acting on disjoint qubits that execute concurrently. The
layer-centric structure mirrors the stratified circuits that the paper's
error-mitigation workflow operates on (paper Fig. 2), and is the natural
substrate for the context-aware passes: both CA-DD and CA-EC reason about
"what else is happening in this layer".

Classical control (for dynamic circuits, paper Sec. V D) is expressed with
measurement instructions writing to classical bits and conditioned
instructions that execute only when a classical bit holds a given value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import gates as g
from .gates import Gate


@dataclass(frozen=True)
class Instruction:
    """A gate applied to specific qubits, with optional classical control.

    Attributes:
        gate: the operation.
        qubits: target qubits, in gate order.
        clbits: classical bits (measurement results are written to these).
        condition: optional ``(clbit, value)``; the instruction executes only
            when the classical bit equals ``value``.
        tag: provenance label (``"twirl"``, ``"dd"``, ``"compensation"``, ...)
            used by compiler passes and by cost accounting.
    """

    gate: Gate
    qubits: Tuple[int, ...]
    clbits: Tuple[int, ...] = ()
    condition: Optional[Tuple[int, int]] = None
    tag: str = ""

    def __post_init__(self):
        if len(self.qubits) != self.gate.num_qubits:
            raise ValueError(
                f"gate {self.gate.name} expects {self.gate.num_qubits} qubits,"
                f" got {self.qubits}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in {self.qubits}")
        if self.gate.is_measurement and len(self.clbits) != 1:
            raise ValueError("measurement needs exactly one classical bit")

    def with_tag(self, tag: str) -> "Instruction":
        return replace(self, tag=tag)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cond = f" if c{self.condition[0]}=={self.condition[1]}" if self.condition else ""
        return f"{self.gate!r}@{list(self.qubits)}{cond}"


class Moment:
    """Instructions executing concurrently on disjoint qubits."""

    def __init__(self, instructions: Iterable[Instruction] = ()):
        self._instructions: List[Instruction] = list(instructions)
        self._validate()

    def _validate(self) -> None:
        seen = set()
        for inst in self._instructions:
            for q in inst.qubits:
                if q in seen:
                    raise ValueError(f"qubit {q} used twice in one moment")
                seen.add(q)

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return tuple(self._instructions)

    @property
    def qubits(self) -> frozenset:
        return frozenset(q for i in self._instructions for q in i.qubits)

    def instruction_on(self, qubit: int) -> Optional[Instruction]:
        """The instruction occupying ``qubit``, or ``None`` if idle here."""
        for inst in self._instructions:
            if qubit in inst.qubits:
                return inst
        return None

    def add(self, inst: Instruction) -> None:
        """Add an instruction; raises if its qubits are already occupied."""
        self._instructions.append(inst)
        try:
            self._validate()
        except ValueError:
            self._instructions.pop()
            raise

    def remove(self, inst: Instruction) -> None:
        self._instructions.remove(inst)

    def replace(self, old: Instruction, new: Instruction) -> None:
        idx = self._instructions.index(old)
        self._instructions[idx] = new
        self._validate()

    @property
    def has_two_qubit_gate(self) -> bool:
        return any(i.gate.num_qubits == 2 for i in self._instructions)

    @property
    def has_measurement(self) -> bool:
        return any(i.gate.is_measurement for i in self._instructions)

    def copy(self) -> "Moment":
        return Moment(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Moment({self._instructions})"


class Circuit:
    """A quantum circuit over ``num_qubits`` qubits and ``num_clbits`` bits."""

    def __init__(self, num_qubits: int, num_clbits: int = 0):
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits)
        self.moments: List[Moment] = []

    # -- construction -------------------------------------------------------

    def append(
        self,
        gate: Gate,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
        condition: Optional[Tuple[int, int]] = None,
        tag: str = "",
        new_moment: bool = False,
    ) -> Instruction:
        """Append an instruction, packing into the last moment if possible.

        An instruction goes into the final moment when none of its qubits are
        occupied there and no measurement ordering is violated; otherwise a
        new moment is started. Pass ``new_moment=True`` to force a fresh
        moment (used to build explicit layers).
        """
        self._check_bounds(qubits, clbits, condition)
        inst = Instruction(gate, tuple(qubits), tuple(clbits), condition, tag)
        if new_moment or not self.moments:
            self.moments.append(Moment([inst]))
            return inst
        last = self.moments[-1]
        blocked = bool(last.qubits & set(qubits))
        # Keep measurements and conditioned gates in their own ordering:
        # a conditioned gate must come strictly after the moment measuring
        # its classical bit.
        if condition is not None and last.has_measurement:
            blocked = True
        if gate.is_measurement and any(i.condition for i in last):
            blocked = True
        if blocked:
            self.moments.append(Moment([inst]))
        else:
            last.add(inst)
        return inst

    def append_moment(self, instructions: Iterable[Instruction]) -> Moment:
        """Append a fully formed moment."""
        moment = Moment(instructions)
        for inst in moment:
            self._check_bounds(inst.qubits, inst.clbits, inst.condition)
        self.moments.append(moment)
        return moment

    def barrier(self) -> None:
        """Force the next appended instruction to start a new moment."""
        if self.moments and len(self.moments[-1]) > 0:
            self.moments.append(Moment())

    def _check_bounds(self, qubits, clbits, condition) -> None:
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit {q} out of range [0, {self.num_qubits})")
        for c in clbits:
            if not 0 <= c < self.num_clbits:
                raise ValueError(f"clbit {c} out of range [0, {self.num_clbits})")
        if condition is not None and not 0 <= condition[0] < self.num_clbits:
            raise ValueError(f"condition clbit {condition[0]} out of range")

    # -- convenience gate appenders -----------------------------------------

    def h(self, q: int, **kw) -> None:
        self.append(g.H, [q], **kw)

    def x(self, q: int, **kw) -> None:
        self.append(g.X, [q], **kw)

    def y(self, q: int, **kw) -> None:
        self.append(g.Y, [q], **kw)

    def z(self, q: int, **kw) -> None:
        self.append(g.Z, [q], **kw)

    def s(self, q: int, **kw) -> None:
        self.append(g.S, [q], **kw)

    def sx(self, q: int, **kw) -> None:
        self.append(g.SX, [q], **kw)

    def rz(self, theta: float, q: int, **kw) -> None:
        self.append(g.rz(theta), [q], **kw)

    def rx(self, theta: float, q: int, **kw) -> None:
        self.append(g.rx(theta), [q], **kw)

    def ry(self, theta: float, q: int, **kw) -> None:
        self.append(g.ry(theta), [q], **kw)

    def u(self, theta: float, phi: float, lam: float, q: int, **kw) -> None:
        self.append(g.u(theta, phi, lam), [q], **kw)

    def cx(self, control: int, target: int, **kw) -> None:
        self.append(g.CX, [control, target], **kw)

    def ecr(self, control: int, target: int, **kw) -> None:
        self.append(g.ECR, [control, target], **kw)

    def rzz(self, theta: float, q0: int, q1: int, **kw) -> None:
        self.append(g.rzz(theta), [q0, q1], **kw)

    def can(self, alpha: float, beta: float, gamma: float, q0: int, q1: int, **kw) -> None:
        self.append(g.canonical(alpha, beta, gamma), [q0, q1], **kw)

    def measure(self, q: int, c: int, **kw) -> None:
        self.append(g.measure(), [q], clbits=[c], **kw)

    def delay(self, duration: float, q: int, **kw) -> None:
        self.append(g.delay(duration), [q], **kw)

    def measure_all(self) -> None:
        if self.num_clbits < self.num_qubits:
            raise ValueError("not enough classical bits for measure_all")
        self.barrier()
        for q in range(self.num_qubits):
            self.append(g.measure(), [q], clbits=[q])

    # -- inspection ----------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.moments)

    def count_gates(self, name: Optional[str] = None, tag: Optional[str] = None) -> int:
        """Count instructions, optionally filtered by gate name and/or tag."""
        total = 0
        for moment in self.moments:
            for inst in moment:
                if name is not None and inst.gate.name != name:
                    continue
                if tag is not None and inst.tag != tag:
                    continue
                total += 1
        return total

    def instructions(self) -> Iterator[Instruction]:
        for moment in self.moments:
            yield from moment

    def has_dynamics(self) -> bool:
        """True when the circuit contains measurement or classical control."""
        return any(
            inst.gate.is_measurement or inst.condition is not None
            for inst in self.instructions()
        )

    def copy(self) -> "Circuit":
        out = Circuit(self.num_qubits, self.num_clbits)
        out.moments = [m.copy() for m in self.moments]
        return out

    def unitary(self) -> np.ndarray:
        """Full unitary of a measurement-free circuit (for testing).

        Qubit 0 is the least-significant bit of the basis-state index.
        """
        if self.has_dynamics():
            raise ValueError("circuit with measurements has no unitary")
        dim = 2**self.num_qubits
        total = np.eye(dim, dtype=complex)
        for moment in self.moments:
            for inst in moment:
                if inst.gate.matrix is None:
                    continue  # delays
                total = _embed(inst.gate.matrix, inst.qubits, self.num_qubits) @ total
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"Circuit({self.num_qubits} qubits, {len(self.moments)} moments)"]
        for i, moment in enumerate(self.moments):
            lines.append(f"  {i}: {list(moment)}")
        return "\n".join(lines)


def _embed(matrix: np.ndarray, qubits: Tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Embed a small-gate matrix into the full Hilbert space.

    Matrix convention: first listed qubit is the left Kronecker factor.
    State convention: qubit 0 is the least significant index bit.
    """
    k = len(qubits)
    dim = 2**num_qubits
    out = np.zeros((dim, dim), dtype=complex)
    other = [q for q in range(num_qubits) if q not in qubits]
    for col in range(2**k):
        # Bits of `col`, first listed qubit = most significant within the gate.
        col_bits = [(col >> (k - 1 - i)) & 1 for i in range(k)]
        for rest in range(2 ** len(other)):
            base = 0
            for i, q in enumerate(other):
                base |= ((rest >> i) & 1) << q
            src = base
            for q, b in zip(qubits, col_bits):
                src |= b << q
            column = matrix[:, col]
            for row in range(2**k):
                row_bits = [(row >> (k - 1 - i)) & 1 for i in range(k)]
                dst = base
                for q, b in zip(qubits, row_bits):
                    dst |= b << q
                out[dst, src] += column[row]
    return out
