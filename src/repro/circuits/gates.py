"""Gate library.

Every gate is a :class:`Gate` carrying a name, parameters, and (for unitary
gates) a matrix. Two-qubit matrices use the convention that the **first
listed qubit is the left Kronecker factor**; the statevector engine maps this
onto its own axis ordering.

Non-unitary circuit elements (measurement, delays, dynamical-decoupling
sequences) are also gates here, distinguished by flags, so that a single
instruction container can hold everything that occupies a qubit in a moment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

_SQ2 = math.sqrt(2.0)

# ---------------------------------------------------------------------------
# Elementary matrices
# ---------------------------------------------------------------------------

I2 = np.eye(2, dtype=complex)
X_MAT = np.array([[0, 1], [1, 0]], dtype=complex)
Y_MAT = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z_MAT = np.array([[1, 0], [0, -1]], dtype=complex)
H_MAT = np.array([[1, 1], [1, -1]], dtype=complex) / _SQ2
S_MAT = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG_MAT = S_MAT.conj().T
T_MAT = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
SX_MAT = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
SXDG_MAT = SX_MAT.conj().T

PAULI_MATRICES = {"I": I2, "X": X_MAT, "Y": Y_MAT, "Z": Z_MAT}


def rx_matrix(theta: float) -> np.ndarray:
    """``exp(-i theta X / 2)``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry_matrix(theta: float) -> np.ndarray:
    """``exp(-i theta Y / 2)``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz_matrix(theta: float) -> np.ndarray:
    """``exp(-i theta Z / 2)``."""
    return np.array(
        [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]], dtype=complex
    )


def rzz_matrix(theta: float) -> np.ndarray:
    """``exp(-i theta Z(x)Z / 2)`` (diagonal)."""
    p = np.exp(-1j * theta / 2)
    m = np.exp(1j * theta / 2)
    return np.diag([p, m, m, p]).astype(complex)


CX_MAT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
CZ_MAT = np.diag([1, 1, 1, -1]).astype(complex)

# Echoed cross-resonance gate, Hermitian and locally equivalent to CNOT:
# ECR = (I(x)X + X(x)Y) / sqrt(2), first factor on the control qubit.
ECR_MAT = (np.kron(I2, X_MAT) + np.kron(X_MAT, Y_MAT)) / _SQ2


def canonical_matrix(alpha: float, beta: float, gamma: float) -> np.ndarray:
    """Canonical two-qubit gate ``exp[i(a XX + b YY + c ZZ)]`` (paper eq. 5)."""
    xx = np.kron(X_MAT, X_MAT)
    yy = np.kron(Y_MAT, Y_MAT)
    zz = np.kron(Z_MAT, Z_MAT)
    generator = alpha * xx + beta * yy + gamma * zz
    # XX, YY, ZZ commute, and each squares to I, so expm splits exactly; use
    # eigen-free evaluation via the shared eigenbasis of the magic basis.
    from scipy.linalg import expm

    return expm(1j * generator)


def u_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic SU(2) rotation ``U(theta, phi, lam) = Rz(phi) Ry(theta) Rz(lam)``."""
    return rz_matrix(phi) @ ry_matrix(theta) @ rz_matrix(lam)


# ---------------------------------------------------------------------------
# Gate object
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Gate:
    """An operation that occupies one or more qubits for a moment.

    Attributes:
        name: canonical lowercase name (``"ecr"``, ``"rz"``, ...).
        num_qubits: number of qubits the gate acts on.
        params: numeric parameters (rotation angles etc.).
        matrix: unitary matrix, or ``None`` for non-unitary elements.
        is_measurement: whether the gate collapses its qubit.
        is_delay: whether the gate is an explicit idle period (param is the
            duration in ns).
        dd_fractions: for dynamical-decoupling sequences, the time fractions
            within the moment at which (instantaneous) X pulses are applied.
        flip_fractions: time fractions at which the qubit's Z-error sign
            trajectory flips (for multi-qubit gates: per listed qubit).
        duration_override: explicit duration in ns (e.g. a DD sequence that
            fills a known idle window, or a pulse-stretched ``rzz``);
            ``None`` means the scheduler's default for the gate class.
        error_scale: multiplier on the gate's depolarizing probability; a
            pulse-stretched ``Rzz(theta)`` compensation uses
            ``|theta| / (pi/2)`` since its pulse is proportionally shorter
            than a full two-qubit gate (paper Sec. IV B).
    """

    name: str
    num_qubits: int
    params: Tuple[float, ...] = ()
    matrix: Optional[np.ndarray] = field(default=None, compare=False)
    is_measurement: bool = False
    is_delay: bool = False
    dd_fractions: Tuple[float, ...] = ()
    flip_fractions: Tuple[Tuple[float, ...], ...] = ()
    duration_override: Optional[float] = None
    error_scale: float = 1.0

    @property
    def is_unitary(self) -> bool:
        return self.matrix is not None

    @property
    def is_two_qubit(self) -> bool:
        return self.num_qubits == 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            args = ", ".join(f"{p:.4g}" for p in self.params)
            return f"{self.name}({args})"
        return self.name


# Fixed gates ---------------------------------------------------------------

I = Gate("id", 1, matrix=I2)
X = Gate("x", 1, matrix=X_MAT, flip_fractions=((0.5,),))
Y = Gate("y", 1, matrix=Y_MAT, flip_fractions=((0.5,),))
Z = Gate("z", 1, matrix=Z_MAT)
H = Gate("h", 1, matrix=H_MAT)
S = Gate("s", 1, matrix=S_MAT)
SDG = Gate("sdg", 1, matrix=SDG_MAT)
T = Gate("t", 1, matrix=T_MAT)
SX = Gate("sx", 1, matrix=SX_MAT)
SXDG = Gate("sxdg", 1, matrix=SXDG_MAT)

CX = Gate("cx", 2, matrix=CX_MAT, flip_fractions=((0.5,), (0.25, 0.75)))
CZ = Gate("cz", 2, matrix=CZ_MAT)

# The ECR gate's physical implementation contains an echo X pulse on the
# control halfway through, and rotary echo pulses on the target. These act as
# implicit DD (paper Sec. III B, cases II/III): the control's Z-error sign
# flips at tau_g/2 and the target's at tau_g/4 and 3 tau_g/4.
ECR = Gate("ecr", 2, matrix=ECR_MAT, flip_fractions=((0.5,), (0.25, 0.75)))

PAULI_GATES = {"I": I, "X": X, "Y": Y, "Z": Z}


# Parameterized constructors -------------------------------------------------


def rx(theta: float) -> Gate:
    """X rotation by ``theta``."""
    return Gate("rx", 1, params=(theta,), matrix=rx_matrix(theta))


def ry(theta: float) -> Gate:
    """Y rotation by ``theta``."""
    return Gate("ry", 1, params=(theta,), matrix=ry_matrix(theta))


def rz(theta: float) -> Gate:
    """Z rotation by ``theta`` (virtual: zero duration, zero error)."""
    return Gate("rz", 1, params=(theta,), matrix=rz_matrix(theta))


def u(theta: float, phi: float, lam: float) -> Gate:
    """Generic single-qubit gate ``Rz(phi) Ry(theta) Rz(lam)``."""
    return Gate("u", 1, params=(theta, phi, lam), matrix=u_matrix(theta, phi, lam))


def rzz(theta: float) -> Gate:
    """ZZ rotation (used for explicit error-compensation insertions)."""
    return Gate("rzz", 2, params=(theta,), matrix=rzz_matrix(theta))


def canonical(alpha: float, beta: float, gamma: float) -> Gate:
    """Canonical two-qubit interaction ``exp[i(a XX + b YY + c ZZ)]``.

    On hardware this is synthesized from three CNOT/ECR pulses (paper
    Fig. 1d), so the gate carries 3x the two-qubit depolarizing error and —
    in the noise model — the dominant echo structure of its first CNOT:
    the first qubit's error sign flips at the midpoint (control echo) and
    the second's at the quarter points (target rotary), mirroring ECR. Its
    duration is likewise three 2q-gate lengths (``Durations.canonical_factor``).
    """
    return Gate(
        "can",
        2,
        params=(alpha, beta, gamma),
        matrix=canonical_matrix(alpha, beta, gamma),
        flip_fractions=((0.5,), (0.25, 0.75)),
        error_scale=3.0,
    )


def measure() -> Gate:
    """Computational-basis measurement."""
    return Gate("measure", 1, is_measurement=True)


def delay(duration: float) -> Gate:
    """Explicit idle period of ``duration`` ns."""
    return Gate("delay", 1, params=(float(duration),), is_delay=True)


def dd_sequence(
    fractions: Tuple[float, ...], duration: Optional[float] = None
) -> Gate:
    """A dynamical-decoupling sequence of X pulses at the given fractions.

    The net logical action is ``X`` for an odd number of pulses and identity
    for an even number; the sign-trajectory flips at each fraction are what
    suppress Z/ZZ error accumulation. ``duration`` pins the idle window's
    length when the sequence replaces an explicit delay.
    """
    fractions = tuple(float(f) for f in fractions)
    if any(not 0.0 <= f <= 1.0 for f in fractions):
        raise ValueError("DD pulse fractions must lie in [0, 1]")
    net = X_MAT if len(fractions) % 2 else I2
    return Gate(
        "dd",
        1,
        params=fractions,
        matrix=net,
        dd_fractions=fractions,
        flip_fractions=(fractions,),
        duration_override=duration,
    )


def stretched_rzz(theta: float, full_duration: float = 500.0) -> Gate:
    """Pulse-stretched ``Rzz(theta)`` for explicit error compensation.

    Modeled after the paper's native implementation via stretched CR pulses
    (Refs. [58, 59]): the depolarizing error scales with ``|theta|/(pi/2)``
    relative to a full two-qubit gate, which is what makes explicit
    compensation much cheaper than a 2-CNOT synthesis. The compensation is
    realized by stretching the pair's neighboring pulses, so it adds *gate*
    error but no extra wall-clock idle window for the rest of the device
    (``duration_override = 0``); ``full_duration`` only anchors the error
    scaling.
    """
    del full_duration  # kept for call-site clarity; error scale is relative
    scale = min(abs(theta) / (math.pi / 2.0), 1.0)
    return Gate(
        "rzz",
        2,
        params=(theta,),
        matrix=rzz_matrix(theta),
        duration_override=0.0,
        error_scale=scale,
    )


def pauli_gate(label: str) -> Gate:
    """Return the single-qubit Pauli gate for ``label`` in ``IXYZ``."""
    try:
        return PAULI_GATES[label.upper()]
    except KeyError:
        raise ValueError(f"not a Pauli label: {label!r}") from None
