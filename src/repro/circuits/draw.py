"""ASCII circuit drawing.

Renders a circuit moment by moment, one row per qubit, so compiled output
(twirl Paulis, DD sequences, compensation insertions) can be inspected at a
glance::

    q0: -H--C--rz(-0.31)--C--H-
    q1: -H--T------------T--H-
    q2: -H--DD(2)---------DD(2)--H-

Two-qubit gates mark their first qubit ``C`` and second ``T`` (control /
target for ECR and CX); DD sequences show their pulse count; compensation
and twirl instructions carry a ``*`` suffix so inserted content stands out.
"""

from __future__ import annotations

from typing import List, Optional

from .circuit import Circuit, Instruction


def _cell_for(inst: Instruction, qubit: int) -> str:
    gate = inst.gate
    suffix = "*" if inst.tag in ("compensation", "twirl", "orientation", "dd") else ""
    if gate.is_measurement:
        return f"M{suffix}"
    if gate.is_delay:
        return f"~{int(gate.params[0])}"
    if gate.name == "dd":
        return f"DD({len(gate.dd_fractions)}){suffix}"
    if gate.num_qubits == 2:
        role = "C" if inst.qubits[0] == qubit else "T"
        label = gate.name if gate.name not in ("ecr", "cx") else ""
        body = f"{label}{role}" if label else role
        return f"{body}{suffix}"
    if gate.params:
        args = ",".join(f"{p:.2f}" for p in gate.params[:1])
        return f"{gate.name}({args}){suffix}"
    return f"{gate.name}{suffix}"


def draw(circuit: Circuit, max_width: Optional[int] = None) -> str:
    """Render ``circuit`` as aligned ASCII art.

    ``max_width`` truncates the output (with an ellipsis column) for very
    deep circuits.
    """
    columns: List[List[str]] = []
    for moment in circuit.moments:
        column = []
        for q in range(circuit.num_qubits):
            inst = moment.instruction_on(q)
            column.append("" if inst is None else _cell_for(inst, q))
        columns.append(column)

    widths = [max((len(c) for c in col), default=0) for col in columns]
    rows = []
    for q in range(circuit.num_qubits):
        cells = []
        for col, width in zip(columns, widths):
            if width == 0:
                continue
            cells.append(col[q].center(width, "-"))
        line = f"q{q}: -" + "--".join(cells) + "-"
        rows.append(line)
    if max_width is not None:
        rows = [
            row if len(row) <= max_width else row[: max_width - 3] + "..."
            for row in rows
        ]
    return "\n".join(rows)


def summary(circuit: Circuit) -> str:
    """One-line inventory: depth, gate counts, inserted content."""
    counts = {}
    for inst in circuit.instructions():
        counts[inst.gate.name] = counts.get(inst.gate.name, 0) + 1
    inserted = circuit.count_gates(tag="compensation") + circuit.count_gates(
        tag="dd"
    )
    parts = [f"{circuit.num_qubits}q", f"depth {circuit.depth}"]
    parts.extend(f"{name}:{n}" for name, n in sorted(counts.items()))
    parts.append(f"inserted:{inserted}")
    return " ".join(parts)
