"""Cartan (Weyl) coordinates of two-qubit gates and ZZ-error absorption.

The canonical interaction ``Ucan(a, b, c) = exp[i(a XX + b YY + c ZZ)]``
(paper eq. 5) is diagonal in the Bell basis, which makes extracting the
coordinates and absorbing commuting ``Rzz`` errors straightforward:

    ``Ucan(a, b, c) . Rzz(theta) = Ucan(a, b, c - theta/2)``

since ``Rzz(theta) = exp(-i theta ZZ / 2)``. Compensating a known ``Rzz``
error therefore costs nothing when a canonical gate neighbors it (paper
Fig. 1d and Sec. V B). The 3-CNOT hardware realization follows Vatan &
Williams (Ref. [45]).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Tuple

import numpy as np

from . import gates as g

if TYPE_CHECKING:  # pragma: no cover
    from .circuit import Circuit

# Bell basis columns: |Phi+>, |Phi->, |Psi+>, |Psi->.
_BELL = (
    np.array(
        [
            [1, 1, 0, 0],
            [0, 0, 1, 1],
            [0, 0, 1, -1],
            [1, -1, 0, 0],
        ],
        dtype=complex,
    )
    / math.sqrt(2.0)
)

# Eigenvalues of (XX, YY, ZZ) on each Bell state, same column order.
_BELL_EIGS = np.array(
    [
        [1, -1, 1],  # Phi+
        [-1, 1, 1],  # Phi-
        [1, 1, -1],  # Psi+
        [-1, -1, -1],  # Psi-
    ],
    dtype=float,
)


def canonical_params(matrix: np.ndarray, atol: float = 1e-7) -> Tuple[float, float, float]:
    """Extract ``(alpha, beta, gamma)`` from a canonical-class matrix.

    Raises ``ValueError`` if ``matrix`` is not of the form ``exp[i(a XX +
    b YY + c ZZ)]`` (up to global phase), i.e. not diagonal in the Bell
    basis. Angles are only defined modulo the Weyl-chamber symmetries; this
    returns the branch with each phase in ``(-pi, pi]``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (4, 4):
        raise ValueError("expected a 4x4 matrix")
    bell = _BELL.conj().T @ matrix @ _BELL
    off = bell - np.diag(np.diag(bell))
    if np.max(np.abs(off)) > atol:
        raise ValueError("matrix is not diagonal in the Bell basis")
    phases = np.angle(np.diag(bell))
    # phases_k = a*e_k0 + b*e_k1 + c*e_k2 + phase0 ; solve least squares with
    # a global-phase column.
    design = np.hstack([_BELL_EIGS, np.ones((4, 1))])
    coeffs, *_ = np.linalg.lstsq(design, phases, rcond=None)
    alpha, beta, gamma, _ = (float(v) for v in coeffs)
    reconstructed = g.canonical_matrix(alpha, beta, gamma)
    from ..utils.linalg import allclose_up_to_global_phase

    if not allclose_up_to_global_phase(reconstructed, matrix, atol=1e-5):
        # Phase wrap-around: re-solve after unwrapping against the first row.
        raise ValueError("could not resolve canonical parameters (phase branch)")
    return alpha, beta, gamma


def is_canonical(matrix: np.ndarray, atol: float = 1e-7) -> bool:
    """True if ``matrix`` is a canonical interaction up to global phase."""
    try:
        canonical_params(matrix, atol=atol)
    except ValueError:
        return False
    return True


def absorb_rzz_before(
    params: Tuple[float, float, float], theta: float
) -> Tuple[float, float, float]:
    """Canonical params after composing with an earlier ``Rzz(theta)``.

    ``Ucan(a,b,c) . Rzz(theta) = Ucan(a, b, c - theta/2)`` because ``Rzz``
    commutes with every term of the canonical generator.
    """
    alpha, beta, gamma = params
    return (alpha, beta, gamma - theta / 2.0)


def absorb_rzz_after(
    params: Tuple[float, float, float], theta: float
) -> Tuple[float, float, float]:
    """Canonical params after composing with a later ``Rzz(theta)``."""
    return absorb_rzz_before(params, theta)  # Rzz commutes with Ucan.


def compensate_rzz(params: Tuple[float, float, float], theta: float) -> Tuple[float, float, float]:
    """Cancel a coherent ``Rzz(theta)`` error adjacent to a canonical gate."""
    return absorb_rzz_before(params, -theta)


def heisenberg_params(jx: float, jy: float, jz: float, dt: float) -> Tuple[float, float, float]:
    """Canonical params of one Trotter step ``exp(i dt/2 (Jx XX + Jy YY + Jz ZZ))``.

    Matches the paper's convention ``alpha, beta, gamma = -J_i t / 2`` for the
    Hamiltonian of eq. (7) (note the overall ``-1/2`` in eq. 7).
    """
    return (jx * dt / 2.0, jy * dt / 2.0, jz * dt / 2.0)


def cnot_synthesis(alpha: float, beta: float, gamma: float) -> "Circuit":
    """3-CNOT realization of ``Ucan(alpha, beta, gamma)`` (paper Fig. 1d).

    Returns a two-qubit :class:`Circuit` whose unitary equals the canonical
    matrix up to global phase, using the Vatan-Williams template with the
    rotation angles quoted in the paper: ``Rz(2 gamma - pi/2)`` on the first
    qubit and ``Ry(pi/2 - 2 alpha)``, ``Ry(2 beta - pi/2)`` on the second.
    """
    from .circuit import Circuit

    circ = Circuit(2)
    circ.rz(math.pi / 2.0, 1)
    circ.cx(1, 0)
    circ.rz(math.pi / 2.0 - 2.0 * gamma, 0)
    circ.ry(math.pi / 2.0 - 2.0 * alpha, 1)
    circ.cx(0, 1)
    circ.ry(2.0 * beta - math.pi / 2.0, 1)
    circ.cx(1, 0)
    circ.rz(-math.pi / 2.0, 0)
    return circ
