"""Single-qubit Euler-angle decomposition and error absorption (paper eq. 4).

Any ``U`` in U(2) factors as ``exp(i phase) Rz(phi) Ry(theta) Rz(lam)``. On
hardware the middle ``Ry`` is realized with two ``sqrt(X)`` pulses and three
virtual ``Rz`` rotations (the ZXZXZ form of eq. 4), which is why absorbing a
coherent ``Rz(eps)`` error into a neighboring single-qubit gate is free: only
the virtual phases change.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from .gates import rz_matrix, ry_matrix, SX_MAT


@dataclass(frozen=True)
class EulerAngles:
    """ZYZ Euler angles with global phase: ``e^{i phase} Rz(phi) Ry(theta) Rz(lam)``."""

    theta: float
    phi: float
    lam: float
    phase: float = 0.0

    def matrix(self) -> np.ndarray:
        return (
            cmath.exp(1j * self.phase)
            * rz_matrix(self.phi)
            @ ry_matrix(self.theta)
            @ rz_matrix(self.lam)
        )

    def absorb_rz_before(self, eps: float) -> "EulerAngles":
        """Compose with ``Rz(eps)`` applied earlier in time: ``U . Rz(eps)``."""
        return replace(self, lam=self.lam + eps)

    def absorb_rz_after(self, eps: float) -> "EulerAngles":
        """Compose with ``Rz(eps)`` applied later in time: ``Rz(eps) . U``."""
        return replace(self, phi=self.phi + eps)

    def compensate_rz_before(self, eps: float) -> "EulerAngles":
        """Cancel a coherent ``Rz(eps)`` error that occurred before this gate."""
        return self.absorb_rz_before(-eps)

    def zxzxz_angles(self) -> Tuple[float, float, float]:
        """Angles ``(a, b, c)`` such that ``U ~ Rz(a) SX Rz(b) SX Rz(c)``.

        Equal up to global phase: ``a = phi + pi``, ``b = theta + pi``,
        ``c = lam``. The identity ``Ry(theta) = e^{i*} Rz(pi) SX Rz(theta+pi)
        SX Rz(0)`` underlies this ZXZXZ form.
        """
        return (self.phi + math.pi, self.theta + math.pi, self.lam)

    def zxzxz_matrix(self) -> np.ndarray:
        a, b, c = self.zxzxz_angles()
        return rz_matrix(a) @ SX_MAT @ rz_matrix(b) @ SX_MAT @ rz_matrix(c)


def euler_angles(matrix: np.ndarray) -> EulerAngles:
    """Extract ZYZ Euler angles (with global phase) from a 2x2 unitary."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError("expected a 2x2 matrix")
    det = np.linalg.det(matrix)
    if abs(abs(det) - 1.0) > 1e-6:
        raise ValueError("matrix is not unitary")
    phase = 0.5 * cmath.phase(det)
    su2 = matrix * cmath.exp(-1j * phase)

    # su2 = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #        [sin(t/2) e^{+i(phi-lam)/2},  cos(t/2) e^{+i(phi+lam)/2}]]
    theta = 2.0 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[0, 0]) < 1e-12:
        # theta == pi: only phi - lam is determined; set lam = 0.
        phi = 2.0 * cmath.phase(su2[1, 0])
        lam = 0.0
    elif abs(su2[1, 0]) < 1e-12:
        # theta == 0: only phi + lam is determined; set lam = 0.
        phi = 2.0 * cmath.phase(su2[1, 1])
        lam = 0.0
    else:
        plus = 2.0 * cmath.phase(su2[1, 1])
        minus = 2.0 * cmath.phase(su2[1, 0])
        phi = 0.5 * (plus + minus)
        lam = 0.5 * (plus - minus)
    return EulerAngles(theta=theta, phi=phi, lam=lam, phase=phase)


def fuse(first: np.ndarray, second: np.ndarray) -> EulerAngles:
    """Euler angles of ``second . first`` (``first`` applied earlier in time)."""
    return euler_angles(np.asarray(second) @ np.asarray(first))
